module Packet = Netcore.Packet
module Event = Devents.Event
module Program = Evcore.Program
module Shared_register = Devents.Shared_register

exception Load_error of string

type reg_binding =
  | Shared of Shared_register.t
  | Plain of Pisa.Register_array.t

type decision_cell = { mutable decision : Program.decision option; mutable egress_drop : bool }

(* Which aggregation side an event control's writes land on. *)
let side_of_control = function
  | "Enqueue" -> Shared_register.Enq_side
  | _ -> Shared_register.Deq_side

let known_controls =
  [
    "Ingress"; "Recirculated"; "Generated"; "Egress"; "Enqueue"; "Dequeue"; "Overflow";
    "Underflow"; "Transmitted"; "Timer"; "LinkChange"; "ControlPlane"; "UserEvent";
  ]

(* --- field environments --- *)

let packet_fields (pkt : Packet.t) path =
  let ip () =
    match pkt.Packet.ip with
    | Some ip -> ip
    | None -> raise (Interp.Runtime_error ("packet has no IP header", None))
  in
  let l4_ports () =
    match pkt.Packet.l4 with
    | Packet.Udp u -> (u.Netcore.Udp.src_port, u.Netcore.Udp.dst_port)
    | Packet.Tcp t -> (t.Netcore.Tcp.src_port, t.Netcore.Tcp.dst_port)
    | Packet.No_l4 -> (0, 0)
  in
  match path with
  | [ ("pkt" | "hdr"); "len" ] -> Some (Packet.len pkt)
  | [ ("pkt" | "hdr"); "ingress_port" ] -> Some pkt.Packet.meta.Packet.ingress_port
  | [ ("pkt" | "hdr"); "ip"; "src" ] -> Some (Netcore.Ipv4_addr.to_int (ip ()).Netcore.Ipv4.src)
  | [ ("pkt" | "hdr"); "ip"; "dst" ] -> Some (Netcore.Ipv4_addr.to_int (ip ()).Netcore.Ipv4.dst)
  | [ ("pkt" | "hdr"); "ip"; "proto" ] -> Some (ip ()).Netcore.Ipv4.proto
  | [ ("pkt" | "hdr"); "udp"; "sport" ] -> Some (fst (l4_ports ()))
  | [ ("pkt" | "hdr"); "udp"; "dport" ] -> Some (snd (l4_ports ()))
  | _ -> None

let meta_slot = function
  | "flowID" -> Some 0
  | "pkt_len" -> Some 1
  | "slot2" -> Some 2
  | "slot3" -> Some 3
  | _ -> None

let packet_set_field (pkt : Packet.t) path v =
  match path with
  | [ "enq_meta"; f ] -> (
      match meta_slot f with
      | Some i ->
          pkt.Packet.meta.Packet.enq_meta.(i) <- v;
          (* flowID doubles as the packet's flow id for event plumbing. *)
          if i = 0 then pkt.Packet.meta.Packet.flow_id <- v;
          true
      | None -> false)
  | [ "deq_meta"; f ] -> (
      match meta_slot f with
      | Some i ->
          pkt.Packet.meta.Packet.deq_meta.(i) <- v;
          true
      | None -> false)
  | [ ("pkt" | "hdr"); "priority" ] ->
      pkt.Packet.meta.Packet.priority <- v;
      true
  | [ ("pkt" | "hdr"); "qid" ] ->
      pkt.Packet.meta.Packet.qid <- v;
      true
  | _ -> false

let packet_get_meta (pkt : Packet.t) path =
  match path with
  | [ "enq_meta"; f ] -> Option.map (fun i -> pkt.Packet.meta.Packet.enq_meta.(i)) (meta_slot f)
  | [ "deq_meta"; f ] -> Option.map (fun i -> pkt.Packet.meta.Packet.deq_meta.(i)) (meta_slot f)
  | _ -> None

let buffer_fields (ev : Event.buffer_event) path =
  match path with
  | [ "meta"; f ] -> (
      match meta_slot f with
      | Some i -> Some ev.Event.meta.(i)
      | None -> (
          match f with
          | "port" -> Some ev.Event.port
          | "qid" -> Some ev.Event.qid
          | "occ_bytes" -> Some ev.Event.occupancy_bytes
          | "occ_pkts" -> Some ev.Event.occupancy_pkts
          | "len" -> Some ev.Event.pkt_len
          | _ -> None))
  | _ -> None

(* --- the loader --- *)

let load_ast ?(name = "p4-program") (program : Ast.program) : Program.spec =
  (* Static checks before install time. *)
  let controls =
    List.filter_map
      (function Ast.Control_decl { name; body; pos } -> Some (name, body, pos) | _ -> None)
      program
  in
  List.iter
    (fun (cname, _, _) ->
      if not (List.mem cname known_controls) then
        raise
          (Load_error
             (Printf.sprintf "unknown control %S; expected one of: %s" cname
                (String.concat ", " known_controls))))
    controls;
  let find_control cname =
    List.find_opt (fun (n, _, _) -> n = cname) controls
    |> Option.map (fun (_, body, _) -> body)
  in
  if find_control "Ingress" = None then raise (Load_error "program must define control Ingress");
  let dup =
    let sorted = List.sort compare (List.map (fun (n, _, _) -> n) controls) in
    let rec go = function
      | a :: b :: _ when a = b -> Some a
      | _ :: rest -> go rest
      | [] -> None
    in
    go sorted
  in
  (match dup with
  | Some d -> raise (Load_error (Printf.sprintf "duplicate control %S" d))
  | None -> ());
  (* Static EFSM compilation: transition guards and actions are
     restricted to what the Pisa.Efsm extern can execute, and every
     restriction violation surfaces here, at load time. *)
  let static_consts : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (function
      | Ast.Const_decl { name; value; _ } -> Hashtbl.replace static_consts name value
      | _ -> ())
    program;
  let compile_efsm ~ename ~nregs transitions =
    let fail msg (pos : Ast.position) =
      raise (Load_error (Printf.sprintf "efsm %s: %s (line %d)" ename msg pos.Ast.line))
    in
    let reg_name r =
      String.length r >= 2
      && r.[0] = 'r'
      && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub r 1 (String.length r - 1))
    in
    let reg_index pos r =
      if not (reg_name r) then
        fail (Printf.sprintf "%S is not an EFSM register (expected rN)" r) pos;
      let i = int_of_string (String.sub r 1 (String.length r - 1)) in
      if i >= nregs then fail (Printf.sprintf "register r%d out of range (regs %d)" i nregs) pos;
      i
    in
    let operand pos (e : Ast.expr) : Pisa.Efsm.operand =
      match e with
      | Ast.Int n -> Pisa.Efsm.Const n
      | Ast.Path [ "in" ] -> Pisa.Efsm.Input
      | Ast.Path [ "state" ] -> Pisa.Efsm.State
      | Ast.Path [ x ] when reg_name x -> Pisa.Efsm.Reg (reg_index pos x)
      | Ast.Path [ x ] -> (
          match Hashtbl.find_opt static_consts x with
          | Some v -> Pisa.Efsm.Const v
          | None -> fail (Printf.sprintf "unknown EFSM operand %S" x) pos)
      | _ -> fail "operands are literals, consts, 'state', 'in' or rN" pos
    in
    let cmp_of = function
      | Ast.Eq -> Some Pisa.Efsm.Eq
      | Ast.Neq -> Some Pisa.Efsm.Ne
      | Ast.Lt -> Some Pisa.Efsm.Lt
      | Ast.Le -> Some Pisa.Efsm.Le
      | Ast.Gt -> Some Pisa.Efsm.Gt
      | Ast.Ge -> Some Pisa.Efsm.Ge
      | _ -> None
    in
    let rec guard pos (e : Ast.expr) : Pisa.Efsm.guard =
      match e with
      | Ast.Bool_lit true -> Pisa.Efsm.Always
      | Ast.Binop (Ast.And, a, b) -> Pisa.Efsm.All [ guard pos a; guard pos b ]
      | Ast.Binop (Ast.Or, a, b) -> Pisa.Efsm.Any [ guard pos a; guard pos b ]
      | Ast.Binop (op, a, b) -> (
          match cmp_of op with
          | Some c -> Pisa.Efsm.Cmp (c, operand pos a, operand pos b)
          | None -> fail "guards are comparisons combined with && / ||" pos)
      | _ -> fail "guards are comparisons combined with && / ||" pos
    in
    let update pos (e : Ast.expr) : Pisa.Efsm.update =
      match e with
      | Ast.Binop (Ast.Add, a, b) -> Pisa.Efsm.Add (operand pos a, operand pos b)
      | Ast.Binop (Ast.Sub, a, b) -> Pisa.Efsm.Sub (operand pos a, operand pos b)
      | Ast.Call ("min", [ a; b ]) -> Pisa.Efsm.Min (operand pos a, operand pos b)
      | Ast.Call ("max", [ a; b ]) -> Pisa.Efsm.Max (operand pos a, operand pos b)
      | Ast.Call ("sat_add", [ a; b ]) -> Pisa.Efsm.Sat_add (operand pos a, operand pos b)
      | Ast.Call ("sat_sub", [ a; b ]) -> Pisa.Efsm.Sat_sub (operand pos a, operand pos b)
      | e -> Pisa.Efsm.Set (operand pos e)
    in
    List.map
      (fun (tr : Ast.efsm_transition) ->
        {
          Pisa.Efsm.from_state = tr.Ast.t_from;
          guard =
            (match tr.Ast.t_guard with
            | None -> Pisa.Efsm.Always
            | Some g -> guard tr.Ast.t_pos g);
          next_state = tr.Ast.t_next;
          actions =
            List.map
              (fun (dst, e) ->
                { Pisa.Efsm.reg = reg_index tr.Ast.t_pos dst; update = update tr.Ast.t_pos e })
              tr.Ast.t_actions;
        })
      transitions
  in
  let efsm_decls =
    List.filter_map
      (function
        | Ast.Efsm_decl { name = ename; entries; nregs; timeout_us; transitions; _ } ->
            let compiled = compile_efsm ~ename ~nregs transitions in
            (* Dry-run create (no allocator) so out-of-range states and
               bad parameters — including a non-positive timeout — are
               load errors, not install crashes. *)
            (try
               ignore
                 (Pisa.Efsm.create
                    ?timeout:(Option.map Eventsim.Sim_time.us timeout_us)
                    ~name:ename ~entries ~nregs ~transitions:compiled ()
                   : Pisa.Efsm.t)
             with Invalid_argument msg ->
               raise (Load_error (Printf.sprintf "efsm %s: %s" ename msg)));
            Some (ename, entries, nregs, timeout_us, compiled)
        | _ -> None)
      program
  in
  (* Static CEP pattern elaboration: class names, combinator arities,
     and count/window parameters are checked — and the automaton
     compiled — at load time, so a bad pattern can never install. *)
  let cls_of_ident = function
    | "ingress_packet" -> Some Event.Ingress_packet
    | "egress_packet" -> Some Event.Egress_packet
    | "recirculated_packet" -> Some Event.Recirculated_packet
    | "generated_packet" -> Some Event.Generated_packet
    | "packet_transmitted" -> Some Event.Packet_transmitted
    | "buffer_enqueue" -> Some Event.Buffer_enqueue
    | "buffer_dequeue" -> Some Event.Buffer_dequeue
    | "buffer_overflow" -> Some Event.Buffer_overflow
    | "buffer_underflow" -> Some Event.Buffer_underflow
    | "timer_expiration" -> Some Event.Timer_expiration
    | "control_plane" -> Some Event.Control_plane
    | "link_status_change" -> Some Event.Link_status_change
    | "user_event" -> Some Event.User_event
    | _ -> None
  in
  let pattern_decls =
    List.filter_map
      (function
        | Ast.Pattern_decl { name = pname; entries; tick_us; timeout_us; expr; pos } ->
            let fail msg =
              raise
                (Load_error (Printf.sprintf "pattern %s: %s (line %d)" pname msg pos.Ast.line))
            in
            let int_arg what (e : Ast.expr) =
              match e with
              | Ast.Int n -> n
              | Ast.Path [ x ] -> (
                  match Hashtbl.find_opt static_consts x with
                  | Some v -> v
                  | None -> fail (Printf.sprintf "unknown constant %S in %s" x what))
              | _ -> fail (Printf.sprintf "%s takes an integer literal or const" what)
            in
            let rec elab (e : Ast.expr) =
              match e with
              | Ast.Call ("seq", args) -> Cep.Pattern.seq (List.map elab args)
              | Ast.Call ("conj", args) -> Cep.Pattern.conj (List.map elab args)
              | Ast.Call ("disj", args) -> Cep.Pattern.disj (List.map elab args)
              | Ast.Call ("count", [ n; p ]) -> Cep.Pattern.count (int_arg "count" n) (elab p)
              | Ast.Call ("within", [ w; p ]) ->
                  Cep.Pattern.within (Eventsim.Sim_time.us (int_arg "within" w)) (elab p)
              | Ast.Path [ c ] when cls_of_ident c <> None ->
                  Cep.Pattern.atom ~label:c (Option.get (cls_of_ident c))
              | Ast.Call (c, args) when cls_of_ident c <> None -> (
                  let cls = Option.get (cls_of_ident c) in
                  match args with
                  | [ lo ] -> Cep.Pattern.atom ~lo:(int_arg c lo) ~label:c cls
                  | [ lo; hi ] ->
                      Cep.Pattern.atom ~lo:(int_arg c lo) ~hi:(int_arg c hi) ~label:c cls
                  | _ -> fail (Printf.sprintf "atom %s takes (lo) or (lo, hi)" c))
              | Ast.Call (f, _) ->
                  fail
                    (Printf.sprintf
                       "unknown combinator %S (expected seq/conj/disj/count/within or an \
                        event class)"
                       f)
              | _ -> fail "a pattern is built from combinator calls over event-class atoms"
            in
            let tick = Option.value tick_us ~default:10 in
            if tick <= 0 then fail "tick period must be positive";
            let compiled =
              try Cep.Compile.compile ~tick_period:(Eventsim.Sim_time.us tick) (elab expr)
              with Invalid_argument msg -> fail msg
            in
            (* Dry-run instantiation (no allocator) so bad table
               parameters — including a non-positive timeout — are load
               errors too, not install crashes. *)
            (try
               ignore
                 (Cep.Compile.efsm
                    ?timeout:(Option.map Eventsim.Sim_time.us timeout_us)
                    ~entries ~name:pname compiled ()
                   : Pisa.Efsm.t)
             with Invalid_argument msg -> fail msg);
            Some (pname, entries, timeout_us, compiled)
        | _ -> None)
      program
  in
  fun ctx ->
    (* Allocate state. *)
    let regs : (string, reg_binding) Hashtbl.t = Hashtbl.create 8 in
    let consts : (string, int) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (function
        | Ast.Shared_register_decl { width; entries; name; _ } ->
            if Hashtbl.mem regs name then
              raise (Load_error (Printf.sprintf "duplicate register %S" name));
            Hashtbl.replace regs name
              (Shared (Program.shared_register ctx ~name ~entries ~width))
        | Ast.Register_decl { width; entries; name; _ } ->
            if Hashtbl.mem regs name then
              raise (Load_error (Printf.sprintf "duplicate register %S" name));
            Hashtbl.replace regs name
              (Plain (Pisa.Register_alloc.array ctx.Program.alloc ~name ~entries ~width))
        | Ast.Const_decl { name; value; _ } -> Hashtbl.replace consts name value
        | Ast.Timer_decl { name; period_us; _ } ->
            let id = ctx.Program.add_timer ~period:(Eventsim.Sim_time.us period_us) in
            Hashtbl.replace consts name id
        | Ast.Efsm_decl _ | Ast.Pattern_decl _ | Ast.Control_decl _ -> ())
      program;
    let efsms : (string, Pisa.Efsm.t) Hashtbl.t = Hashtbl.create 4 in
    let sweep_timers = ref [] in
    List.iter
      (fun (ename, entries, nregs, timeout_us, transitions) ->
        if Hashtbl.mem efsms ename || Hashtbl.mem regs ename then
          raise (Load_error (Printf.sprintf "duplicate extern %S" ename));
        let timeout = Option.map Eventsim.Sim_time.us timeout_us in
        let e =
          Pisa.Efsm.create ~alloc:ctx.Program.alloc ?timeout ~name:ename ~entries ~nregs
            ~transitions ()
        in
        Hashtbl.replace efsms ename e;
        (* Idle eviction rides ordinary timer events, so sweeps run
           supervised and shed-safe like any other handler work. *)
        match timeout_us with
        | Some t when t > 0 ->
            let id = ctx.Program.add_timer ~period:(Eventsim.Sim_time.us t) in
            sweep_timers := (id, e) :: !sweep_timers
        | _ -> ())
      efsm_decls;
    let pats : (string, Cep.Compile.t * Pisa.Efsm.t) Hashtbl.t = Hashtbl.create 4 in
    let tick_timers = ref [] in
    List.iter
      (fun (pname, entries, timeout_us, compiled) ->
        if Hashtbl.mem efsms pname || Hashtbl.mem pats pname || Hashtbl.mem regs pname then
          raise (Load_error (Printf.sprintf "duplicate extern %S" pname));
        let timeout = Option.map Eventsim.Sim_time.us timeout_us in
        let e =
          Cep.Compile.efsm ~alloc:ctx.Program.alloc ?timeout ~entries ~name:pname compiled ()
        in
        Hashtbl.replace pats pname (compiled, e);
        (* The detector tick rides ordinary timer events, like EFSM
           sweeps, so window countdowns run supervised and shed-safe. *)
        let tick_id = ctx.Program.add_timer ~period:compiled.Cep.Compile.tick_period in
        tick_timers := (tick_id, e) :: !tick_timers;
        match timeout_us with
        | Some t when t > 0 ->
            let id = ctx.Program.add_timer ~period:(Eventsim.Sim_time.us t) in
            sweep_timers := (id, e) :: !sweep_timers
        | _ -> ())
      pattern_decls;
    let reg target pos =
      match Hashtbl.find_opt regs target with
      | Some r -> r
      | None ->
          raise
            (Interp.Runtime_error (Printf.sprintf "unknown register %S" target, Some pos))
    in
    (* Environment pieces shared by all handler kinds. *)
    let funcs ~name ~args pos =
      match (name, args) with
      | "max", [ a; b ] -> max a b
      | "min", [ a; b ] -> min a b
      | "now_us", [] -> ctx.Program.now () / 1_000_000
      | _ ->
          raise
            (Interp.Runtime_error
               (Printf.sprintf "unknown function %S/%d" name (List.length args), Some pos))
    in
    let efsm_step cls ~target ~key ~input pos =
      match Hashtbl.find_opt efsms target with
      | Some e ->
          (* Supervised: each transition charges the handler watchdog. *)
          ctx.Program.consume_budget 1;
          let o = Pisa.Efsm.step e ~now:(ctx.Program.now ()) ~key ~input in
          o.Pisa.Efsm.state
      | None -> (
          match Hashtbl.find_opt pats target with
          | Some (c, e) ->
              (* The calling control's event class fixes the class half
                 of the input word; the program supplies only the
                 attribute. The result is 1 exactly when this event
                 completed the pattern for [key]. *)
              ctx.Program.consume_budget 1;
              let input = Cep.Pattern.encode { Cep.Pattern.cls; attr = input } in
              let o =
                Pisa.Efsm.step e ~now:(ctx.Program.now ()) ~key:(key land max_int) ~input
              in
              if Cep.Compile.is_match c o then 1 else 0
          | None ->
              raise (Interp.Runtime_error (Printf.sprintf "unknown efsm %S" target, Some pos)))
    in
    let mk_env ~cls ~get_field ~set_field ~reg_read ~reg_write ~reg_add ~builtin =
      {
        Interp.consts;
        locals = Hashtbl.create 8;
        get_field;
        set_field;
        reg_read;
        reg_write;
        reg_add;
        builtin;
        func = funcs;
        efsm_step = efsm_step cls;
      }
    in
    let no_field path pos =
      raise
        (Interp.Runtime_error
           (Printf.sprintf "unknown field %s" (String.concat "." path), Some pos))
    in
    let no_set_field path _ pos =
      raise
        (Interp.Runtime_error
           (Printf.sprintf "field %s is not writable here" (String.concat "." path), Some pos))
    in
    (* Packet-thread register port. *)
    let pkt_reg_read ~target ~index pos =
      match reg target pos with
      | Shared r -> Shared_register.read r (index mod Shared_register.entries r)
      | Plain r -> Pisa.Register_array.read r (index mod Pisa.Register_array.entries r)
    in
    let pkt_reg_write ~target ~index ~value pos =
      match reg target pos with
      | Shared r -> Shared_register.write r (index mod Shared_register.entries r) value
      | Plain r -> Pisa.Register_array.write r (index mod Pisa.Register_array.entries r) value
    in
    let pkt_reg_add ~target ~index ~delta pos =
      match reg target pos with
      | Shared r -> ignore (Shared_register.add r (index mod Shared_register.entries r) delta)
      | Plain r -> ignore (Pisa.Register_array.add r (index mod Pisa.Register_array.entries r) delta)
    in
    (* Event-thread register port: reads see the true value; writes
       aggregate the difference (Sec 4's realisation of event-side
       read-modify-write). *)
    let ev_reg_read side ~target ~index pos =
      ignore side;
      match reg target pos with
      | Shared r -> Shared_register.true_value r (index mod Shared_register.entries r)
      | Plain r -> Pisa.Register_array.read r (index mod Pisa.Register_array.entries r)
    in
    let ev_reg_write side ~target ~index ~value pos =
      match reg target pos with
      | Shared r ->
          let index = index mod Shared_register.entries r in
          let current = Shared_register.true_value r index in
          Shared_register.event_add r side index (value - current)
      | Plain r -> Pisa.Register_array.write r (index mod Pisa.Register_array.entries r) value
    in
    let ev_reg_add side ~target ~index ~delta pos =
      match reg target pos with
      | Shared r -> Shared_register.event_add r side (index mod Shared_register.entries r) delta
      | Plain r -> ignore (Pisa.Register_array.add r (index mod Pisa.Register_array.entries r) delta)
    in
    (* Builtins shared by every handler: notify / emit_user. *)
    let common_builtin ~name ~args pos =
      match (name, args) with
      | "notify", [ Interp.Str s ] -> ctx.Program.notify_monitor s
      | "notify", [ Interp.Num v ] -> ctx.Program.notify_monitor (string_of_int v)
      | "emit_user", [ Interp.Num tag; Interp.Num data ] ->
          ctx.Program.emit_user_event ~tag ~data
      | _ ->
          raise
            (Interp.Runtime_error (Printf.sprintf "unknown builtin %S here" name, Some pos))
    in
    (* Run a packet-family control body; returns the decision. *)
    let run_packet_control ~cls body pkt =
      let cell = { decision = None; egress_drop = false } in
      let builtin ~name ~args pos =
        let num = function
          | Interp.Num v -> v
          | Interp.Str _ | Interp.Dest _ ->
              raise (Interp.Runtime_error ("expected a numeric argument", Some pos))
        in
        match (name, args) with
        | "forward", [ p ] -> cell.decision <- Some (Program.Forward (num p))
        | "multicast", ports when ports <> [] ->
            cell.decision <- Some (Program.Multicast (List.map num ports))
        | "drop", [] ->
            cell.decision <- Some Program.Drop;
            cell.egress_drop <- true
        | "recirculate", [] -> cell.decision <- Some Program.Recirculate
        | "mark", [ v ] -> pkt.Packet.meta.Packet.mark <- num v
        | "hash", [ data; Interp.Dest _dst ] ->
            (* handled below: dest assignment needs the env *)
            ignore data;
            raise (Interp.Runtime_error ("internal: hash routed through builtin", Some pos))
        | _ -> common_builtin ~name ~args pos
      in
      (* hash needs access to the env for the destination; build the
         env with a forward reference. *)
      let env_ref = ref None in
      let builtin ~name ~args pos =
        match (name, args) with
        | "hash", [ Interp.Num data; Interp.Dest dst ] ->
            let env = Option.get !env_ref in
            Interp.assign env dst (Netcore.Hashes.mix64 data) pos
        | _ -> builtin ~name ~args pos
      in
      let get_field path pos =
        match packet_fields pkt path with
        | Some v -> v
        | None -> (
            match packet_get_meta pkt path with
            | Some v -> v
            | None -> no_field path pos)
      in
      let set_field path v pos =
        if not (packet_set_field pkt path v) then no_set_field path v pos
      in
      let env =
        mk_env ~cls ~get_field ~set_field ~reg_read:pkt_reg_read ~reg_write:pkt_reg_write
          ~reg_add:pkt_reg_add ~builtin
      in
      env_ref := Some env;
      Interp.exec_block env body;
      (cell.decision, cell.egress_drop)
    in
    (* Run a metadata-event control body with a field table. *)
    let run_event_control ~side ~cls body get_field =
      let builtin ~name ~args pos = common_builtin ~name ~args pos in
      let env =
        mk_env ~cls ~get_field
          ~set_field:(fun path _ pos -> no_set_field path 0 pos)
          ~reg_read:(ev_reg_read side) ~reg_write:(ev_reg_write side) ~reg_add:(ev_reg_add side)
          ~builtin
      in
      Interp.exec_block env body
    in
    let simple_fields table path pos =
      match List.assoc_opt (String.concat "." path) table with
      | Some v -> v
      | None -> no_field path pos
    in
    (* Build the Program handlers from the controls present. *)
    let packet_handler cls body _ctx pkt =
      match run_packet_control ~cls body pkt with
      | Some d, _ -> d
      | None, _ -> Program.Drop
    in
    let ingress_body = Option.get (find_control "Ingress") in
    let handler_opt cname f = Option.map f (find_control cname) in
    let buffer_handler cname cls =
      handler_opt cname (fun body ->
          fun _ctx (ev : Event.buffer_event) ->
            run_event_control ~side:(side_of_control cname) ~cls body (fun path pos ->
                match buffer_fields ev path with Some v -> v | None -> no_field path pos))
    in
    (* Hidden EFSM sweep timers are serviced here and filtered out, so
       a user Timer control only ever sees its declared timers. *)
    let user_timer =
      handler_opt "Timer" (fun body ->
          fun _ctx (ev : Event.timer_event) ->
           run_event_control ~side:Shared_register.Deq_side ~cls:Event.Timer_expiration body
             (simple_fields [ ("timer.id", ev.Event.id); ("timer.count", ev.Event.count) ]))
    in
    let timer_handler =
      match (!sweep_timers, !tick_timers) with
      | [], [] -> user_timer
      | sweeps, ticks ->
          Some
            (fun tctx (ev : Event.timer_event) ->
              match List.assoc_opt ev.Event.id sweeps with
              | Some efsm -> ignore (Pisa.Efsm.sweep efsm ~now:(ctx.Program.now ()) : int)
              | None -> (
                  match List.assoc_opt ev.Event.id ticks with
                  | Some efsm ->
                      (* Pattern tick: decrement every armed window
                         countdown across all flow contexts. *)
                      ctx.Program.consume_budget 1;
                      Pisa.Efsm.step_all efsm ~input:Cep.Pattern.tick_input
                  | None -> ( match user_timer with Some h -> h tctx ev | None -> ())))
    in
    Program.make ~name
      ~ingress:(packet_handler Event.Ingress_packet ingress_body)
      ?recirculated:(handler_opt "Recirculated" (packet_handler Event.Recirculated_packet))
      ?generated:(handler_opt "Generated" (packet_handler Event.Generated_packet))
      ?egress:
        (handler_opt "Egress" (fun body ->
             fun _ctx ~port:_ pkt ->
              match run_packet_control ~cls:Event.Egress_packet body pkt with
              | _, true -> None
              | _, false -> Some pkt))
      ?enqueue:(buffer_handler "Enqueue" Event.Buffer_enqueue)
      ?dequeue:(buffer_handler "Dequeue" Event.Buffer_dequeue)
      ?overflow:(buffer_handler "Overflow" Event.Buffer_overflow)
      ?underflow:
        (handler_opt "Underflow" (fun body ->
             fun _ctx (ev : Event.underflow_event) ->
              run_event_control ~side:Shared_register.Deq_side ~cls:Event.Buffer_underflow body
                (simple_fields
                   [ ("meta.port", ev.Event.port); ("meta.qid", ev.Event.qid) ])))
      ?transmitted:
        (handler_opt "Transmitted" (fun body ->
             fun _ctx (ev : Event.transmit_event) ->
              run_event_control ~side:Shared_register.Deq_side ~cls:Event.Packet_transmitted
                body
                (simple_fields
                   [
                     ("meta.port", ev.Event.port);
                     ("meta.pkt_len", ev.Event.pkt_len);
                     ("meta.flowID", ev.Event.flow_id);
                   ])))
      ?timer:timer_handler
      ?link_change:
        (handler_opt "LinkChange" (fun body ->
             fun _ctx (ev : Event.link_event) ->
              run_event_control ~side:Shared_register.Deq_side ~cls:Event.Link_status_change
                body
                (simple_fields
                   [ ("link.port", ev.Event.port); ("link.up", if ev.Event.up then 1 else 0) ])))
      ?control:
        (handler_opt "ControlPlane" (fun body ->
             fun _ctx (ev : Event.control_event) ->
              run_event_control ~side:Shared_register.Deq_side ~cls:Event.Control_plane body
                (simple_fields
                   [ ("ctl.opcode", ev.Event.opcode); ("ctl.arg", ev.Event.arg) ])))
      ?user:
        (handler_opt "UserEvent" (fun body ->
             fun _ctx (ev : Event.user_event) ->
              run_event_control ~side:Shared_register.Deq_side ~cls:Event.User_event body
                (simple_fields [ ("user.tag", ev.Event.tag); ("user.data", ev.Event.data) ])))
      ()

let load ?name source = load_ast ?name (Parser.parse source)

let microburst_p4 =
  {|
// microburst.p4 — the paper's Section 2 example.
const NUM_REGS = 1024;
const FLOW_THRESH = 20000;

shared_register<bit<32>>(NUM_REGS) bufSize_reg;

// Ingress Packet Event Logic
control Ingress(pkt, enq_meta, deq_meta) {
  bit<32> bufSize;
  bit<32> flowID;
  apply {
    // compute flowID
    hash(hdr.ip.src ++ hdr.ip.dst, flowID);
    flowID = flowID % NUM_REGS;
    // initialize enq & deq metadata for this pkt
    enq_meta.flowID = flowID;
    enq_meta.pkt_len = pkt.len;
    deq_meta.flowID = flowID;
    deq_meta.pkt_len = pkt.len;
    // read buffer occupancy of this flow
    bufSize_reg.read(flowID, bufSize);
    // detect microburst
    if (bufSize > FLOW_THRESH) {
      /* microburst culprit! */
      mark(1);
      notify("microburst-culprit");
    }
    forward(3);
  }
}

// Enqueue Event Logic
control Enqueue(enq_data_t meta) {
  bit<32> bufSize;
  apply {
    // increment buffer occupancy of this flow
    bufSize_reg.read(meta.flowID, bufSize);
    bufSize = bufSize + meta.pkt_len;
    bufSize_reg.write(meta.flowID, bufSize);
  }
}

// Dequeue Event Logic
control Dequeue(deq_data_t meta) {
  bit<32> bufSize;
  apply {
    bufSize_reg.read(meta.flowID, bufSize);
    bufSize = bufSize - meta.pkt_len;
    bufSize_reg.write(meta.flowID, bufSize);
  }
}
|}
