open Ast

exception Parse_error of string * Ast.position

type state = { mutable toks : Lexer.lexed list; consts : (string, int) Hashtbl.t }

let peek st =
  match st.toks with
  | t :: _ -> t
  | [] -> { Lexer.token = Lexer.EOF; pos = { line = 0; col = 0 } }

let next st =
  let t = peek st in
  (match st.toks with [] -> () | _ :: rest -> st.toks <- rest);
  t

let fail st msg =
  let t = peek st in
  raise (Parse_error (Printf.sprintf "%s (found %s)" msg (Lexer.token_to_string t.Lexer.token), t.Lexer.pos))

let expect st tok msg =
  let t = next st in
  if t.Lexer.token <> tok then
    raise
      (Parse_error
         ( Printf.sprintf "expected %s %s, found %s" (Lexer.token_to_string tok) msg
             (Lexer.token_to_string t.Lexer.token),
           t.Lexer.pos ))

let expect_ident st msg =
  match next st with
  | { Lexer.token = Lexer.IDENT s; _ } -> s
  | t ->
      raise
        (Parse_error
           (Printf.sprintf "expected %s, found %s" msg (Lexer.token_to_string t.Lexer.token), t.Lexer.pos))

(* '>>' may close two nested angle brackets (shared_register<bit<32>>):
   accept SHR where '>' is expected by splitting it. *)
let expect_rangle st msg =
  match peek st with
  | { Lexer.token = Lexer.RANGLE; _ } -> ignore (next st)
  | { Lexer.token = Lexer.SHR; pos } ->
      ignore (next st);
      st.toks <- { Lexer.token = Lexer.RANGLE; pos } :: st.toks
  | t ->
      raise
        (Parse_error
           ( Printf.sprintf "expected '>' %s, found %s" msg (Lexer.token_to_string t.Lexer.token),
             t.Lexer.pos ))

let expect_int st msg =
  match next st with
  | { Lexer.token = Lexer.INT n; _ } -> n
  | t ->
      raise
        (Parse_error
           (Printf.sprintf "expected %s, found %s" msg (Lexer.token_to_string t.Lexer.token), t.Lexer.pos))

(* An integer literal or a previously declared constant's name —
   register sizes and timer periods may use consts (NUM_REGS). *)
let expect_const_int st msg =
  match next st with
  | { Lexer.token = Lexer.INT n; _ } -> n
  | { Lexer.token = Lexer.IDENT name; pos } -> (
      match Hashtbl.find_opt st.consts name with
      | Some v -> v
      | None ->
          raise
            (Parse_error
               (Printf.sprintf "expected %s; %S is not a declared constant" msg name, pos)))
  | t ->
      raise
        (Parse_error
           (Printf.sprintf "expected %s, found %s" msg (Lexer.token_to_string t.Lexer.token), t.Lexer.pos))

(* --- types --- *)

(* bit<32> or bool *)
let parse_typ st =
  match next st with
  | { Lexer.token = Lexer.IDENT "bool"; _ } -> Bool
  | { Lexer.token = Lexer.IDENT "bit"; _ } ->
      expect st Lexer.LANGLE "after 'bit'";
      let n = expect_int st "bit width" in
      expect_rangle st "after bit width";
      if n <= 0 || n > 62 then fail st "bit width must be in 1..62";
      Bit n
  | t ->
      raise
        (Parse_error
           (Printf.sprintf "expected a type, found %s" (Lexer.token_to_string t.Lexer.token), t.Lexer.pos))

(* --- expressions (precedence climbing) --- *)

let rec parse_primary st =
  let t = next st in
  match t.Lexer.token with
  | Lexer.INT n -> Int n
  | Lexer.STRING s -> String_lit s
  | Lexer.IDENT "true" -> Bool_lit true
  | Lexer.IDENT "false" -> Bool_lit false
  | Lexer.IDENT id -> (
      (* Either a path (x.y.z) or a call f(...). *)
      match (peek st).Lexer.token with
      | Lexer.LPAREN ->
          ignore (next st);
          let args = parse_args st in
          Call (id, args)
      | Lexer.DOT ->
          let rec fields acc =
            match (peek st).Lexer.token with
            | Lexer.DOT ->
                ignore (next st);
                let f = expect_ident st "a field name" in
                fields (f :: acc)
            | _ -> List.rev acc
          in
          Path (id :: fields [])
      | _ -> Path [ id ])
  | Lexer.LPAREN ->
      let e = parse_expr_prec st 0 in
      expect st Lexer.RPAREN "to close the parenthesised expression";
      e
  | Lexer.BANG -> Unop (Not, parse_primary st)
  | Lexer.TILDE -> Unop (BitNot, parse_primary st)
  | Lexer.MINUS -> Unop (Neg, parse_primary st)
  | tok ->
      raise
        (Parse_error
           (Printf.sprintf "expected an expression, found %s" (Lexer.token_to_string tok), t.Lexer.pos))

and parse_args st =
  match (peek st).Lexer.token with
  | Lexer.RPAREN ->
      ignore (next st);
      []
  | _ ->
      let rec go acc =
        let e = parse_expr_prec st 0 in
        match (next st).Lexer.token with
        | Lexer.COMMA -> go (e :: acc)
        | Lexer.RPAREN -> List.rev (e :: acc)
        | _ -> fail st "expected ',' or ')' in argument list"
      in
      go []

and binop_of_token = function
  | Lexer.OROR -> Some (Or, 1)
  | Lexer.ANDAND -> Some (And, 2)
  | Lexer.EQEQ -> Some (Eq, 3)
  | Lexer.NEQ -> Some (Neq, 3)
  | Lexer.LANGLE -> Some (Lt, 4)
  | Lexer.RANGLE -> Some (Gt, 4)
  | Lexer.LE -> Some (Le, 4)
  | Lexer.GE -> Some (Ge, 4)
  | Lexer.PIPE -> Some (BitOr, 5)
  | Lexer.CARET -> Some (BitXor, 6)
  | Lexer.AMP -> Some (BitAnd, 7)
  | Lexer.SHL -> Some (Shl, 8)
  | Lexer.SHR -> Some (Shr, 8)
  | Lexer.CONCAT -> Some (Concat, 8)
  | Lexer.PLUS -> Some (Add, 9)
  | Lexer.MINUS -> Some (Sub, 9)
  | Lexer.STAR -> Some (Mul, 10)
  | Lexer.SLASH -> Some (Div, 10)
  | Lexer.PERCENT -> Some (Mod, 10)
  | _ -> None

and parse_expr_prec st min_prec =
  let lhs = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    match binop_of_token (peek st).Lexer.token with
    | Some (op, prec) when prec >= min_prec ->
        ignore (next st);
        let rhs = parse_expr_prec st (prec + 1) in
        lhs := Binop (op, !lhs, rhs)
    | Some _ | None -> continue := false
  done;
  !lhs

(* --- statements --- *)

let rec parse_stmt st =
  let t = peek st in
  let pos = t.Lexer.pos in
  match t.Lexer.token with
  | Lexer.IDENT ("bit" | "bool") ->
      let typ = parse_typ st in
      let name = expect_ident st "a variable name" in
      let init =
        match (peek st).Lexer.token with
        | Lexer.ASSIGN ->
            ignore (next st);
            Some (parse_expr_prec st 0)
        | _ -> None
      in
      expect st Lexer.SEMI "after the declaration";
      Declare { typ; name; init; pos }
  | Lexer.IDENT "if" ->
      ignore (next st);
      expect st Lexer.LPAREN "after 'if'";
      let cond = parse_expr_prec st 0 in
      expect st Lexer.RPAREN "to close the if condition";
      let then_ = parse_block st in
      let else_ =
        match (peek st).Lexer.token with
        | Lexer.IDENT "else" ->
            ignore (next st);
            (match (peek st).Lexer.token with
            | Lexer.IDENT "if" -> [ parse_stmt st ]
            | _ -> parse_block st)
        | _ -> []
      in
      If { cond; then_; else_; pos }
  | Lexer.IDENT id -> (
      ignore (next st);
      match (peek st).Lexer.token with
      | Lexer.LPAREN ->
          (* builtin call: forward(1); *)
          ignore (next st);
          let args = parse_args st in
          expect st Lexer.SEMI "after the call";
          Builtin_call { name = id; args; pos }
      | Lexer.DOT -> (
          (* Either a method call reg.read(...) or an assignment to a
             dotted lvalue meta.x = e. Collect the dotted path first. *)
          let rec fields acc =
            match (peek st).Lexer.token with
            | Lexer.DOT ->
                ignore (next st);
                let f = expect_ident st "a field or method name" in
                fields (f :: acc)
            | _ -> List.rev acc
          in
          let path = id :: fields [] in
          match (peek st).Lexer.token with
          | Lexer.LPAREN ->
              ignore (next st);
              let args = parse_args st in
              expect st Lexer.SEMI "after the method call";
              (match List.rev path with
              | meth :: rev_target when rev_target <> [] ->
                  Method_call
                    { target = String.concat "." (List.rev rev_target); meth; args; pos }
              | _ -> fail st "method call needs a target")
          | Lexer.ASSIGN ->
              ignore (next st);
              let expr = parse_expr_prec st 0 in
              expect st Lexer.SEMI "after the assignment";
              Assign { lvalue = path; expr; pos }
          | _ -> fail st "expected '(' or '=' after the dotted name")
      | Lexer.ASSIGN ->
          ignore (next st);
          let expr = parse_expr_prec st 0 in
          expect st Lexer.SEMI "after the assignment";
          Assign { lvalue = [ id ]; expr; pos }
      | _ -> fail st "expected a statement")
  | _ -> fail st "expected a statement"

and parse_block st =
  expect st Lexer.LBRACE "to open a block";
  let rec go acc =
    match (peek st).Lexer.token with
    | Lexer.RBRACE ->
        ignore (next st);
        List.rev acc
    | _ -> go (parse_stmt st :: acc)
  in
  go []

(* --- declarations --- *)

(* shared_register<bit<32>>(1024) name; *)
let parse_register_decl st ~shared pos =
  expect st Lexer.LANGLE "after the register keyword";
  let typ = parse_typ st in
  let width = match typ with Bit n -> n | Bool -> 1 in
  expect_rangle st "after the register cell type";
  expect st Lexer.LPAREN "before the entry count";
  let entries = expect_const_int st "the entry count" in
  expect st Lexer.RPAREN "after the entry count";
  let name = expect_ident st "the register name" in
  expect st Lexer.SEMI "after the register declaration";
  if shared then Shared_register_decl { width; entries; name; pos }
  else Register_decl { width; entries; name; pos }

let parse_decl st =
  let t = peek st in
  let pos = t.Lexer.pos in
  match t.Lexer.token with
  | Lexer.IDENT "shared_register" ->
      ignore (next st);
      parse_register_decl st ~shared:true pos
  | Lexer.IDENT "register" ->
      ignore (next st);
      parse_register_decl st ~shared:false pos
  | Lexer.IDENT "const" ->
      ignore (next st);
      (* const NAME = 42;  (an optional bit<N> type is accepted) *)
      (match (peek st).Lexer.token with
      | Lexer.IDENT ("bit" | "bool") -> ignore (parse_typ st)
      | _ -> ());
      let name = expect_ident st "the constant name" in
      expect st Lexer.ASSIGN "after the constant name";
      let value = expect_int st "the constant value" in
      expect st Lexer.SEMI "after the constant";
      Hashtbl.replace st.consts name value;
      Const_decl { name; value; pos }
  | Lexer.IDENT "timer" ->
      ignore (next st);
      expect st Lexer.LPAREN "after 'timer'";
      let period_us = expect_const_int st "the timer period (microseconds)" in
      expect st Lexer.RPAREN "after the timer period";
      let name = expect_ident st "the timer name" in
      expect st Lexer.SEMI "after the timer declaration";
      Timer_decl { name; period_us; pos }
  | Lexer.IDENT "efsm" ->
      ignore (next st);
      (* efsm(1024) conn { regs 2; timeout 500;
           on 0 when in == 1 => 1 { r0 = 1; } ... } *)
      expect st Lexer.LPAREN "after 'efsm'";
      let entries = expect_const_int st "the EFSM entry count" in
      expect st Lexer.RPAREN "after the EFSM entry count";
      let name = expect_ident st "the EFSM name" in
      expect st Lexer.LBRACE "to open the EFSM body";
      let nregs = ref 0 and timeout_us = ref None and transitions = ref [] in
      let parse_actions () =
        expect st Lexer.LBRACE "to open the action block";
        let rec go acc =
          match (peek st).Lexer.token with
          | Lexer.RBRACE ->
              ignore (next st);
              List.rev acc
          | _ ->
              let dst = expect_ident st "an EFSM register name" in
              expect st Lexer.ASSIGN "after the EFSM register name";
              let e = parse_expr_prec st 0 in
              expect st Lexer.SEMI "after the EFSM action";
              go ((dst, e) :: acc)
        in
        go []
      in
      let rec body () =
        let t = peek st in
        match t.Lexer.token with
        | Lexer.RBRACE -> ignore (next st)
        | Lexer.IDENT "regs" ->
            ignore (next st);
            nregs := expect_const_int st "the EFSM register count";
            expect st Lexer.SEMI "after the EFSM register count";
            body ()
        | Lexer.IDENT "timeout" ->
            ignore (next st);
            timeout_us := Some (expect_const_int st "the EFSM idle timeout (microseconds)");
            expect st Lexer.SEMI "after the EFSM timeout";
            body ()
        | Lexer.IDENT "on" ->
            ignore (next st);
            let t_pos = t.Lexer.pos in
            let t_from = expect_const_int st "the source state" in
            let t_guard =
              match (peek st).Lexer.token with
              | Lexer.IDENT "when" ->
                  ignore (next st);
                  Some (parse_expr_prec st 0)
              | _ -> None
            in
            expect st Lexer.ASSIGN "'=>' after the transition source";
            expect_rangle st "'=>' after the transition source";
            let t_next = expect_const_int st "the target state" in
            let t_actions = parse_actions () in
            transitions := { t_from; t_guard; t_next; t_actions; t_pos } :: !transitions;
            body ()
        | _ -> fail st "expected 'regs', 'timeout', 'on' or '}' in the EFSM body"
      in
      body ();
      Efsm_decl
        {
          name;
          entries;
          nregs = !nregs;
          timeout_us = !timeout_us;
          transitions = List.rev !transitions;
          pos;
        }
  | Lexer.IDENT "pattern" ->
      ignore (next st);
      (* pattern(1024) flood { tick 10; timeout 200;
           match within(100, count(16, ingress_packet(1, 1))); } *)
      expect st Lexer.LPAREN "after 'pattern'";
      let entries = expect_const_int st "the pattern table size" in
      expect st Lexer.RPAREN "after the pattern table size";
      let name = expect_ident st "the pattern name" in
      expect st Lexer.LBRACE "to open the pattern body";
      let tick_us = ref None and timeout_us = ref None and expr = ref None in
      let rec body () =
        let t = peek st in
        match t.Lexer.token with
        | Lexer.RBRACE -> ignore (next st)
        | Lexer.IDENT "tick" ->
            ignore (next st);
            tick_us := Some (expect_const_int st "the detector tick period (microseconds)");
            expect st Lexer.SEMI "after the pattern tick period";
            body ()
        | Lexer.IDENT "timeout" ->
            ignore (next st);
            timeout_us := Some (expect_const_int st "the pattern idle timeout (microseconds)");
            expect st Lexer.SEMI "after the pattern timeout";
            body ()
        | Lexer.IDENT "match" ->
            ignore (next st);
            if !expr <> None then fail st "a pattern has exactly one match clause";
            expr := Some (parse_expr_prec st 0);
            expect st Lexer.SEMI "after the match expression";
            body ()
        | _ -> fail st "expected 'tick', 'timeout', 'match' or '}' in the pattern body"
      in
      body ();
      (match !expr with
      | None -> raise (Parse_error ("pattern " ^ name ^ " has no match clause", pos))
      | Some expr ->
          Pattern_decl
            { name; entries; tick_us = !tick_us; timeout_us = !timeout_us; expr; pos })
  | Lexer.IDENT "control" ->
      ignore (next st);
      let name = expect_ident st "the control name" in
      (* Parameter list accepted and ignored: the architecture supplies
         the environment for each event class. *)
      expect st Lexer.LPAREN "after the control name";
      let depth = ref 1 in
      while !depth > 0 do
        match (next st).Lexer.token with
        | Lexer.LPAREN -> incr depth
        | Lexer.RPAREN -> decr depth
        | Lexer.EOF -> fail st "unterminated control parameter list"
        | _ -> ()
      done;
      expect st Lexer.LBRACE "to open the control body";
      (* Locals before apply are treated as statements prepended to the
         apply body. *)
      let rec go locals =
        match (peek st).Lexer.token with
        | Lexer.IDENT "apply" ->
            ignore (next st);
            let body = parse_block st in
            expect st Lexer.RBRACE "to close the control";
            Control_decl { name; body = List.rev_append locals body; pos }
        | Lexer.IDENT ("bit" | "bool") -> go (parse_stmt st :: locals)
        | _ -> fail st "expected local declarations or 'apply' in the control body"
      in
      go []
  | tok ->
      raise
        (Parse_error
           ( Printf.sprintf "expected a declaration, found %s" (Lexer.token_to_string tok),
             t.Lexer.pos ))

let parse source =
  let st = { toks = Lexer.tokenize source; consts = Hashtbl.create 8 } in
  let rec go acc =
    match (peek st).Lexer.token with
    | Lexer.EOF -> List.rev acc
    | _ -> go (parse_decl st :: acc)
  in
  go []

let parse_expr source =
  let st = { toks = Lexer.tokenize source; consts = Hashtbl.create 8 } in
  let e = parse_expr_prec st 0 in
  expect st Lexer.EOF "after the expression";
  e
