open Ast

let typ_to_string = function Bit n -> Printf.sprintf "bit<%d>" n | Bool -> "bool"

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | BitAnd -> "&"
  | BitOr -> "|"
  | BitXor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Concat -> "++"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

(* Mirror of Parser.binop_of_token's precedence table. *)
let prec = function
  | Or -> 1
  | And -> 2
  | Eq | Neq -> 3
  | Lt | Le | Gt | Ge -> 4
  | BitOr -> 5
  | BitXor -> 6
  | BitAnd -> 7
  | Shl | Shr | Concat -> 8
  | Add | Sub -> 9
  | Mul | Div | Mod -> 10

let rec expr_prec ctx_prec e =
  match e with
  | Int n -> string_of_int n
  | Bool_lit b -> if b then "true" else "false"
  | String_lit s -> Printf.sprintf "%S" s
  | Path p -> String.concat "." p
  | Unop (op, e) ->
      let s = match op with Not -> "!" | BitNot -> "~" | Neg -> "-" in
      s ^ expr_prec 11 e
  | Binop (op, a, b) ->
      let p = prec op in
      (* The parser is left-associative at each level (rhs parsed at
         prec+1), so parenthesise a right child of equal precedence. *)
      let s =
        Printf.sprintf "%s %s %s" (expr_prec p a) (binop_str op) (expr_prec (p + 1) b)
      in
      if p < ctx_prec then "(" ^ s ^ ")" else s
  | Call (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map (expr_prec 0) args))

let expr_to_string e = expr_prec 0 e

let pad n = String.make n ' '

let rec stmt_to_string ?(indent = 0) stmt =
  let ind = pad indent in
  match stmt with
  | Declare { typ; name; init; _ } -> (
      match init with
      | None -> Printf.sprintf "%s%s %s;" ind (typ_to_string typ) name
      | Some e -> Printf.sprintf "%s%s %s = %s;" ind (typ_to_string typ) name (expr_to_string e))
  | Assign { lvalue; expr; _ } ->
      Printf.sprintf "%s%s = %s;" ind (String.concat "." lvalue) (expr_to_string expr)
  | If { cond; then_; else_; _ } ->
      let block stmts =
        if stmts = [] then "{ }"
        else
          Printf.sprintf "{\n%s\n%s}"
            (String.concat "\n" (List.map (stmt_to_string ~indent:(indent + 2)) stmts))
            ind
      in
      let base = Printf.sprintf "%sif (%s) %s" ind (expr_to_string cond) (block then_) in
      if else_ = [] then base else Printf.sprintf "%s else %s" base (block else_)
  | Method_call { target; meth; args; _ } ->
      Printf.sprintf "%s%s.%s(%s);" ind target meth
        (String.concat ", " (List.map expr_to_string args))
  | Builtin_call { name; args; _ } ->
      Printf.sprintf "%s%s(%s);" ind name (String.concat ", " (List.map expr_to_string args))

let decl_to_string = function
  | Shared_register_decl { width; entries; name; _ } ->
      Printf.sprintf "shared_register<bit<%d>>(%d) %s;" width entries name
  | Register_decl { width; entries; name; _ } ->
      Printf.sprintf "register<bit<%d>>(%d) %s;" width entries name
  | Const_decl { name; value; _ } -> Printf.sprintf "const %s = %d;" name value
  | Timer_decl { name; period_us; _ } -> Printf.sprintf "timer(%d) %s;" period_us name
  | Efsm_decl { name; entries; nregs; timeout_us; transitions; _ } ->
      let header =
        Printf.sprintf "regs %d;" nregs
        :: (match timeout_us with None -> [] | Some t -> [ Printf.sprintf "timeout %d;" t ])
      in
      let transition tr =
        let guard =
          match tr.t_guard with
          | None -> ""
          | Some g -> Printf.sprintf " when %s" (expr_to_string g)
        in
        let actions =
          String.concat " "
            (List.map (fun (dst, e) -> Printf.sprintf "%s = %s;" dst (expr_to_string e)) tr.t_actions)
        in
        Printf.sprintf "on %d%s => %d { %s}" tr.t_from guard tr.t_next
          (if actions = "" then "" else actions ^ " ")
      in
      Printf.sprintf "efsm(%d) %s {\n%s\n}" entries name
        (String.concat "\n" (List.map (fun l -> "  " ^ l) (header @ List.map transition transitions)))
  | Pattern_decl { name; entries; tick_us; timeout_us; expr; _ } ->
      let header =
        (match tick_us with None -> [] | Some t -> [ Printf.sprintf "tick %d;" t ])
        @ (match timeout_us with None -> [] | Some t -> [ Printf.sprintf "timeout %d;" t ])
        @ [ Printf.sprintf "match %s;" (expr_to_string expr) ]
      in
      Printf.sprintf "pattern(%d) %s {\n%s\n}" entries name
        (String.concat "\n" (List.map (fun l -> "  " ^ l) header))
  | Control_decl { name; body; _ } ->
      Printf.sprintf "control %s() {\n  apply {\n%s\n  }\n}" name
        (String.concat "\n" (List.map (stmt_to_string ~indent:4) body))

let program_to_string program = String.concat "\n\n" (List.map decl_to_string program) ^ "\n"
