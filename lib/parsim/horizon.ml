let safe ~neighbor_horizons ~lookahead =
  if lookahead <= 0 then invalid_arg "Horizon.safe: lookahead must be positive";
  List.fold_left (fun acc h -> min acc (h + lookahead)) max_int neighbor_horizons

let rounds ~until ~lookahead =
  if lookahead <= 0 then invalid_arg "Horizon.rounds: lookahead must be positive";
  if until < 0 then invalid_arg "Horizon.rounds: negative until";
  (until + lookahead) / lookahead

let window ~round ~lookahead ~until =
  if lookahead <= 0 then invalid_arg "Horizon.window: lookahead must be positive";
  if round < 0 then invalid_arg "Horizon.window: negative round";
  let start = min (round * lookahead) (until + 1) in
  let horizon = min ((round + 1) * lookahead) (until + 1) in
  (start, horizon)
