(* Large enough to never be a real timestamp, small enough that
   [no_event + delay] cannot overflow. *)
let no_event = max_int / 4

let adaptive_bound ~min_out_delays ~next_events ~until =
  let n = Array.length next_events in
  if Array.length min_out_delays <> n then
    invalid_arg "Horizon.adaptive_bound: array length mismatch";
  let bound = ref (until + 1) in
  for j = 0 to n - 1 do
    let d = min_out_delays.(j) in
    if d < no_event then begin
      let reach = next_events.(j) + d in
      if reach < !bound then bound := reach
    end
  done;
  !bound

let safe ~neighbor_horizons ~lookahead =
  if lookahead <= 0 then invalid_arg "Horizon.safe: lookahead must be positive";
  List.fold_left (fun acc h -> min acc (h + lookahead)) max_int neighbor_horizons

let rounds ~until ~lookahead =
  if lookahead <= 0 then invalid_arg "Horizon.rounds: lookahead must be positive";
  if until < 0 then invalid_arg "Horizon.rounds: negative until";
  (until + lookahead) / lookahead

let window ~round ~lookahead ~until =
  if lookahead <= 0 then invalid_arg "Horizon.window: lookahead must be positive";
  if round < 0 then invalid_arg "Horizon.window: negative round";
  let start = min (round * lookahead) (until + 1) in
  let horizon = min ((round + 1) * lookahead) (until + 1) in
  (start, horizon)
