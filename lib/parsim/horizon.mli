(** Conservative-synchronization horizon algebra.

    Pure arithmetic behind the lockstep engine, factored out so the
    safety rule is unit-testable on its own. The conservative
    guarantee: a shard whose neighbours have published execution
    horizons [h_j] may itself execute strictly below
    [min_j (h_j + lookahead)] — any cross-shard packet sent by
    neighbour [j] departs at or after [h_j]'s window and arrives no
    earlier than departure + lookahead, so nothing can land in the
    executing shard's past.

    The lockstep engine tiles simulated time into windows. In {e
    static} mode the width is the global minimum cross-link delay
    [lookahead]: round [r] covers [[r*L, min((r+1)*L, until+1))]. When
    every shard has published horizon [r*L], the safe bound is
    [r*L + L], which is exactly the next window's end — the whole fleet
    advances one window per round.

    In {e adaptive} mode each round starts with every shard publishing
    the timestamp of its earliest queued event ([no_event] when its
    queue is empty). Because cross-shard messages are staged and
    released only at the window barrier, every packet shard [j] sends
    during the coming window departs at or after [j]'s published next
    event [n_j] and lands no earlier than [n_j + d] for the cheapest
    cross link out of [j]. The fleet-wide bound
    [min_j (n_j + min_out_delay_j)] is therefore safe, and — computed
    by every shard from the same published array — identical
    everywhere, which preserves the lockstep rendezvous. Quiescent
    shards publish [no_event] and stop constraining the fleet: sparse
    traffic no longer serializes at min-delay granularity. *)

val no_event : int
(** Sentinel a quiescent shard publishes as its next-event time. Larger
    than any real timestamp, small enough that [no_event + delay] never
    overflows. *)

val adaptive_bound : min_out_delays:int array -> next_events:int array -> until:int -> int
(** [min_j (next_events.(j) + min_out_delays.(j))] clamped from above
    to [until + 1]. Entries of [min_out_delays] at or above [no_event]
    mean "shard [j] has no cross link into anyone" and are skipped, as
    effectively are shards whose [next_events] is [no_event]. With all
    shards quiescent (or no cross links at all) the bound is
    [until + 1]: one final window closes out the run. Never below
    [min_j next_events.(j) + 1] when some constraining edge exists, so
    a round always makes progress past the earliest published event.
    Raises [Invalid_argument] on array length mismatch. *)

val safe : neighbor_horizons:int list -> lookahead:int -> int
(** [min_j (h_j + lookahead)]; [max_int] with no neighbours (an
    unpartitioned run has no one to wait for). Raises
    [Invalid_argument] when [lookahead <= 0] — zero lookahead means no
    shard could ever advance. *)

val rounds : until:int -> lookahead:int -> int
(** Number of windows tiling [[0, until]]: smallest [r] with
    [r * lookahead > until]. *)

val window : round:int -> lookahead:int -> until:int -> int * int
(** [(start, horizon)] of a round: [start = min(round*L, until+1)] and
    [horizon = min((round+1)*L, until+1)]. Consecutive windows tile
    [[0, until+1)] exactly: window [r]'s horizon is window [r+1]'s
    start. *)
