(** Conservative-synchronization horizon algebra.

    Pure arithmetic behind the lockstep engine, factored out so the
    safety rule is unit-testable on its own. The conservative
    guarantee: a shard whose neighbours have published execution
    horizons [h_j] may itself execute strictly below
    [min_j (h_j + lookahead)] — any cross-shard packet sent by
    neighbour [j] departs at or after [h_j]'s window and arrives no
    earlier than departure + lookahead, so nothing can land in the
    executing shard's past.

    The lockstep engine tiles simulated time into windows of width
    [lookahead]: round [r] covers [[r*L, min((r+1)*L, until+1))]. When
    every shard has published horizon [r*L], the safe bound is
    [r*L + L], which is exactly the next window's end — the whole fleet
    advances one window per round. *)

val safe : neighbor_horizons:int list -> lookahead:int -> int
(** [min_j (h_j + lookahead)]; [max_int] with no neighbours (an
    unpartitioned run has no one to wait for). Raises
    [Invalid_argument] when [lookahead <= 0] — zero lookahead means no
    shard could ever advance. *)

val rounds : until:int -> lookahead:int -> int
(** Number of windows tiling [[0, until]]: smallest [r] with
    [r * lookahead > until]. *)

val window : round:int -> lookahead:int -> until:int -> int * int
(** [(start, horizon)] of a round: [start = min(round*L, until+1)] and
    [horizon = min((round+1)*L, until+1)]. Consecutive windows tile
    [[0, until+1)] exactly: window [r]'s horizon is window [r+1]'s
    start. *)
