module Spsc = Spsc
module Horizon = Horizon
module Scheduler = Eventsim.Scheduler
module Topology = Evcore.Topology
module Event_switch = Evcore.Event_switch
module Host = Evcore.Host
module Link = Tmgr.Link

(* ------------------------------------------------------------------ *)
(* Partitioning                                                        *)

type partition = {
  shards : int;
  shard_of_switch : int array;
  shard_of_host : int array;
}

let partition (topo : Topology.t) ~shards =
  if shards < 1 || shards > topo.switches then
    invalid_arg
      (Printf.sprintf "Parsim.partition: %d shards for %d switches" shards topo.switches);
  let shard_of_switch = Array.make topo.switches 0 in
  let base = topo.switches / shards and rem = topo.switches mod shards in
  let sw = ref 0 in
  for s = 0 to shards - 1 do
    let width = base + if s < rem then 1 else 0 in
    for _ = 1 to width do
      shard_of_switch.(!sw) <- s;
      incr sw
    done
  done;
  let shard_of_host = Array.make topo.hosts 0 in
  List.iter
    (fun (at : Topology.attachment) -> shard_of_host.(at.host) <- shard_of_switch.(at.switch))
    topo.attachments;
  { shards; shard_of_switch; shard_of_host }

type cross_link = { link : Topology.link; shard_a : int; shard_b : int }

type plan = {
  part : partition;
  local_links : (int * Topology.link) list;
  cross : cross_link list;
  channels : (int * int) list;
  lookahead : Eventsim.Sim_time.t;
}

(* With nothing crossing there is no one to wait for: one window covers
   the run ([Horizon.rounds] needs [until + lookahead] to not
   overflow, hence not [max_int]). *)
let infinite_lookahead = max_int / 4

let plan (topo : Topology.t) ~shards =
  Topology.validate topo;
  let part = partition topo ~shards in
  let local, cross =
    List.partition_map
      (fun (l : Topology.link) ->
        let sa = part.shard_of_switch.(fst l.a) and sb = part.shard_of_switch.(fst l.b) in
        if sa = sb then Left (sa, l) else Right { link = l; shard_a = sa; shard_b = sb })
      topo.links
  in
  let channels =
    List.concat_map (fun c -> [ (c.shard_a, c.shard_b); (c.shard_b, c.shard_a) ]) cross
    |> List.sort_uniq compare
  in
  let lookahead =
    List.fold_left (fun acc c -> min acc c.link.delay) infinite_lookahead cross
  in
  { part; local_links = local; cross; channels; lookahead }

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

type shard_ctx = {
  shard : int;
  sched : Scheduler.t;
  metrics : Obs.Metrics.t;
  switches : (int * Event_switch.t) list;
  hosts : (int * Host.t) list;
  links : (int * Link.t) list;
}

type config = {
  shards : int;
  until : Eventsim.Sim_time.t;
  channel_capacity : int;
  backend : Eventsim.Sched_backend.t option;
  record_trace : bool;
  switch_config : int -> Event_switch.config;
  program : int -> Evcore.Program.spec;
  on_shard : shard_ctx -> unit;
}

let config ?(shards = 1) ?(channel_capacity = 1024) ?backend ?(record_trace = false)
    ?(on_shard = fun _ -> ()) ~until ~switch_config ~program () =
  { shards; until; channel_capacity; backend; record_trace; switch_config; program; on_shard }

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)

(* A packet in flight between shards. [mkey] identifies the directed
   cross-link ([link_id * 2 + direction]); (mtime, mkey, mseq) is the
   deterministic release order at the barrier. *)
type message = { mtime : int; mkey : int; mseq : int; mpkt : Netcore.Packet.t }

(* One packet arrival, for the conformance trace. Entities live on one
   shard each, so per-entity streams are recorded in execution order;
   the merge sorts on (time, kind, id, per-entity seq) — a total,
   shard-count-independent order as long as concurrent arrivals at
   distinct entities never need a cross-entity tie broken differently
   than the sequential scheduler would (the topology builders' per-link
   delay skew keeps them on distinct picoseconds). *)
type entry = { et : int; ekind : int; eid : int; eseq : int; edetail : string }

type shard_state = {
  mutable ctx : shard_ctx;
  mutable staging : message list;
  mutable trace : entry list;  (* reversed *)
  mutable cross_sent : int;
  mutable cross_delivered : int;
}

type engine = {
  n : int;
  until : int;
  lookahead : int;
  states : shard_state array;
  chans : message Spsc.t option array array;
  progress : int Atomic.t array;  (* published horizon (null message), ps *)
  votes : int Atomic.t array;  (* completed_rounds * 2 + quiet? *)
  xdeliver : (Netcore.Packet.t -> unit) array;  (* by mkey; receiver-owned *)
}

(* Spin briefly, then sleep. On a machine with a core per shard the
   barrier resolves during the relax phase; with fewer cores than
   shards (or one), spinning would burn the whole OS quantum while the
   peer waits to run, so yield the processor instead. *)
let backoff spins =
  if spins < 200 then Domain.cpu_relax () else Unix.sleepf 0.0001

let drain_inbound eng shard =
  let st = eng.states.(shard) in
  for j = 0 to eng.n - 1 do
    match eng.chans.(j).(shard) with
    | None -> ()
    | Some c ->
        let rec pop () =
          match Spsc.try_pop c with
          | None -> ()
          | Some m ->
              st.staging <- m :: st.staging;
              pop ()
        in
        pop ()
  done

(* Producer-side send. On a full channel, drain our own inbound (the
   peer may be blocked pushing to us) and retry — the barrier cannot
   deadlock on mutual backpressure. *)
let xsend eng ~src ~dst m =
  match eng.chans.(src).(dst) with
  | None -> assert false
  | Some c ->
      let spins = ref 0 in
      while not (Spsc.try_push c m) do
        drain_inbound eng src;
        backoff !spins;
        incr spins
      done

let compare_message a b =
  match compare a.mtime b.mtime with
  | 0 -> ( match compare a.mkey b.mkey with 0 -> compare a.mseq b.mseq | c -> c)
  | c -> c

let release_staged eng shard =
  let st = eng.states.(shard) in
  let msgs = List.sort compare_message st.staging in
  st.staging <- [];
  List.iter
    (fun m ->
      if m.mtime <= eng.until then
        Scheduler.post ~cls:"xlink" st.ctx.sched ~at:m.mtime (fun () ->
            st.cross_delivered <- st.cross_delivered + 1;
            eng.xdeliver.(m.mkey) m.mpkt))
    msgs

let wait_progress eng shard ~horizon =
  let again = ref true and spins = ref 0 in
  while !again do
    again := false;
    for j = 0 to eng.n - 1 do
      if Atomic.get eng.progress.(j) < horizon then again := true
    done;
    if !again then begin
      drain_inbound eng shard;
      backoff !spins;
      incr spins
    end
  done

let neighbor_horizons eng = Array.to_list (Array.map Atomic.get eng.progress)

(* The lockstep round loop of one shard. Returns the number of rounds
   it executed (identical on every shard). *)
let run_shard eng shard =
  let st = eng.states.(shard) in
  let sched = st.ctx.sched in
  let total = Horizon.rounds ~until:eng.until ~lookahead:eng.lookahead in
  let r = ref 0 and stop = ref false in
  while (not !stop) && !r < total do
    let _, horizon = Horizon.window ~round:!r ~lookahead:eng.lookahead ~until:eng.until in
    (* The conservative contract: every peer has published at least the
       previous window's horizon, so [horizon] is within the safe
       bound. *)
    assert (horizon <= Horizon.safe ~neighbor_horizons:(neighbor_horizons eng) ~lookahead:eng.lookahead);
    Scheduler.drain_until_horizon sched ~horizon;
    Atomic.set eng.progress.(shard) horizon;
    (* Barrier phase 1: everyone reaches [horizon]; all messages sent
       in this round are then poppable (pushes happen-before the
       horizon store). Drain while waiting to relieve backpressure. *)
    wait_progress eng shard ~horizon;
    drain_inbound eng shard;
    release_staged eng shard;
    let quiet = Scheduler.pending sched = 0 in
    Atomic.set eng.votes.(shard) (((!r + 1) * 2) + if quiet then 1 else 0);
    (* Barrier phase 2: collect this round's votes. A peer cannot be
       past round [!r + 1]'s vote yet (that would need our next window
       executed), so every vote read is for exactly this round and all
       shards reach the same verdict. *)
    let all_quiet = ref true in
    for j = 0 to eng.n - 1 do
      let v = ref (Atomic.get eng.votes.(j)) and spins = ref 0 in
      while !v / 2 < !r + 1 do
        backoff !spins;
        incr spins;
        v := Atomic.get eng.votes.(j)
      done;
      if !v land 1 = 0 then all_quiet := false
    done;
    if !all_quiet then stop := true;
    incr r
  done;
  !r

(* ------------------------------------------------------------------ *)
(* Build + run                                                         *)

type result = {
  plan : plan;
  rounds_executed : int;
  events : int;
  cross_sent : int;
  cross_delivered : int;
  trace : string list;
  registries : Obs.Metrics.t list;
  metrics_json : string;
  host_sent : int array;
  host_received : int array;
  host_received_bytes : int array;
  wall_s : float;
  ctxs : shard_ctx array;
}

let flow_detail pkt =
  match Netcore.Packet.flow pkt with
  | Some f -> Format.asprintf "len=%d %a" (Netcore.Packet.len pkt) Netcore.Flow.pp f
  | None -> Printf.sprintf "len=%d" (Netcore.Packet.len pkt)

let compare_entry a b =
  match compare a.et b.et with
  | 0 -> (
      match compare a.ekind b.ekind with
      | 0 -> ( match compare a.eid b.eid with 0 -> compare a.eseq b.eseq | c -> c)
      | c -> c)
  | c -> c

let render_entry e =
  Printf.sprintf "t=%d %s=%d seq=%d %s" e.et (if e.ekind = 0 then "sw" else "host") e.eid e.eseq
    e.edetail

let run cfg (topo : Topology.t) =
  let pl = plan topo ~shards:cfg.shards in
  let n = cfg.shards in
  let backend = match cfg.backend with None -> !Eventsim.Sched_backend.default | Some b -> b in
  let scheds = Array.init n (fun _ -> Scheduler.create ~backend ()) in
  let sched_of_sw sw = scheds.(pl.part.shard_of_switch.(sw)) in
  let switches =
    Array.init topo.switches (fun sw ->
        let cfg_sw = cfg.switch_config sw in
        let cfg_sw =
          {
            cfg_sw with
            Event_switch.num_ports =
              max cfg_sw.Event_switch.num_ports (Topology.max_port topo sw + 1);
          }
        in
        Event_switch.create ~sched:(sched_of_sw sw) ~id:sw ~config:cfg_sw
          ~program:(cfg.program sw) ())
  in
  let hosts =
    Array.init topo.hosts (fun h ->
        Host.create ~sched:scheds.(pl.part.shard_of_host.(h)) ~id:h ())
  in
  (* Mutable wiring state, then frozen into shard contexts. *)
  let shard_switches = Array.make n [] and shard_hosts = Array.make n [] in
  Array.iteri
    (fun sw esw ->
      let s = pl.part.shard_of_switch.(sw) in
      shard_switches.(s) <- (sw, esw) :: shard_switches.(s))
    switches;
  Array.iteri
    (fun h host ->
      let s = pl.part.shard_of_host.(h) in
      shard_hosts.(s) <- (h, host) :: shard_hosts.(s))
    hosts;
  let states =
    Array.init n (fun s ->
        {
          ctx =
            {
              shard = s;
              sched = scheds.(s);
              metrics = Obs.Metrics.create ();
              switches = List.rev shard_switches.(s);
              hosts = List.rev shard_hosts.(s);
              links = [];
            };
          staging = [];
          trace = [];
          cross_sent = 0;
          cross_delivered = 0;
        })
  in
  let chans = Array.make_matrix n n None in
  List.iter
    (fun (src, dst) -> chans.(src).(dst) <- Some (Spsc.create ~capacity:cfg.channel_capacity))
    pl.channels;
  let n_links = List.length topo.links in
  let eng =
    {
      n;
      until = cfg.until;
      lookahead = pl.lookahead;
      states;
      chans;
      progress = Array.init n (fun _ -> Atomic.make 0);
      votes = Array.init n (fun _ -> Atomic.make 0);
      xdeliver = Array.make (2 * n_links) (fun _ -> assert false);
      }
  in
  (* Trace hooks: per-entity sequence numbers are global arrays, but
     each entity is touched by exactly one shard's domain. *)
  let sw_seq = Array.make topo.switches 0 and host_seq = Array.make topo.hosts 0 in
  let sw_rx shard sw port pkt =
    let st = states.(shard) in
    if cfg.record_trace then begin
      let seq = sw_seq.(sw) in
      sw_seq.(sw) <- seq + 1;
      st.trace <-
        {
          et = Scheduler.now st.ctx.sched;
          ekind = 0;
          eid = sw;
          eseq = seq;
          edetail = Printf.sprintf "port=%d %s" port (flow_detail pkt);
        }
        :: st.trace
    end;
    Event_switch.inject switches.(sw) ~port pkt
  in
  let host_rx shard h pkt =
    let st = states.(shard) in
    if cfg.record_trace then begin
      let seq = host_seq.(h) in
      host_seq.(h) <- seq + 1;
      st.trace <-
        {
          et = Scheduler.now st.ctx.sched;
          ekind = 1;
          eid = h;
          eseq = seq;
          edetail = flow_detail pkt;
        }
        :: st.trace
    end;
    Host.deliver hosts.(h) pkt
  in
  let sw_endpoint shard sw port =
    {
      Link.deliver = (fun pkt -> sw_rx shard sw port pkt);
      notify_status = (fun ~up -> Event_switch.link_status switches.(sw) ~port ~up);
    }
  in
  (* Intra-shard links: real [Tmgr.Link]s — fault-injection capable. *)
  List.iter
    (fun (s, (l : Topology.link)) ->
      let sw_a, port_a = l.a and sw_b, port_b = l.b in
      let link =
        Link.create ~sched:scheds.(s) ~delay:l.delay ?detection_delay:l.detection_delay
          ~a:(sw_endpoint s sw_a port_a) ~b:(sw_endpoint s sw_b port_b) ()
      in
      Event_switch.set_port_tx switches.(sw_a) ~port:port_a (fun pkt ->
          Link.send link ~from_a:true pkt);
      Event_switch.set_port_tx switches.(sw_b) ~port:port_b (fun pkt ->
          Link.send link ~from_a:false pkt);
      states.(s).ctx <- { (states.(s).ctx) with links = (l.link_id, link) :: states.(s).ctx.links })
    pl.local_links;
  (* Host links are intra-shard by construction. *)
  List.iter
    (fun (at : Topology.attachment) ->
      let s = pl.part.shard_of_host.(at.host) in
      let host_ep =
        { Link.deliver = (fun pkt -> host_rx s at.host pkt); notify_status = (fun ~up:_ -> ()) }
      in
      let link =
        Link.create ~sched:scheds.(s) ~delay:at.host_delay ~a:host_ep
          ~b:(sw_endpoint s at.switch at.port) ()
      in
      Host.set_tx hosts.(at.host) (fun pkt -> Link.send link ~from_a:true pkt);
      Event_switch.set_port_tx switches.(at.switch) ~port:at.port (fun pkt ->
          Link.send link ~from_a:false pkt);
      states.(s).ctx <-
        { (states.(s).ctx) with links = (n_links + at.host, link) :: states.(s).ctx.links })
    topo.attachments;
  (* Cross-shard links: each direction is a sender closure computing
     the arrival timestamp (now + delay — exactly [Link.send]'s fast
     path) and a receiver-side delivery endpoint released at the
     barrier. They cannot fail: no perturbation, no status change. *)
  let xseq = Array.make (2 * n_links) 0 in
  List.iter
    (fun c ->
      let l = c.link in
      let wire ~src ~dst ~mkey (sw_from, port_from) (sw_to, port_to) =
        eng.xdeliver.(mkey) <- (fun pkt -> sw_rx dst sw_to port_to pkt);
        Event_switch.set_port_tx switches.(sw_from) ~port:port_from (fun pkt ->
            let st = states.(src) in
            st.cross_sent <- st.cross_sent + 1;
            let seq = xseq.(mkey) in
            xseq.(mkey) <- seq + 1;
            xsend eng ~src ~dst
              { mtime = Scheduler.now st.ctx.sched + l.delay; mkey; mseq = seq; mpkt = pkt })
      in
      wire ~src:c.shard_a ~dst:c.shard_b ~mkey:(2 * l.link_id) l.a l.b;
      wire ~src:c.shard_b ~dst:c.shard_a ~mkey:((2 * l.link_id) + 1) l.b l.a)
    pl.cross;
  (* Freeze link lists into link-id order for ctx consumers. *)
  Array.iter
    (fun st ->
      st.ctx <-
        { (st.ctx) with links = List.sort (fun (a, _) (b, _) -> compare a b) st.ctx.links })
    states;
  Array.iter (fun st -> cfg.on_shard st.ctx) states;
  let t0 = Unix.gettimeofday () in
  let rounds_executed =
    if n = 1 then begin
      (* True sequential path: no windows, no channels, no barriers. *)
      Scheduler.run ~until:cfg.until scheds.(0);
      1
    end
    else begin
      let others = Array.init (n - 1) (fun i -> Domain.spawn (fun () -> run_shard eng (i + 1))) in
      let r0 = run_shard eng 0 in
      Array.iter (fun d -> ignore (Domain.join d : int)) others;
      r0
    end
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  Array.iter
    (fun st ->
      List.iter (fun (_, sw) -> Event_switch.export_metrics sw st.ctx.metrics) st.ctx.switches)
    states;
  let registries = Array.to_list (Array.map (fun st -> st.ctx.metrics) states) in
  let trace =
    if not cfg.record_trace then []
    else
      Array.fold_left (fun acc (st : shard_state) -> List.rev_append st.trace acc) [] states
      |> List.sort compare_entry
      |> List.map render_entry
  in
  {
    plan = pl;
    rounds_executed;
    events = Array.fold_left (fun acc s -> acc + Scheduler.executed s) 0 scheds;
    cross_sent = Array.fold_left (fun acc (st : shard_state) -> acc + st.cross_sent) 0 states;
    cross_delivered = Array.fold_left (fun acc (st : shard_state) -> acc + st.cross_delivered) 0 states;
    trace;
    registries;
    metrics_json = Obs.Metrics.merged_json registries;
    host_sent = Array.map Host.sent hosts;
    host_received = Array.map Host.received hosts;
    host_received_bytes = Array.map Host.received_bytes hosts;
    wall_s;
    ctxs = Array.map (fun st -> st.ctx) states;
  }
