module Spsc = Spsc
module Horizon = Horizon
module Scheduler = Eventsim.Scheduler
module Topology = Evcore.Topology
module Event_switch = Evcore.Event_switch
module Host = Evcore.Host
module Link = Tmgr.Link

(* ------------------------------------------------------------------ *)
(* Partitioning                                                        *)

type partition = {
  shards : int;
  shard_of_switch : int array;
  shard_of_host : int array;
  shard_weight : int array;
}

(* Expected event rate of a switch: every wired port carries link
   events, and an attached host adds traffic generation, host-link and
   delivery events on top — empirically about a 4x multiplier over a
   plain switch-to-switch port. Edge switches therefore weigh several
   times a same-degree core switch, which is exactly the imbalance the
   contiguous equal-count split got wrong on fat trees. *)
let default_weights (topo : Topology.t) =
  let w = Array.make topo.switches 1 in
  List.iter
    (fun (l : Topology.link) ->
      w.(fst l.a) <- w.(fst l.a) + 1;
      w.(fst l.b) <- w.(fst l.b) + 1)
    topo.links;
  List.iter
    (fun (at : Topology.attachment) -> w.(at.switch) <- w.(at.switch) + 4)
    topo.attachments;
  w

let recommended_domains () = max 1 (Domain.recommended_domain_count ())

let partition ?weights (topo : Topology.t) ~shards =
  if shards < 1 || shards > topo.switches then
    invalid_arg
      (Printf.sprintf "Parsim.partition: %d shards for %d switches" shards topo.switches);
  let w =
    match weights with
    | None -> default_weights topo
    | Some w ->
        if Array.length w <> topo.switches then
          invalid_arg "Parsim.partition: weights length <> switches";
        Array.iter
          (fun x -> if x < 0 then invalid_arg "Parsim.partition: negative weight")
          w;
        w
  in
  let nsw = topo.switches in
  let prefix = Array.make (nsw + 1) 0 in
  for i = 0 to nsw - 1 do
    prefix.(i + 1) <- prefix.(i) + w.(i)
  done;
  let total = prefix.(nsw) in
  let shard_of_switch = Array.make nsw 0 in
  let shard_weight = Array.make shards 0 in
  let cut = ref 0 in
  for s = 0 to shards - 1 do
    let hi =
      if s = shards - 1 then nsw
      else begin
        (* Ideal cumulative weight after this shard, rounded to
           nearest. The boundary is clamped so every shard keeps at
           least one switch and leaves one per remaining shard — a
           skewed weight vector can therefore never produce an empty
           shard, it just degrades toward the equal-count split. *)
        let target = ((total * (s + 1)) + (shards / 2)) / shards in
        let lo = !cut + 1 and cap = nsw - (shards - 1 - s) in
        let e = ref lo in
        while !e < cap && prefix.(!e) < target do
          incr e
        done;
        if !e > lo && target - prefix.(!e - 1) < prefix.(!e) - target then decr e;
        !e
      end
    in
    for sw = !cut to hi - 1 do
      shard_of_switch.(sw) <- s
    done;
    shard_weight.(s) <- prefix.(hi) - prefix.(!cut);
    cut := hi
  done;
  let shard_of_host = Array.make topo.hosts 0 in
  List.iter
    (fun (at : Topology.attachment) -> shard_of_host.(at.host) <- shard_of_switch.(at.switch))
    topo.attachments;
  { shards; shard_of_switch; shard_of_host; shard_weight }

type cross_link = { link : Topology.link; shard_a : int; shard_b : int }

type plan = {
  part : partition;
  local_links : (int * Topology.link) list;
  cross : cross_link list;
  channels : (int * int) list;
  lookahead : Eventsim.Sim_time.t;
  pair_delays : (int * int * int) list;
}

(* With nothing crossing there is no one to wait for: one window covers
   the run ([Horizon.rounds] needs [until + lookahead] to not
   overflow, hence not [max_int]). *)
let infinite_lookahead = max_int / 4

let plan ?weights (topo : Topology.t) ~shards =
  Topology.validate topo;
  let part = partition ?weights topo ~shards in
  let local, cross =
    List.partition_map
      (fun (l : Topology.link) ->
        let sa = part.shard_of_switch.(fst l.a) and sb = part.shard_of_switch.(fst l.b) in
        if sa = sb then Left (sa, l) else Right { link = l; shard_a = sa; shard_b = sb })
      topo.links
  in
  let channels =
    List.concat_map (fun c -> [ (c.shard_a, c.shard_b); (c.shard_b, c.shard_a) ]) cross
    |> List.sort_uniq compare
  in
  let lookahead =
    List.fold_left (fun acc c -> min acc c.link.delay) infinite_lookahead cross
  in
  let pair_delays =
    let tbl = Hashtbl.create 16 in
    let note src dst d =
      match Hashtbl.find_opt tbl (src, dst) with
      | Some d0 when d0 <= d -> ()
      | _ -> Hashtbl.replace tbl (src, dst) d
    in
    List.iter
      (fun c ->
        note c.shard_a c.shard_b c.link.delay;
        note c.shard_b c.shard_a c.link.delay)
      cross;
    Hashtbl.fold (fun (s, d) dl acc -> (s, d, dl) :: acc) tbl [] |> List.sort compare
  in
  { part; local_links = local; cross; channels; lookahead; pair_delays }

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

type shard_ctx = {
  shard : int;
  sched : Scheduler.t;
  metrics : Obs.Metrics.t;
  switches : (int * Event_switch.t) list;
  hosts : (int * Host.t) list;
  links : (int * Link.t) list;
}

type horizon_mode = Adaptive | Static

type config = {
  shards : int;
  until : Eventsim.Sim_time.t;
  channel_capacity : int;
  backend : Eventsim.Sched_backend.t option;
  horizon : horizon_mode;
  record_trace : bool;
  record_digest : bool;
  switch_config : int -> Event_switch.config;
  program : int -> Evcore.Program.spec;
  on_shard : shard_ctx -> unit;
}

let config ?(shards = 1) ?(channel_capacity = 1024) ?backend ?(horizon = Adaptive)
    ?(record_trace = false) ?(record_digest = false) ?(on_shard = fun _ -> ()) ~until
    ~switch_config ~program () =
  {
    shards;
    until;
    channel_capacity;
    backend;
    horizon;
    record_trace;
    record_digest;
    switch_config;
    program;
    on_shard;
  }

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)

(* A packet in flight between shards. [mkey] identifies the directed
   cross-link ([link_id * 2 + direction]); (mtime, mkey, mseq) is the
   deterministic release order at the barrier. *)
type message = { mtime : int; mkey : int; mseq : int; mpkt : Netcore.Packet.t }

(* One packet arrival, for the conformance trace. Entities live on one
   shard each, so per-entity streams are recorded in execution order;
   the merge sorts on (time, kind, id, per-entity seq) — a total,
   shard-count-independent order as long as concurrent arrivals at
   distinct entities never need a cross-entity tie broken differently
   than the sequential scheduler would (the topology builders' per-link
   delay skew keeps them on distinct picoseconds). *)
type entry = { et : int; ekind : int; eid : int; eseq : int; edetail : string }

type shard_state = {
  mutable ctx : shard_ctx;
  mutable staging : message list;
  mutable trace : entry list;  (* reversed *)
  mutable digest : int;  (* commutative arrival-multiset accumulator *)
  mutable ties : int;  (* same-instant arrivals at one entity observed *)
  mutable cross_sent : int;
  mutable cross_delivered : int;
}

type engine = {
  n : int;
  until : int;
  adaptive : bool;
  lookahead : int;  (* static bound: global min cross-link delay *)
  min_out : int array;  (* per shard, min delay of outgoing cross links *)
  states : shard_state array;
  chans : message Spsc.t option array array;
  progress : int Atomic.t array;  (* published horizon (null message), ps *)
  next_ev : int Atomic.t array;  (* published next-event time, per round *)
  next_tag : int Atomic.t array;  (* round number stamping [next_ev] *)
  xdeliver : (Netcore.Packet.t -> unit) array;  (* by mkey; receiver-owned *)
}

(* Spin briefly, then sleep. On a machine with a core per shard the
   barrier resolves during the relax phase; with fewer cores than
   shards (or one), spinning would burn the whole OS quantum while the
   peer waits to run, so yield the processor instead. *)
let backoff spins =
  if spins < 200 then Domain.cpu_relax () else Unix.sleepf 0.0001

let drain_inbound eng shard =
  let st = eng.states.(shard) in
  for j = 0 to eng.n - 1 do
    match eng.chans.(j).(shard) with
    | None -> ()
    | Some c ->
        let rec pop () =
          match Spsc.try_pop c with
          | None -> ()
          | Some m ->
              st.staging <- m :: st.staging;
              pop ()
        in
        pop ()
  done

(* Producer-side send. On a full channel, drain our own inbound (the
   peer may be blocked pushing to us) and retry — the barrier cannot
   deadlock on mutual backpressure. *)
let xsend eng ~src ~dst m =
  match eng.chans.(src).(dst) with
  | None -> assert false
  | Some c ->
      let spins = ref 0 in
      while not (Spsc.try_push c m) do
        drain_inbound eng src;
        backoff !spins;
        incr spins
      done

let compare_message a b =
  match compare a.mtime b.mtime with
  | 0 -> ( match compare a.mkey b.mkey with 0 -> compare a.mseq b.mseq | c -> c)
  | c -> c

let release_staged eng shard =
  let st = eng.states.(shard) in
  let msgs = List.sort compare_message st.staging in
  st.staging <- [];
  List.iter
    (fun m ->
      if m.mtime <= eng.until then
        Scheduler.post ~cls:"xlink" st.ctx.sched ~at:m.mtime (fun () ->
            st.cross_delivered <- st.cross_delivered + 1;
            eng.xdeliver.(m.mkey) m.mpkt))
    msgs

let wait_progress eng shard ~horizon =
  let again = ref true and spins = ref 0 in
  while !again do
    again := false;
    for j = 0 to eng.n - 1 do
      if Atomic.get eng.progress.(j) < horizon then again := true
    done;
    if !again then begin
      drain_inbound eng shard;
      backoff !spins;
      incr spins
    end
  done

(* The lockstep round loop of one shard. Returns the number of rounds
   (windows) it executed — identical on every shard, since every horizon
   and the stop verdict are computed from identically published data.

   Round structure:
   {ol
   {- Publish our earliest queued event time, then stamp it with the
      round number. Value-before-tag ordering plus the progress barrier
      below make torn reads impossible: a peer cannot publish round
      [r+1] before it saw our round-[r] progress store, which happens
      after we read its round-[r] publication.}
   {- Rendezvous on the tags and read every peer's next-event time. No
      peer can be blocked mid-send here — sends only happen inside a
      window, after that shard already published its tag.}
   {- If even the earliest published event is past [until], every shard
      sees it and stops — this subsumes the old quiescence vote
      (a quiescent fleet publishes only [Horizon.no_event]s).}
   {- Otherwise execute one window up to the shared horizon: adaptive
      ([Horizon.adaptive_bound] — safe because staged release means a
      shard sends nothing before its published next event) or static
      ([cur + min cross delay], the classic bound).}
   {- Progress barrier, then pop and release staged messages exactly as
      before.}} *)
let run_shard eng shard =
  let st = eng.states.(shard) in
  let sched = st.ctx.sched in
  let nexts = Array.make eng.n 0 in
  let r = ref 0 and cur = ref 0 and stop = ref false in
  while not !stop do
    let mine = Scheduler.next_time sched in
    let mine = if mine < 0 then Horizon.no_event else mine in
    Atomic.set eng.next_ev.(shard) mine;
    Atomic.set eng.next_tag.(shard) (!r + 1);
    for j = 0 to eng.n - 1 do
      let spins = ref 0 in
      while Atomic.get eng.next_tag.(j) < !r + 1 do
        backoff !spins;
        incr spins
      done;
      nexts.(j) <- Atomic.get eng.next_ev.(j)
    done;
    let earliest = Array.fold_left min Horizon.no_event nexts in
    if earliest > eng.until then stop := true
    else begin
      let horizon =
        if eng.adaptive then
          Horizon.adaptive_bound ~min_out_delays:eng.min_out ~next_events:nexts
            ~until:eng.until
        else min (!cur + eng.lookahead) (eng.until + 1)
      in
      (* Progress is structural: the bound sits past the earliest
         published event, so every round retires at least one event
         fleet-wide (or closes the run). *)
      assert (horizon > !cur);
      Scheduler.drain_until_horizon sched ~horizon;
      Atomic.set eng.progress.(shard) horizon;
      (* Barrier: everyone reaches [horizon]; all messages sent in this
         round are then poppable (pushes happen-before the horizon
         store). Drain while waiting to relieve backpressure. *)
      wait_progress eng shard ~horizon;
      drain_inbound eng shard;
      release_staged eng shard;
      cur := horizon;
      incr r
    end
  done;
  !r

(* ------------------------------------------------------------------ *)
(* Build + run                                                         *)

type result = {
  plan : plan;
  rounds_executed : int;
  events : int;
  cross_sent : int;
  cross_delivered : int;
  trace : string list;
  arrival_digest : string;
  tie_arrivals : int;
  registries : Obs.Metrics.t list;
  metrics_json : string;
  host_sent : int array;
  host_received : int array;
  host_received_bytes : int array;
  wall_s : float;
  ctxs : shard_ctx array;
}

(* Order-independent arrival digest. The full trace's sort key
   (t, kind, id, seq) is a total order — [seq] is unique per entity —
   so the multiset of arrival records determines the merged trace and
   vice versa. Hashing each record into a commutative accumulator
   (sum mod 2^62) therefore pins exactly what the trace pins, without
   retaining millions of entries: per-shard sums merge in any order and
   the result is shard-count independent. Field nesting (not xor of
   independent hashes) keeps permuted field values from colliding. *)
let digest_arrival ~t ~kind ~id ~seq ~port ~len ~fkey =
  let mix = Netcore.Hashes.mix64 in
  mix (t + mix (kind + mix (id + mix (seq + mix (port + mix (len + mix fkey))))))

let digest_add st ~t ~kind ~id ~seq ~port ~len ~fkey =
  st.digest <- (st.digest + digest_arrival ~t ~kind ~id ~seq ~port ~len ~fkey) land max_int

let flow_detail pkt =
  match Netcore.Packet.flow pkt with
  | Some f -> Format.asprintf "len=%d %a" (Netcore.Packet.len pkt) Netcore.Flow.pp f
  | None -> Printf.sprintf "len=%d" (Netcore.Packet.len pkt)

let compare_entry a b =
  match compare a.et b.et with
  | 0 -> (
      match compare a.ekind b.ekind with
      | 0 -> ( match compare a.eid b.eid with 0 -> compare a.eseq b.eseq | c -> c)
      | c -> c)
  | c -> c

let render_entry e =
  Printf.sprintf "t=%d %s=%d seq=%d %s" e.et (if e.ekind = 0 then "sw" else "host") e.eid e.eseq
    e.edetail

let run cfg (topo : Topology.t) =
  (* [shards = 0] means auto: one shard per recommended domain, capped
     by the switch count. *)
  let n =
    if cfg.shards = 0 then min (recommended_domains ()) topo.switches else cfg.shards
  in
  let pl = plan topo ~shards:n in
  let backend = match cfg.backend with None -> !Eventsim.Sched_backend.default | Some b -> b in
  let scheds = Array.init n (fun _ -> Scheduler.create ~backend ()) in
  let sched_of_sw sw = scheds.(pl.part.shard_of_switch.(sw)) in
  let nports = Topology.ports topo in
  let switches =
    Array.init topo.switches (fun sw ->
        let cfg_sw = cfg.switch_config sw in
        let cfg_sw =
          {
            cfg_sw with
            Event_switch.num_ports = max cfg_sw.Event_switch.num_ports nports.(sw);
          }
        in
        Event_switch.create ~sched:(sched_of_sw sw) ~id:sw ~config:cfg_sw
          ~program:(cfg.program sw) ())
  in
  let hosts =
    Array.init topo.hosts (fun h ->
        Host.create ~sched:scheds.(pl.part.shard_of_host.(h)) ~id:h ())
  in
  (* Mutable wiring state, then frozen into shard contexts. *)
  let shard_switches = Array.make n [] and shard_hosts = Array.make n [] in
  Array.iteri
    (fun sw esw ->
      let s = pl.part.shard_of_switch.(sw) in
      shard_switches.(s) <- (sw, esw) :: shard_switches.(s))
    switches;
  Array.iteri
    (fun h host ->
      let s = pl.part.shard_of_host.(h) in
      shard_hosts.(s) <- (h, host) :: shard_hosts.(s))
    hosts;
  let states =
    Array.init n (fun s ->
        {
          ctx =
            {
              shard = s;
              sched = scheds.(s);
              metrics = Obs.Metrics.create ();
              switches = List.rev shard_switches.(s);
              hosts = List.rev shard_hosts.(s);
              links = [];
            };
          staging = [];
          trace = [];
          digest = 0;
          ties = 0;
          cross_sent = 0;
          cross_delivered = 0;
        })
  in
  let chans = Array.make_matrix n n None in
  List.iter
    (fun (src, dst) -> chans.(src).(dst) <- Some (Spsc.create ~capacity:cfg.channel_capacity))
    pl.channels;
  let n_links = List.length topo.links in
  let min_out = Array.make n Horizon.no_event in
  List.iter
    (fun (src, _dst, d) -> if d < min_out.(src) then min_out.(src) <- d)
    pl.pair_delays;
  let eng =
    {
      n;
      until = cfg.until;
      adaptive = (cfg.horizon = Adaptive);
      lookahead = pl.lookahead;
      min_out;
      states;
      chans;
      progress = Array.init n (fun _ -> Atomic.make 0);
      next_ev = Array.init n (fun _ -> Atomic.make 0);
      next_tag = Array.init n (fun _ -> Atomic.make 0);
      xdeliver = Array.make (2 * n_links) (fun _ -> assert false);
      }
  in
  (* Trace hooks: per-entity sequence numbers are global arrays, but
     each entity is touched by exactly one shard's domain. *)
  let sw_seq = Array.make topo.switches 0 and host_seq = Array.make topo.hosts 0 in
  (* Same-instant arrival detector: the conformance order (time, kind,
     id, seq) is layout-independent only while no entity sees two
     arrivals on one picosecond — the precondition the topology
     builders' link skew and the workloads' jitter exist to uphold.
     When a workload violates it anyway, the runs may still agree, but
     the guarantee is gone; recording the count makes the hazard
     observable instead of a silent digest mismatch. *)
  let sw_last_t = Array.make topo.switches min_int
  and host_last_t = Array.make topo.hosts min_int in
  let record = cfg.record_trace || cfg.record_digest in
  let sw_rx shard sw port pkt =
    let st = states.(shard) in
    if record then begin
      let seq = sw_seq.(sw) in
      sw_seq.(sw) <- seq + 1;
      let t = Scheduler.now st.ctx.sched in
      if t = sw_last_t.(sw) then st.ties <- st.ties + 1;
      sw_last_t.(sw) <- t;
      if cfg.record_trace then
        st.trace <-
          {
            et = t;
            ekind = 0;
            eid = sw;
            eseq = seq;
            edetail = Printf.sprintf "port=%d %s" port (flow_detail pkt);
          }
          :: st.trace;
      if cfg.record_digest then
        digest_add st ~t ~kind:0 ~id:sw ~seq ~port ~len:(Netcore.Packet.len pkt)
          ~fkey:(Netcore.Packet.flow_key pkt)
    end;
    Event_switch.inject switches.(sw) ~port pkt
  in
  let host_rx shard h pkt =
    let st = states.(shard) in
    if record then begin
      let seq = host_seq.(h) in
      host_seq.(h) <- seq + 1;
      let t = Scheduler.now st.ctx.sched in
      if t = host_last_t.(h) then st.ties <- st.ties + 1;
      host_last_t.(h) <- t;
      if cfg.record_trace then
        st.trace <-
          { et = t; ekind = 1; eid = h; eseq = seq; edetail = flow_detail pkt }
          :: st.trace;
      if cfg.record_digest then
        digest_add st ~t ~kind:1 ~id:h ~seq ~port:(-1) ~len:(Netcore.Packet.len pkt)
          ~fkey:(Netcore.Packet.flow_key pkt)
    end;
    Host.deliver hosts.(h) pkt
  in
  let sw_endpoint shard sw port =
    {
      Link.deliver = (fun pkt -> sw_rx shard sw port pkt);
      notify_status = (fun ~up -> Event_switch.link_status switches.(sw) ~port ~up);
    }
  in
  (* Intra-shard links: real [Tmgr.Link]s — fault-injection capable. *)
  List.iter
    (fun (s, (l : Topology.link)) ->
      let sw_a, port_a = l.a and sw_b, port_b = l.b in
      let link =
        Link.create ~sched:scheds.(s) ~delay:l.delay ?detection_delay:l.detection_delay
          ~a:(sw_endpoint s sw_a port_a) ~b:(sw_endpoint s sw_b port_b) ()
      in
      Event_switch.set_port_tx switches.(sw_a) ~port:port_a (fun pkt ->
          Link.send link ~from_a:true pkt);
      Event_switch.set_port_tx switches.(sw_b) ~port:port_b (fun pkt ->
          Link.send link ~from_a:false pkt);
      states.(s).ctx <- { (states.(s).ctx) with links = (l.link_id, link) :: states.(s).ctx.links })
    pl.local_links;
  (* Host links are intra-shard by construction. *)
  List.iter
    (fun (at : Topology.attachment) ->
      let s = pl.part.shard_of_host.(at.host) in
      let host_ep =
        { Link.deliver = (fun pkt -> host_rx s at.host pkt); notify_status = (fun ~up:_ -> ()) }
      in
      let link =
        Link.create ~sched:scheds.(s) ~delay:at.host_delay ~a:host_ep
          ~b:(sw_endpoint s at.switch at.port) ()
      in
      Host.set_tx hosts.(at.host) (fun pkt -> Link.send link ~from_a:true pkt);
      Event_switch.set_port_tx switches.(at.switch) ~port:at.port (fun pkt ->
          Link.send link ~from_a:false pkt);
      states.(s).ctx <-
        { (states.(s).ctx) with links = (n_links + at.host, link) :: states.(s).ctx.links })
    topo.attachments;
  (* Cross-shard links: each direction is a sender closure computing
     the arrival timestamp (now + delay — exactly [Link.send]'s fast
     path) and a receiver-side delivery endpoint released at the
     barrier. They cannot fail: no perturbation, no status change. *)
  let xseq = Array.make (2 * n_links) 0 in
  List.iter
    (fun c ->
      let l = c.link in
      let wire ~src ~dst ~mkey (sw_from, port_from) (sw_to, port_to) =
        eng.xdeliver.(mkey) <- (fun pkt -> sw_rx dst sw_to port_to pkt);
        Event_switch.set_port_tx switches.(sw_from) ~port:port_from (fun pkt ->
            let st = states.(src) in
            st.cross_sent <- st.cross_sent + 1;
            let seq = xseq.(mkey) in
            xseq.(mkey) <- seq + 1;
            xsend eng ~src ~dst
              { mtime = Scheduler.now st.ctx.sched + l.delay; mkey; mseq = seq; mpkt = pkt })
      in
      wire ~src:c.shard_a ~dst:c.shard_b ~mkey:(2 * l.link_id) l.a l.b;
      wire ~src:c.shard_b ~dst:c.shard_a ~mkey:((2 * l.link_id) + 1) l.b l.a)
    pl.cross;
  (* Freeze link lists into link-id order for ctx consumers. *)
  Array.iter
    (fun st ->
      st.ctx <-
        { (st.ctx) with links = List.sort (fun (a, _) (b, _) -> compare a b) st.ctx.links })
    states;
  Array.iter (fun st -> cfg.on_shard st.ctx) states;
  let t0 = Unix.gettimeofday () in
  let rounds_executed =
    if n = 1 then begin
      (* True sequential path: no windows, no channels, no barriers. *)
      Scheduler.run ~until:cfg.until scheds.(0);
      1
    end
    else begin
      let others = Array.init (n - 1) (fun i -> Domain.spawn (fun () -> run_shard eng (i + 1))) in
      let r0 = run_shard eng 0 in
      Array.iter (fun d -> ignore (Domain.join d : int)) others;
      r0
    end
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  Array.iter
    (fun st ->
      List.iter (fun (_, sw) -> Event_switch.export_metrics sw st.ctx.metrics) st.ctx.switches)
    states;
  let registries = Array.to_list (Array.map (fun st -> st.ctx.metrics) states) in
  let trace =
    if not cfg.record_trace then []
    else
      Array.fold_left (fun acc (st : shard_state) -> List.rev_append st.trace acc) [] states
      |> List.sort compare_entry
      |> List.map render_entry
  in
  let arrival_digest =
    if not cfg.record_digest then ""
    else
      Printf.sprintf "%016x"
        (Array.fold_left (fun acc (st : shard_state) -> (acc + st.digest) land max_int) 0 states)
  in
  {
    plan = pl;
    rounds_executed;
    events = Array.fold_left (fun acc s -> acc + Scheduler.executed s) 0 scheds;
    cross_sent = Array.fold_left (fun acc (st : shard_state) -> acc + st.cross_sent) 0 states;
    cross_delivered = Array.fold_left (fun acc (st : shard_state) -> acc + st.cross_delivered) 0 states;
    trace;
    arrival_digest;
    tie_arrivals =
      Array.fold_left (fun acc (st : shard_state) -> acc + st.ties) 0 states;
    registries;
    metrics_json = Obs.Metrics.merged_json registries;
    host_sent = Array.map Host.sent hosts;
    host_received = Array.map Host.received hosts;
    host_received_bytes = Array.map Host.received_bytes hosts;
    wall_s;
    ctxs = Array.map (fun st -> st.ctx) states;
  }
