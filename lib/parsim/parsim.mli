(** Sharded parallel simulation backend (§4: distributed data-plane
    state).

    Partitions a declarative {!Evcore.Topology} into per-domain shards
    — one {!Eventsim.Scheduler} plus its switches, hosts and
    intra-shard links per OCaml domain — synchronized conservatively.
    The global lookahead [L] is the minimum cross-shard link
    propagation delay; simulated time is tiled into windows of width
    [L] and every shard executes window [r] only after all shards have
    published horizon [r*L] (the null-message horizon update, a pair of
    atomic per-shard cells). A packet crossing shards departs inside
    some window and arrives at least [L] later, i.e. no earlier than
    the next window — no shard ever receives an event in its past.

    Cross-shard deliveries travel through bounded {!Spsc} channels, are
    staged at the round barrier, sorted by (arrival time, link,
    sequence) and released into the receiving scheduler. A shard that
    finds an outbound channel full drains its own inbound channels
    while retrying, so backpressure cannot deadlock the barrier. When a
    round ends with every shard's queue empty the fleet votes itself
    quiescent and stops early.

    [shards = 1] takes the true sequential path — one scheduler, plain
    {!Eventsim.Scheduler.run}, no channels — so a sharded run can be
    conformance-checked against the sequential run of the same seed:
    with the topology builders' per-link delay skew keeping concurrent
    arrivals off the same picosecond, the merged event {!result.trace}
    and merged metrics are byte-identical across shard counts. *)

module Spsc = Spsc
(** Re-exported so the channel is testable/usable on its own. *)

module Horizon = Horizon
(** Re-exported: the pure synchronization-safety arithmetic. *)

type partition = {
  shards : int;
  shard_of_switch : int array;
  shard_of_host : int array;  (** a host lives with its edge switch *)
}

val partition : Evcore.Topology.t -> shards:int -> partition
(** Contiguous, balanced blocks of switch ids. [shards] must be between
    1 and the switch count. *)

type cross_link = {
  link : Evcore.Topology.link;
  shard_a : int;  (** shard owning endpoint [a] *)
  shard_b : int;
}

type plan = {
  part : partition;
  local_links : (int * Evcore.Topology.link) list;
      (** (owning shard, link); both endpoints on one shard *)
  cross : cross_link list;
  channels : (int * int) list;
      (** directed (src, dst) shard pairs carrying at least one
          cross-link direction — each gets one SPSC channel *)
  lookahead : Eventsim.Sim_time.t;
      (** min cross-link delay; effectively infinite when nothing
          crosses (a single window covers the whole run) *)
}

val plan : Evcore.Topology.t -> shards:int -> plan

type shard_ctx = {
  shard : int;
  sched : Eventsim.Scheduler.t;
  metrics : Obs.Metrics.t;
  switches : (int * Evcore.Event_switch.t) list;  (** by global id *)
  hosts : (int * Evcore.Host.t) list;
  links : (int * Tmgr.Link.t) list;
      (** intra-shard links by [link_id]; host links are appended after
          switch links with ids [links + host] — valid fault-injection
          targets. Cross-shard links are channel pairs, not [Link.t]s,
          and cannot be failed (a status change cannot honour the
          lookahead contract); restrict chaos to these. *)
}

type config = {
  shards : int;
  until : Eventsim.Sim_time.t;  (** execute events with time <= until *)
  channel_capacity : int;
  backend : Eventsim.Sched_backend.t option;
      (** per-shard scheduler backend; [None] = [!Sched_backend.default] *)
  record_trace : bool;
      (** record every switch-port/host packet arrival; the merged
          trace is the conformance artefact (costs allocation — leave
          off for throughput runs) *)
  switch_config : int -> Evcore.Event_switch.config;
      (** per-switch; [num_ports] is raised to cover the topology.
          Must not depend on the shard count, or determinism across
          shard counts is forfeit. *)
  program : int -> Evcore.Program.spec;
  on_shard : shard_ctx -> unit;
      (** runs once per shard after wiring, before the clock starts
          (still on the spawning domain): install workloads, faults,
          extra metrics *)
}

val config :
  ?shards:int ->
  ?channel_capacity:int ->
  ?backend:Eventsim.Sched_backend.t ->
  ?record_trace:bool ->
  ?on_shard:(shard_ctx -> unit) ->
  until:Eventsim.Sim_time.t ->
  switch_config:(int -> Evcore.Event_switch.config) ->
  program:(int -> Evcore.Program.spec) ->
  unit ->
  config
(** Defaults: 1 shard, capacity 1024, default backend, no trace. *)

type result = {
  plan : plan;
  rounds_executed : int;
  events : int;  (** callbacks executed, summed over shards *)
  cross_sent : int;
  cross_delivered : int;  (** < [cross_sent] when [until] cut arrivals off *)
  trace : string list;
      (** merged arrival trace, deterministically ordered by
          (time, entity kind, entity id, per-entity seq); empty unless
          [record_trace] *)
  registries : Obs.Metrics.t list;  (** per shard *)
  metrics_json : string;
      (** {!Obs.Metrics.merged_json} of the per-shard registries:
          per-switch series only (plus whatever [on_shard] added), so a
          sequential and a sharded run are byte-comparable *)
  host_sent : int array;  (** by host id *)
  host_received : int array;
  host_received_bytes : int array;
  wall_s : float;  (** wall-clock of the run phase only *)
  ctxs : shard_ctx array;
}

val run : config -> Evcore.Topology.t -> result
(** Build, execute, merge. Validates the topology; raises
    [Invalid_argument] on a bad shard count. *)
