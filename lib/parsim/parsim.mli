(** Sharded parallel simulation backend (§4: distributed data-plane
    state).

    Partitions a declarative {!Evcore.Topology} into per-domain shards
    — one {!Eventsim.Scheduler} plus its switches, hosts and
    intra-shard links per OCaml domain — synchronized conservatively in
    lockstep windows. Each round every shard publishes the timestamp of
    its earliest queued event (or {!Horizon.no_event}); the fleet-wide
    window horizon is then computed identically everywhere. Two modes
    ({!horizon_mode}):

    - {e Adaptive} (default): the horizon is
      [min_j (next_event_j + min cross-link delay out of j)], clamped
      to [until + 1] ({!Horizon.adaptive_bound}). Safe because
      cross-shard sends are staged until the barrier: shard [j] sends
      nothing timestamped before its published next event, and the
      packet still rides a real link delay. Quiescent shards publish
      {!Horizon.no_event} and stop constraining the fleet, so sparse
      traffic advances in a handful of windows instead of serializing
      at min-delay granularity.
    - {e Static}: the classic bound [current + L] where the global
      lookahead [L] is the minimum cross-shard link delay — one window
      of width [L] per round regardless of queue contents.

    A packet crossing shards departs inside some window at or after the
    sender's published next event and arrives at least its link delay
    later, i.e. at or after the shared horizon — no shard ever receives
    an event in its past.

    Cross-shard deliveries travel through bounded {!Spsc} channels, are
    staged at the round barrier, sorted by (arrival time, link,
    sequence) and released into the receiving scheduler. A shard that
    finds an outbound channel full drains its own inbound channels
    while retrying, so backpressure cannot deadlock the barrier. When
    every published next event is past [until] the fleet stops — the
    quiescence vote falls out of the same published data.

    [shards = 1] takes the true sequential path — one scheduler, plain
    {!Eventsim.Scheduler.run}, no channels — so a sharded run can be
    conformance-checked against the sequential run of the same seed:
    with the topology builders' per-link delay skew keeping concurrent
    arrivals off the same picosecond, the merged event {!result.trace}
    and merged metrics are byte-identical across shard counts. *)

module Spsc = Spsc
(** Re-exported so the channel is testable/usable on its own. *)

module Horizon = Horizon
(** Re-exported: the pure synchronization-safety arithmetic. *)

type partition = {
  shards : int;
  shard_of_switch : int array;
  shard_of_host : int array;  (** a host lives with its edge switch *)
  shard_weight : int array;  (** summed switch weights per shard *)
}

val default_weights : Evcore.Topology.t -> int array
(** Expected-event-rate weight per switch: [1 + wired ports + 4 per
    attached host]. Edge switches (hosts, traffic generation, delivery)
    weigh several times a same-degree core switch. *)

val recommended_domains : unit -> int
(** [max 1 (Domain.recommended_domain_count ())] — the shard count
    [shards = 0] resolves to (capped by the switch count). *)

val partition : ?weights:int array -> Evcore.Topology.t -> shards:int -> partition
(** Contiguous blocks of switch ids, balanced by weight ({!default_weights}
    unless [weights] overrides; length must equal the switch count,
    entries non-negative). Boundaries are the nearest-prefix-sum cuts,
    clamped so that no shard is ever empty — arbitrarily skewed weights
    degrade toward the equal-count split instead of producing an empty
    shard. [shards] must be between 1 and the switch count. *)

type cross_link = {
  link : Evcore.Topology.link;
  shard_a : int;  (** shard owning endpoint [a] *)
  shard_b : int;
}

type plan = {
  part : partition;
  local_links : (int * Evcore.Topology.link) list;
      (** (owning shard, link); both endpoints on one shard *)
  cross : cross_link list;
  channels : (int * int) list;
      (** directed (src, dst) shard pairs carrying at least one
          cross-link direction — each gets one SPSC channel *)
  lookahead : Eventsim.Sim_time.t;
      (** static bound: min cross-link delay; effectively infinite when
          nothing crosses (a single window covers the whole run) *)
  pair_delays : (int * int * int) list;
      (** directed (src shard, dst shard, min link delay) for every
          shard pair joined by at least one cross link — the adaptive
          horizon's per-pair reachability data *)
}

val plan : ?weights:int array -> Evcore.Topology.t -> shards:int -> plan

type shard_ctx = {
  shard : int;
  sched : Eventsim.Scheduler.t;
  metrics : Obs.Metrics.t;
  switches : (int * Evcore.Event_switch.t) list;  (** by global id *)
  hosts : (int * Evcore.Host.t) list;
  links : (int * Tmgr.Link.t) list;
      (** intra-shard links by [link_id]; host links are appended after
          switch links with ids [links + host] — valid fault-injection
          targets. Cross-shard links are channel pairs, not [Link.t]s,
          and cannot be failed (a status change cannot honour the
          lookahead contract); restrict chaos to these. *)
}

type horizon_mode =
  | Adaptive  (** per-window bound from published next-event times *)
  | Static  (** fixed windows of the global min cross-link delay *)

type config = {
  shards : int;  (** [0] = auto: {!recommended_domains}, capped by switches *)
  until : Eventsim.Sim_time.t;  (** execute events with time <= until *)
  channel_capacity : int;
  backend : Eventsim.Sched_backend.t option;
      (** per-shard scheduler backend; [None] = [!Sched_backend.default] *)
  horizon : horizon_mode;
  record_trace : bool;
      (** record every switch-port/host packet arrival; the merged
          trace is the conformance artefact (costs allocation — leave
          off for throughput runs) *)
  record_digest : bool;
      (** fold every arrival into the order-independent
          {!result.arrival_digest} instead of retaining entries — the
          conformance artefact for runs whose full trace would not fit
          in memory. O(1) space, no allocation per arrival. *)
  switch_config : int -> Evcore.Event_switch.config;
      (** per-switch; [num_ports] is raised to cover the topology.
          Must not depend on the shard count, or determinism across
          shard counts is forfeit. *)
  program : int -> Evcore.Program.spec;
  on_shard : shard_ctx -> unit;
      (** runs once per shard after wiring, before the clock starts
          (still on the spawning domain): install workloads, faults,
          extra metrics *)
}

val config :
  ?shards:int ->
  ?channel_capacity:int ->
  ?backend:Eventsim.Sched_backend.t ->
  ?horizon:horizon_mode ->
  ?record_trace:bool ->
  ?record_digest:bool ->
  ?on_shard:(shard_ctx -> unit) ->
  until:Eventsim.Sim_time.t ->
  switch_config:(int -> Evcore.Event_switch.config) ->
  program:(int -> Evcore.Program.spec) ->
  unit ->
  config
(** Defaults: 1 shard, capacity 1024, default backend, adaptive
    horizon, no trace, no digest. *)

type result = {
  plan : plan;
  rounds_executed : int;
      (** lockstep windows executed (identical on every shard); [1] on
          the sequential path. Adaptive runs on sparse traffic execute
          far fewer rounds than static runs of the same scenario. *)
  events : int;  (** callbacks executed, summed over shards *)
  cross_sent : int;
  cross_delivered : int;  (** < [cross_sent] when [until] cut arrivals off *)
  trace : string list;
      (** merged arrival trace, deterministically ordered by
          (time, entity kind, entity id, per-entity seq); empty unless
          [record_trace] *)
  arrival_digest : string;
      (** 16-hex-digit commutative hash of the arrival multiset — the
          sort key (time, kind, id, per-entity seq) is a total order,
          so the multiset determines the merged trace and the digest
          pins exactly what the trace pins, shard-count independently.
          Empty unless [record_digest]. *)
  tie_arrivals : int;
      (** arrivals observed on the same picosecond as the previous
          arrival at the same entity (counted only when recording).
          Non-zero means the workload violated the no-simultaneous-
          arrivals precondition the conformance guarantee rests on:
          runs at different shard counts may still agree, but are no
          longer guaranteed to. Conformance scenarios should keep
          this at zero (source jitter, link skew). *)
  registries : Obs.Metrics.t list;  (** per shard *)
  metrics_json : string;
      (** {!Obs.Metrics.merged_json} of the per-shard registries:
          per-switch series only (plus whatever [on_shard] added), so a
          sequential and a sharded run are byte-comparable *)
  host_sent : int array;  (** by host id *)
  host_received : int array;
  host_received_bytes : int array;
  wall_s : float;  (** wall-clock of the run phase only *)
  ctxs : shard_ctx array;
}

val run : config -> Evcore.Topology.t -> result
(** Build, execute, merge. Validates the topology; raises
    [Invalid_argument] on a bad shard count. [shards = 0] resolves to
    [min (recommended_domains ()) switches] before planning. *)
