type 'a t = {
  buf : 'a option array;
  mask : int;
  head : int Atomic.t;  (* next slot to pop; owned by the consumer *)
  tail : int Atomic.t;  (* next slot to fill; owned by the producer *)
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ~capacity =
  if capacity < 1 then invalid_arg "Spsc.create: capacity must be >= 1";
  let cap = pow2 capacity 1 in
  { buf = Array.make cap None; mask = cap - 1; head = Atomic.make 0; tail = Atomic.make 0 }

let capacity t = Array.length t.buf

let try_push t v =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head > t.mask then false
  else begin
    (* Plain slot write published by the tail store: a consumer that
       observes the new tail also observes the slot (OCaml memory
       model; atomics are SC, plain writes before them are released). *)
    t.buf.(tail land t.mask) <- Some v;
    Atomic.set t.tail (tail + 1);
    true
  end

let try_pop t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if head = tail then None
  else begin
    let i = head land t.mask in
    let v = t.buf.(i) in
    t.buf.(i) <- None;
    Atomic.set t.head (head + 1);
    (match v with None -> assert false | Some _ -> ());
    v
  end

let length t = max 0 (Atomic.get t.tail - Atomic.get t.head)
