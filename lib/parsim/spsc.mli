(** Bounded single-producer single-consumer channel.

    The cross-shard message pipe: exactly one domain pushes and exactly
    one domain pops, which lets the ring get by with two atomic
    counters and the OCaml memory model's publication guarantee (the
    slot write happens-before the tail store; the consumer's acquire of
    the tail makes the slot visible). Using one channel from two
    producers or two consumers is undefined.

    Capacity is fixed at creation: {!try_push} refuses when the ring is
    full, which is the engine's backpressure signal. The engine never
    blocks inside the channel — a shard that finds a channel full keeps
    draining its own inbound channels while retrying, so two mutually
    full channels cannot deadlock. *)

type 'a t

val create : capacity:int -> 'a t
(** Rounded up to a power of two; [capacity >= 1]. *)

val capacity : 'a t -> int

val try_push : 'a t -> 'a -> bool
(** Producer side. [false] when full. *)

val try_pop : 'a t -> 'a option
(** Consumer side. [None] when empty. The slot is cleared so the ring
    never pins a popped value. *)

val length : 'a t -> int
(** Racy by nature (either side may be mid-operation); exact when both
    sides are quiescent, as at a round barrier. *)
