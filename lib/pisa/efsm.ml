type operand = Const of int | State | Input | Reg of int
type cmp = Eq | Ne | Lt | Le | Gt | Ge

type guard =
  | Always
  | Cmp of cmp * operand * operand
  | All of guard list
  | Any of guard list

type update =
  | Set of operand
  | Add of operand * operand
  | Sub of operand * operand
  | Sat_add of operand * operand
  | Sat_sub of operand * operand
  | Min of operand * operand
  | Max of operand * operand

type action = { reg : int; update : update }

type transition = {
  from_state : int;
  guard : guard;
  next_state : int;
  actions : action list;
}

type t = {
  name : string;
  entries : int;
  nregs : int;
  mask : int;
  state_mask : int;
  rmw_latency : int;
  timeout : Eventsim.Sim_time.t option;
  transitions : transition list;
  clock : (unit -> int) option;
  state : Register_array.t;
  regs : Register_array.t;  (* entries * nregs, bank-major *)
  keys : int array;
  valid : bool array;
  last_access_ps : int array;
  last_access_cycle : int array;
  slot_of_key : (int, int) Hashtbl.t;
  mutable free : int list;  (* ascending; head = next slot *)
  mutable steps : int;
  mutable hits : int;
  mutable inserts : int;
  mutable fired : int;
  mutable guard_misses : int;
  mutable stalls : int;
  mutable evictions_timeout : int;
  mutable evictions_capacity : int;
  mutable sweeps : int;
}

let validate_operand ~nregs = function
  | Reg r when r < 0 || r >= nregs ->
      invalid_arg (Printf.sprintf "Efsm: register r%d out of [0,%d)" r nregs)
  | _ -> ()

let rec validate_guard ~nregs = function
  | Always -> ()
  | Cmp (_, a, b) ->
      validate_operand ~nregs a;
      validate_operand ~nregs b
  | All gs | Any gs -> List.iter (validate_guard ~nregs) gs

let validate_update ~nregs = function
  | Set a -> validate_operand ~nregs a
  | Add (a, b) | Sub (a, b) | Sat_add (a, b) | Sat_sub (a, b) | Min (a, b) | Max (a, b) ->
      validate_operand ~nregs a;
      validate_operand ~nregs b

let validate_transition ~nregs ~state_mask tr =
  if tr.from_state < 0 || tr.from_state > state_mask then
    invalid_arg (Printf.sprintf "Efsm: from_state %d exceeds state width" tr.from_state);
  if tr.next_state < 0 || tr.next_state > state_mask then
    invalid_arg (Printf.sprintf "Efsm: next_state %d exceeds state width" tr.next_state);
  validate_guard ~nregs tr.guard;
  List.iter
    (fun a ->
      if a.reg < 0 || a.reg >= nregs then
        invalid_arg (Printf.sprintf "Efsm: action register r%d out of [0,%d)" a.reg nregs);
      validate_update ~nregs a.update)
    tr.actions

let name t = t.name
let capacity t = t.entries
let occupancy t = Hashtbl.length t.slot_of_key
let bits t = Register_array.bits t.state + Register_array.bits t.regs
let steps t = t.steps
let hits t = t.hits
let inserts t = t.inserts
let fired t = t.fired
let guard_misses t = t.guard_misses
let stalls t = t.stalls
let evictions_timeout t = t.evictions_timeout
let evictions_capacity t = t.evictions_capacity
let sweeps t = t.sweeps

let state_hash t =
  (* Deterministic fold over occupied contexts in slot order; slot
     assignment is itself deterministic given the event order, which is
     exactly what conformance runs pin. Snapshots are unported reads so
     hashing does not perturb access accounting. *)
  let mix h x = ((h * 2862933555777941757) + x + 1442695040888963407) land max_int in
  let states = Register_array.to_array t.state in
  let regs = Register_array.to_array t.regs in
  let h = ref 1 in
  for slot = 0 to t.entries - 1 do
    if t.valid.(slot) then begin
      h := mix !h t.keys.(slot);
      h := mix !h states.(slot);
      for r = 0 to t.nregs - 1 do
        h := mix !h regs.((slot * t.nregs) + r)
      done
    end
  done;
  !h

let stats t =
  [
    ("pisa.efsm.steps", t.steps);
    ("pisa.efsm.hits", t.hits);
    ("pisa.efsm.inserts", t.inserts);
    ("pisa.efsm.fired", t.fired);
    ("pisa.efsm.guard_misses", t.guard_misses);
    ("pisa.efsm.stalls", t.stalls);
    ("pisa.efsm.evictions_timeout", t.evictions_timeout);
    ("pisa.efsm.evictions_capacity", t.evictions_capacity);
    ("pisa.efsm.sweeps", t.sweeps);
    ("pisa.efsm.occupancy", occupancy t);
    ("pisa.efsm.state_hash", state_hash t);
  ]

let create ?alloc ?clock ?(rmw_latency = Pipeline.default_depth) ?timeout ?(width = 32)
    ?(state_bits = 8) ~name ~entries ~nregs ~transitions () =
  if entries <= 0 then invalid_arg "Efsm.create: entries must be positive";
  if nregs < 0 then invalid_arg "Efsm.create: nregs must be non-negative";
  if rmw_latency < 0 then invalid_arg "Efsm.create: rmw_latency must be non-negative";
  (match timeout with
  | Some t when t <= 0 -> invalid_arg "Efsm.create: timeout must be positive"
  | _ -> ());
  if state_bits <= 0 || state_bits > 62 then invalid_arg "Efsm.create: state_bits must be in 1..62";
  let state_mask = if state_bits = 62 then max_int else (1 lsl state_bits) - 1 in
  List.iter (validate_transition ~nregs ~state_mask) transitions;
  (* Contention needs a cycle clock; default to the allocator's (the
     pipeline clock inside a switch) so programs get stall accounting
     without extra wiring. *)
  let clock =
    match (clock, alloc) with
    | (Some _ as c), _ -> c
    | None, Some alloc -> Register_alloc.clock alloc
    | None, None -> None
  in
  let mk_array ~name ~entries ~width =
    match alloc with
    | Some alloc -> Register_alloc.array alloc ~name ~entries ~width
    | None -> Register_array.create ?clock ~name ~entries ~width ()
  in
  let t =
    {
      name;
      entries;
      nregs;
      mask = (if width = 62 then max_int else (1 lsl width) - 1);
      state_mask;
      rmw_latency;
      timeout;
      transitions;
      clock;
      state = mk_array ~name:(name ^ ".state") ~entries ~width:state_bits;
      regs = mk_array ~name:(name ^ ".regs") ~entries:(entries * max 1 nregs) ~width;
      keys = Array.make entries 0;
      valid = Array.make entries false;
      last_access_ps = Array.make entries 0;
      last_access_cycle = Array.make entries (-1);
      slot_of_key = Hashtbl.create (2 * entries);
      free = List.init entries Fun.id;
      steps = 0;
      hits = 0;
      inserts = 0;
      fired = 0;
      guard_misses = 0;
      stalls = 0;
      evictions_timeout = 0;
      evictions_capacity = 0;
      sweeps = 0;
    }
  in
  (match alloc with
  | Some alloc -> Register_alloc.register_stats alloc ~name (fun () -> stats t)
  | None -> ());
  t

(* ---- flow table ---- *)

let clear_slot t slot =
  (* Wired clear, like Register_array.reset: eviction is table
     management, not a ported data-path access. *)
  Register_array.clear_entry t.state slot;
  for r = 0 to t.nregs - 1 do
    Register_array.clear_entry t.regs ((slot * t.nregs) + r)
  done

let release_slot t slot =
  (* Keep the free list ascending so the lowest-numbered free slot is
     always reused first — slot assignment stays deterministic. *)
  let rec ins = function
    | [] -> [ slot ]
    | s :: _ as l when slot < s -> slot :: l
    | s :: rest -> s :: ins rest
  in
  t.free <- ins t.free

let evict t slot =
  Hashtbl.remove t.slot_of_key t.keys.(slot);
  t.valid.(slot) <- false;
  t.last_access_cycle.(slot) <- -1;
  clear_slot t slot;
  release_slot t slot

let evict_lru t =
  (* Least-recently-accessed; ties break to the lowest slot so the
     policy is deterministic. *)
  let best = ref (-1) in
  for slot = t.entries - 1 downto 0 do
    if t.valid.(slot) && (!best < 0 || t.last_access_ps.(slot) <= t.last_access_ps.(!best)) then
      best := slot
  done;
  (* Every slot is either occupied or on the free list, and the free
     list was empty, so a victim always exists. *)
  assert (!best >= 0);
  evict t !best;
  t.evictions_capacity <- t.evictions_capacity + 1

let lookup_or_insert t ~now ~key =
  match Hashtbl.find_opt t.slot_of_key key with
  | Some slot ->
      t.hits <- t.hits + 1;
      (slot, false)
  | None ->
      (if t.free = [] then evict_lru t);
      let slot =
        match t.free with
        | slot :: rest ->
            t.free <- rest;
            slot
        | [] -> assert false
      in
      t.inserts <- t.inserts + 1;
      t.keys.(slot) <- key;
      t.valid.(slot) <- true;
      t.last_access_ps.(slot) <- now;
      t.last_access_cycle.(slot) <- -1;
      Hashtbl.replace t.slot_of_key key slot;
      (slot, true)

(* ---- transition engine ---- *)

let sat_cap t v = if v < 0 || v > t.mask then t.mask else v

let eval_operand t ~slot ~input = function
  | Const n -> n land t.mask
  | State -> Register_array.read t.state slot
  | Input -> input land t.mask
  | Reg r -> Register_array.read t.regs ((slot * t.nregs) + r)

let eval_cmp cmp a b =
  match cmp with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let rec eval_guard t ~slot ~input = function
  | Always -> true
  | Cmp (cmp, a, b) ->
      eval_cmp cmp (eval_operand t ~slot ~input a) (eval_operand t ~slot ~input b)
  | All gs -> List.for_all (eval_guard t ~slot ~input) gs
  | Any gs -> List.exists (eval_guard t ~slot ~input) gs

let eval_update t ~slot ~input u =
  let v = eval_operand t ~slot ~input in
  match u with
  | Set a -> v a land t.mask
  | Add (a, b) -> (v a + v b) land t.mask
  | Sub (a, b) -> (v a - v b) land t.mask
  | Sat_add (a, b) -> sat_cap t (v a + v b)
  | Sat_sub (a, b) -> max 0 (v a - v b)
  | Min (a, b) -> min (v a) (v b)
  | Max (a, b) -> max (v a) (v b)

let run_transitions t ~slot ~input =
  let cur = Register_array.read t.state slot in
  let rec find = function
    | [] -> None
    | tr :: rest ->
        if tr.from_state = cur && eval_guard t ~slot ~input tr.guard then Some tr else find rest
  in
  match find t.transitions with
  | None ->
      t.guard_misses <- t.guard_misses + 1;
      (cur, cur, false)
  | Some tr ->
      (* Parallel-update semantics: all RHSs read pre-transition
         values, then the writes land. *)
      let writes = List.map (fun a -> (a.reg, eval_update t ~slot ~input a.update)) tr.actions in
      List.iter (fun (r, v) -> Register_array.write t.regs ((slot * t.nregs) + r) v) writes;
      Register_array.write t.state slot tr.next_state;
      t.fired <- t.fired + 1;
      (cur, tr.next_state, true)

type outcome = {
  slot : int;
  prev_state : int;
  state : int;
  fired : bool;
  inserted : bool;
  stalled : bool;
}

let step t ~now ~key ~input =
  t.steps <- t.steps + 1;
  let slot, inserted = lookup_or_insert t ~now ~key in
  let stalled =
    match t.clock with
    | None -> false
    | Some clock ->
        let cycle = clock () in
        let prev = t.last_access_cycle.(slot) in
        t.last_access_cycle.(slot) <- cycle;
        prev >= 0 && cycle - prev <= t.rmw_latency
  in
  if stalled then t.stalls <- t.stalls + 1;
  let prev_state, state, fired = run_transitions t ~slot ~input in
  t.last_access_ps.(slot) <- now;
  { slot; prev_state; state; fired; inserted; stalled }

let step_all t ~input =
  for slot = 0 to t.entries - 1 do
    if t.valid.(slot) then ignore (run_transitions t ~slot ~input)
  done

let sweep t ~now =
  t.sweeps <- t.sweeps + 1;
  match t.timeout with
  | None -> 0
  | Some timeout ->
      (* create rejects non-positive timeouts, so [timeout > 0] here. *)
      let evicted = ref 0 in
      for slot = 0 to t.entries - 1 do
        if t.valid.(slot) && now - t.last_access_ps.(slot) >= timeout then begin
          evict t slot;
          incr evicted;
          t.evictions_timeout <- t.evictions_timeout + 1
        end
      done;
      !evicted

let attach_sweeper t ~sched ~period =
  ignore
    (Eventsim.Scheduler.every ~cls:"pisa.efsm.sweep" sched ~period (fun () ->
         ignore (sweep t ~now:(Eventsim.Scheduler.now sched))))

let unported_read arr i = (Register_array.to_array arr).(i)

let state_of (t : t) ~key =
  Option.map (fun slot -> unported_read t.state slot) (Hashtbl.find_opt t.slot_of_key key)

let regs_of (t : t) ~key =
  Option.map
    (fun slot ->
      let snapshot = Register_array.to_array t.regs in
      Array.init t.nregs (fun r -> snapshot.((slot * t.nregs) + r)))
    (Hashtbl.find_opt t.slot_of_key key)
