(** Per-flow extended finite-state machine extern — the OPP / FlowBlaze
    stateful abstraction (Bianchi et al., Cascone et al.).

    A flow key selects a per-flow context: a small state label plus a
    bank of [nregs] registers. Each packet (or event) presents an
    [input] word; the first transition whose [from_state] matches and
    whose guard holds fires, moving the flow to [next_state] and
    applying its register updates. Updates are evaluated against the
    pre-transition register values and then written back — the
    parallel-ALU semantics of the hardware, so [r0 = r1; r1 = r0]
    swaps. If no transition matches, the state is left unchanged and
    [guard_misses] is incremented.

    State is backed by {!Register_array}s allocated through the
    program's {!Register_alloc} when one is given, so the flow table's
    footprint is metered like every other extern. The word-level
    accesses of one transition land in the same pipeline cycle and are
    visible as {!Register_array.conflicts}; the flow-level contention
    OPP centres on is modelled separately: two hits on the {e same
    flow} within [rmw_latency] cycles of each other cannot both be
    served by the single-ported state memory's read-modify-write loop,
    so the second is counted in [stalls] (functional behaviour is
    unaffected — the simulator records the stall and proceeds, exactly
    like {!Register_array} port conflicts).

    The flow table holds [entries] contexts. Overflow evicts the
    least-recently-accessed flow (ties broken by lowest slot). A
    [timeout] plus {!sweep} (typically driven by a switch timer event)
    gives idle-eviction; a flow stepped at the sweep's own timestamp
    counts as refreshed and survives — the in-flight transition wins
    the race. *)

type operand =
  | Const of int
  | State  (** the flow's current state label *)
  | Input  (** the input word presented to {!step} *)
  | Reg of int  (** flow register [0 .. nregs-1] *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type guard =
  | Always
  | Cmp of cmp * operand * operand
  | All of guard list  (** conjunction; [All []] holds *)
  | Any of guard list  (** disjunction; [Any []] fails *)

(** Register updates. [Add]/[Sub] wrap at [width] bits; [Sat_add]
    clamps at the width's maximum, [Sat_sub] at zero. *)
type update =
  | Set of operand
  | Add of operand * operand
  | Sub of operand * operand
  | Sat_add of operand * operand
  | Sat_sub of operand * operand
  | Min of operand * operand
  | Max of operand * operand

type action = { reg : int; update : update }

type transition = {
  from_state : int;
  guard : guard;
  next_state : int;
  actions : action list;
}
(** Transitions are tried in list order; the first match wins. *)

type t

val create :
  ?alloc:Register_alloc.t ->
  ?clock:(unit -> int) ->
  ?rmw_latency:int ->
  ?timeout:Eventsim.Sim_time.t ->
  ?width:int ->
  ?state_bits:int ->
  name:string ->
  entries:int ->
  nregs:int ->
  transitions:transition list ->
  unit ->
  t
(** [rmw_latency] is the contention window in cycles (default
    {!Pipeline.default_depth}): a second hit on the same flow within
    the window stalls. [clock] supplies the cycle counter and defaults
    to the allocator's clock (the pipeline clock inside a switch); with
    neither, no stalls are ever recorded. [timeout] is the idle interval after which
    {!sweep} evicts (default: no timeout eviction); it must be
    strictly positive — a zero or negative timeout would arm a sweep
    that spins at its own timestamp. [width] (default
    32) bounds registers and inputs; [state_bits] (default 8) bounds
    state labels. When [alloc] is given, the backing arrays are
    allocated through it and a stats exporter is registered under
    [name], so the switch publishes [pisa.efsm.*] metrics
    automatically. Raises [Invalid_argument] on out-of-range states,
    register indices, non-positive timeouts, or parameters. *)

(** What one {!step} did. *)
type outcome = {
  slot : int;
  prev_state : int;
  state : int;
  fired : bool;  (** a transition matched (false ⇒ guard miss) *)
  inserted : bool;  (** the flow was not in the table before *)
  stalled : bool;  (** adjacent-window hit on this flow's state *)
}

val step : t -> now:int -> key:int -> input:int -> outcome
(** Look up (inserting/evicting as needed), run the transition table
    once, refresh the flow's last-access time to [now]. *)

val step_all : t -> input:int -> unit
(** Run the transition table once for every occupied slot, in slot
    order — the broadcast/timer-driven global transition of OPP (e.g.
    a rate window reset). Does not refresh last-access times or touch
    the contention tracker: idle flows still time out. *)

val sweep : t -> now:int -> int
(** Evict every flow idle for at least the timeout (strictly older
    than [now - timeout]; a flow stepped at [now] survives). Returns
    the number evicted; 0 when no timeout was configured. Evicted
    slots rejoin the free list (lowest-numbered slot reused first), so
    sweeping never forces capacity evictions of live flows. *)

val attach_sweeper : t -> sched:Eventsim.Scheduler.t -> period:Eventsim.Sim_time.t -> unit
(** Standalone periodic sweeping on a raw scheduler. Inside a switch
    program prefer a timer event calling {!sweep} so eviction runs
    supervised and shed-safe like any other handler work. *)

val state_of : t -> key:int -> int option
val regs_of : t -> key:int -> int array option
val occupancy : t -> int
val capacity : t -> int
val name : t -> string
val bits : t -> int
(** State footprint: state labels plus register banks (key tags are
    CAM, metered separately by real hardware, and excluded). *)

val steps : t -> int
val hits : t -> int
val inserts : t -> int
val fired : t -> int
val guard_misses : t -> int
val stalls : t -> int
val evictions_timeout : t -> int
val evictions_capacity : t -> int
val sweeps : t -> int

val state_hash : t -> int
(** Order-independent-of-nothing, deterministic digest of the occupied
    (key, state, registers) contexts in slot order — pins the whole
    flow-state evolution in conformance tests and merged metrics. *)

val stats : t -> (string * int) list
(** The [pisa.efsm.*] metric series the switch exporter publishes. *)
