type t = {
  sched : Eventsim.Scheduler.t;
  clock_period : Eventsim.Sim_time.t;
  depth : int;
  mutable last_admit_cycle : int;
  mutable admissions : int;
  mutable packet_carriers : int;
  mutable empty_carriers : int;
}

let default_clock_period = Eventsim.Sim_time.ns 5 (* 200 MHz *)
let default_depth = 16

let create ~sched ?(clock_period = default_clock_period) ?(depth = default_depth) () =
  if clock_period <= 0 then invalid_arg "Pipeline.create: clock_period must be positive";
  if depth <= 0 then invalid_arg "Pipeline.create: depth must be positive";
  {
    sched;
    clock_period;
    depth;
    last_admit_cycle = -1;
    admissions = 0;
    packet_carriers = 0;
    empty_carriers = 0;
  }

let clock_period t = t.clock_period
let depth t = t.depth
let latency t = t.depth * t.clock_period
let current_cycle t = Eventsim.Scheduler.now t.sched / t.clock_period
let clock t = fun () -> current_cycle t

let earliest_admission t =
  let now = Eventsim.Scheduler.now t.sched in
  let free_slot = (t.last_admit_cycle + 1) * t.clock_period in
  (* Plain int compare: [Stdlib.max] is a polymorphic-compare call, and
     this runs once per admitted carrier. *)
  if now > free_slot then now else free_slot

let admit t ~has_packet =
  let cycle = current_cycle t in
  if cycle <= t.last_admit_cycle then
    invalid_arg "Pipeline.admit: admission slot already used this cycle";
  t.last_admit_cycle <- cycle;
  t.admissions <- t.admissions + 1;
  if has_packet then t.packet_carriers <- t.packet_carriers + 1
  else t.empty_carriers <- t.empty_carriers + 1;
  Eventsim.Scheduler.now t.sched + latency t

type mark = { at_cycle : int; at_admissions : int }

let mark t = { at_cycle = current_cycle t; at_admissions = t.admissions }

let idle_cycles_since t m =
  let m' = mark t in
  let idle = m'.at_cycle - m.at_cycle - (m'.at_admissions - m.at_admissions) in
  (max 0 idle, m')

let admissions t = t.admissions
let packet_carriers t = t.packet_carriers
let empty_carriers t = t.empty_carriers

let busy_fraction t =
  let cycles = current_cycle t in
  if cycles <= 0 then 0. else float_of_int t.admissions /. float_of_int cycles
