type t = {
  clock : (unit -> int) option;
  mutable regs : Register_array.t list;
  mutable stats : (string * (unit -> (string * int) list)) list;
}

let create ?clock () = { clock; regs = []; stats = [] }

let array t ~name ~entries ~width =
  let reg =
    match t.clock with
    | Some clock -> Register_array.create ~clock ~name ~entries ~width ()
    | None -> Register_array.create ~name ~entries ~width ()
  in
  t.regs <- reg :: t.regs;
  reg

let registers t = List.rev t.regs
let total_bits t = List.fold_left (fun acc r -> acc + Register_array.bits r) 0 t.regs

let total_conflicts t =
  List.fold_left (fun acc r -> acc + Register_array.conflicts r) 0 t.regs

let clock t = t.clock
let register_stats t ~name fn = t.stats <- (name, fn) :: t.stats
let stats_exporters t = List.rev t.stats

let report t =
  List.map
    (fun r -> (Register_array.name r, Register_array.entries r, Register_array.bits r))
    (registers t)
