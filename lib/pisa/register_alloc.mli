(** Register allocator: every data-plane program allocates its stateful
    arrays through one of these so the experiment harness can meter the
    program's total state footprint (the paper's §2 claims an at least
    four-fold reduction for microburst detection; E6 measures it from
    these allocations). *)

type t

val create : ?clock:(unit -> int) -> unit -> t
val array : t -> name:string -> entries:int -> width:int -> Register_array.t
val registers : t -> Register_array.t list
(** In allocation order. *)

val total_bits : t -> int
val total_conflicts : t -> int
val report : t -> (string * int * int) list
(** [(name, entries, bits)] per register. *)

val clock : t -> (unit -> int) option
(** The cycle clock arrays are created against, if any. *)

val register_stats : t -> name:string -> (unit -> (string * int) list) -> unit
(** Register a stats exporter for an extern allocated through this
    allocator (e.g. an {!Efsm}). The switch's metrics exporter
    publishes every registered series with an [extern=name] label, so
    extern counters flow into merged conformance snapshots without the
    extern knowing about [Obs]. *)

val stats_exporters : t -> (string * (unit -> (string * int) list)) list
(** In registration order. *)
