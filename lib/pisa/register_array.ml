type t = {
  name : string;
  width : int;
  mask : int;
  data : int array;
  clock : (unit -> int) option;
  mutable last_access_cycle : int;
  mutable reads : int;
  mutable writes : int;
  mutable conflicts : int;
}

let create ?clock ~name ~entries ~width () =
  if entries <= 0 then invalid_arg "Register_array.create: entries must be positive";
  if width <= 0 || width > 62 then invalid_arg "Register_array.create: width must be in 1..62";
  {
    name;
    width;
    mask = (if width = 62 then max_int else (1 lsl width) - 1);
    data = Array.make entries 0;
    clock;
    last_access_cycle = min_int;
    reads = 0;
    writes = 0;
    conflicts = 0;
  }

let name t = t.name
let entries t = Array.length t.data
let width t = t.width
let bits t = Array.length t.data * t.width

let touch t =
  match t.clock with
  | None -> ()
  | Some clock ->
      let cycle = clock () in
      if cycle = t.last_access_cycle then t.conflicts <- t.conflicts + 1
      else t.last_access_cycle <- cycle

let check_index t i =
  if i < 0 || i >= Array.length t.data then
    invalid_arg (Printf.sprintf "Register_array %s: index %d out of [0,%d)" t.name i (Array.length t.data))

let read t i =
  check_index t i;
  touch t;
  t.reads <- t.reads + 1;
  t.data.(i)

let write t i v =
  check_index t i;
  touch t;
  t.writes <- t.writes + 1;
  t.data.(i) <- v land t.mask

let add t i delta =
  check_index t i;
  touch t;
  t.reads <- t.reads + 1;
  t.writes <- t.writes + 1;
  let v = (t.data.(i) + delta) land t.mask in
  t.data.(i) <- v;
  v

let fill t v = Array.fill t.data 0 (Array.length t.data) (v land t.mask)
let reset t = fill t 0

let clear_entry t i =
  check_index t i;
  t.data.(i) <- 0
let reads t = t.reads
let writes t = t.writes
let conflicts t = t.conflicts
let nonzero_entries t = Array.fold_left (fun acc v -> if v <> 0 then acc + 1 else acc) 0 t.data
let to_array t = Array.copy t.data
