(** Single-ported register array — the stateful primitive of a PISA
    pipeline stage.

    Values are masked to [width] bits (width <= 62). The array counts
    accesses, and, when given a cycle clock, detects same-cycle port
    conflicts: a physical single-ported SRAM can serve one
    read-modify-write per cycle, so two accesses in one cycle means the
    design would not meet line rate — exactly the problem §4 of the
    paper solves with aggregation registers. The simulator records the
    conflict and proceeds (functional behaviour is unaffected). *)

type t

val create : ?clock:(unit -> int) -> name:string -> entries:int -> width:int -> unit -> t
val name : t -> string
val entries : t -> int
val width : t -> int
val bits : t -> int
(** [entries * width] — the state footprint used for resource metering. *)

val read : t -> int -> int
val write : t -> int -> int -> unit
val add : t -> int -> int -> int
(** [add t i delta] read-modify-writes entry [i] (single port access),
    returning the new value (wrapping at [width] bits). *)

val fill : t -> int -> unit
val reset : t -> unit
(** Zero all entries; counts as one bulk operation, not per-entry
    accesses (hardware resets are wired, not ported). *)

val clear_entry : t -> int -> unit
(** Zero one entry without touching the access port — the per-slot
    wired clear used by table-managed externs ({!Efsm} eviction). *)

val reads : t -> int
val writes : t -> int
val conflicts : t -> int
(** Same-cycle multi-access count (0 when no clock was supplied). *)

val nonzero_entries : t -> int
val to_array : t -> int array
(** Snapshot copy, for tests and reports. *)
