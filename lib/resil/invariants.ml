module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time

type policy = Abort | Record

exception Violation of string * string

type check = { c_name : string; c_fn : unit -> string option; mutable c_violations : int }

let max_log = 64

type t = {
  sched : Scheduler.t;
  policy : policy;
  period : Sim_time.t;
  mutable checks : check list; (* registration order, newest first *)
  mutable passes : int;
  mutable checks_run_ : int;
  mutable violations_ : int;
  mutable log_ : (Sim_time.t * string * string) list; (* newest first, bounded *)
  mutable running : bool;
}

let create ~sched ?(policy = Record) ?(period = Sim_time.us 100) () =
  if period <= 0 then invalid_arg "Invariants.create: period must be positive";
  {
    sched;
    policy;
    period;
    checks = [];
    passes = 0;
    checks_run_ = 0;
    violations_ = 0;
    log_ = [];
    running = false;
  }

let add t ~name fn =
  t.checks <- { c_name = name; c_fn = fn; c_violations = 0 } :: t.checks

let add_zero t ~name read =
  add t ~name (fun () ->
      let v = read () in
      if v = 0 then None else Some (Printf.sprintf "%s = %d, expected 0" name v))

let record t check msg =
  check.c_violations <- check.c_violations + 1;
  t.violations_ <- t.violations_ + 1;
  if List.length t.log_ < max_log then
    t.log_ <- (Scheduler.now t.sched, check.c_name, msg) :: t.log_;
  match t.policy with
  | Abort -> raise (Violation (check.c_name, msg))
  | Record -> ()

(* One sweep over every registered check. A check that itself raises is
   a violation of its own contract and is recorded the same way. *)
let run_once t =
  t.passes <- t.passes + 1;
  let before = t.violations_ in
  List.iter
    (fun check ->
      t.checks_run_ <- t.checks_run_ + 1;
      match check.c_fn () with
      | None -> ()
      | Some msg -> record t check msg
      | exception (Violation _ as e) -> raise e
      | exception exn -> record t check (Printexc.to_string exn))
    (List.rev t.checks);
  t.violations_ - before

(* [Scheduler.every] never self-terminates (it would keep the run
   alive forever), so the checker reschedules itself and stops past
   the bound, like [Faults.Schedule]. *)
let start t ~stop =
  if not t.running then begin
    t.running <- true;
    let rec tick () =
      ignore (run_once t : int);
      let next = Scheduler.now t.sched + t.period in
      if next <= stop then Scheduler.post_after ~cls:"resil.invariant" t.sched ~delay:t.period tick
      else t.running <- false
    in
    let first = Scheduler.now t.sched + t.period in
    if first <= stop then Scheduler.post_after ~cls:"resil.invariant" t.sched ~delay:t.period tick
    else t.running <- false
  end

let passes t = t.passes
let checks_run t = t.checks_run_
let violations t = t.violations_
let violation_log t = List.rev_map (fun (at, name, msg) -> (at, name, msg)) t.log_

let check_stats t = List.rev_map (fun c -> (c.c_name, c.c_violations)) t.checks

let export_metrics ?(labels = []) t reg =
  if Obs.Metrics.is_enabled reg then begin
    let counter ?(labels = labels) name v =
      Obs.Metrics.Counter.set (Obs.Metrics.counter reg ~labels name) v
    in
    counter "resil.invariant.passes" t.passes;
    counter "resil.invariant.checks_run" t.checks_run_;
    counter "resil.invariant.violations" t.violations_;
    List.iter
      (fun c ->
        if c.c_violations > 0 then
          counter ~labels:(("check", c.c_name) :: labels) "resil.invariant.check_violations"
            c.c_violations)
      (List.rev t.checks)
  end
