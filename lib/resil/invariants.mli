(** Runtime invariant checker.

    A periodic simulated-time process that sweeps a set of named
    checks — predicates over global simulator state such as packet
    conservation (generated = delivered + dropped + in-flight), buffer
    occupancy within capacity, and timer monotonicity. Each check
    returns [None] when the invariant holds or [Some msg] describing
    the violation.

    The violation policy decides the blast radius: [Abort] raises
    {!Violation} out of the scheduler run (debugging mode), [Record]
    counts it, keeps a bounded log, and lets the simulation continue
    (the default — violations then surface through [resil.invariant.*]
    metrics). *)

type policy = Abort | Record

exception Violation of string * string
(** [(check name, message)] — raised under [Abort]. *)

type t

val create :
  sched:Eventsim.Scheduler.t ->
  ?policy:policy ->
  ?period:Eventsim.Sim_time.t ->
  unit ->
  t
(** Defaults: [Record] policy, 100 us sweep period. *)

val add : t -> name:string -> (unit -> string option) -> unit
(** Register a check. A check that raises is itself recorded as a
    violation (checks must not crash the checker). *)

val add_zero : t -> name:string -> (unit -> int) -> unit
(** Register a check over a counter that must stay exactly zero (the
    common shape for "this must never happen" counters, e.g.
    [Netupd.Agent] mixed-version forwardings). The violation message
    reports the offending value. *)

val run_once : t -> int
(** Sweep every check now; returns the number of new violations. *)

val start : t -> stop:Eventsim.Sim_time.t -> unit
(** Begin periodic sweeps, self-rescheduling until simulated time
    would pass [stop] (so the checker never keeps the scheduler run
    alive on its own). *)

val passes : t -> int
val checks_run : t -> int
val violations : t -> int

val violation_log : t -> (Eventsim.Sim_time.t * string * string) list
(** First [64] violations, oldest first: (time, check, message). *)

val check_stats : t -> (string * int) list
(** Per check: (name, violations), in registration order. *)

val export_metrics : ?labels:Obs.Metrics.labels -> t -> Obs.Metrics.t -> unit
(** [resil.invariant.passes] / [checks_run] / [violations] plus a
    per-check violation counter for checks that fired. Idempotent;
    no-op when disabled. *)
