type t = Fail_fast | Drop_event | Quarantine

let all = [ Fail_fast; Drop_event; Quarantine ]

let to_string = function
  | Fail_fast -> "fail-fast"
  | Drop_event -> "drop-event"
  | Quarantine -> "quarantine"

let of_string s =
  match String.lowercase_ascii s with
  | "fail-fast" | "fail_fast" | "failfast" | "off" -> Some Fail_fast
  | "drop-event" | "drop_event" | "drop" -> Some Drop_event
  | "quarantine" -> Some Quarantine
  | _ -> None

let names = List.map to_string all

(* Process-wide default, consulted by [Supervisor.default_config] (and
   hence [Event_switch.default_config]) at call time — the same pattern
   as [Sched_backend.default], so [evsim --resil-policy] reaches every
   switch an experiment creates internally. *)
let default = ref Quarantine
