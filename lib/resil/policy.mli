(** What a supervisor does with a handler that raises or exhausts its
    watchdog budget.

    - [Fail_fast]: re-raise (wrapped in {!Supervisor.Failed}) — the
      pre-supervision behaviour, where one bad handler aborts the whole
      simulation. Kept as the "supervision off" baseline.
    - [Drop_event]: swallow the failure, drop the triggering event, keep
      the handler subscribed.
    - [Quarantine]: drop the event {e and} unsubscribe the handler, then
      re-enable it after an exponential backoff with deterministic
      seeded jitter (the default). *)

type t = Fail_fast | Drop_event | Quarantine

val all : t list
val to_string : t -> string
val of_string : string -> t option
val names : string list

val default : t ref
(** Process-wide default policy (initially [Quarantine]); set by
    [evsim --resil-policy] before experiments create their switches. *)
