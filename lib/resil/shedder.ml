type tier = { name : string; classes : int list; high : int; low : int }
type config = { tiers : tier list }

(* Process-wide default watermark; [None] means shedding stays off
   unless a config is passed explicitly. Set by [evsim
   --shed-watermark]; consumed by [Event_switch.default_config]. *)
let default_watermark : int option ref = ref None

type t = {
  tiers : tier array; (* ascending watermark = shed order *)
  cls_tier : int array; (* class index -> tier index, -1 = never shed *)
  mutable level : int; (* tiers [0, level) are currently shedding *)
  activations : int array;
  shed : int array; (* per tier *)
  mutable shed_total : int;
}

let create ~(config : config) () =
  let tiers = Array.of_list config.tiers in
  Array.iteri
    (fun i tier ->
      if tier.high <= 0 then invalid_arg "Shedder.create: watermark must be positive";
      if tier.low < 0 || tier.low >= tier.high then
        invalid_arg "Shedder.create: low watermark must be in [0, high)";
      if i > 0 && tier.high < tiers.(i - 1).high then
        invalid_arg "Shedder.create: tiers must have ascending watermarks")
    tiers;
  let max_cls =
    Array.fold_left
      (fun acc tier -> List.fold_left max acc tier.classes)
      (-1) tiers
  in
  let cls_tier = Array.make (max_cls + 1) (-1) in
  Array.iteri
    (fun i tier ->
      List.iter
        (fun c ->
          if c < 0 then invalid_arg "Shedder.create: negative class index";
          if cls_tier.(c) <> -1 then invalid_arg "Shedder.create: class in two tiers";
          cls_tier.(c) <- i)
        tier.classes)
    tiers;
  {
    tiers;
    cls_tier;
    level = 0;
    activations = Array.make (Array.length tiers) 0;
    shed = Array.make (Array.length tiers) 0;
    shed_total = 0;
  }

(* Move the shed level to match the observed backlog, with hysteresis:
   a tier starts shedding when depth reaches its high watermark and
   stops only once depth falls below its low watermark. *)
let update t ~depth =
  let n = Array.length t.tiers in
  while t.level < n && depth >= t.tiers.(t.level).high do
    t.activations.(t.level) <- t.activations.(t.level) + 1;
    t.level <- t.level + 1
  done;
  while t.level > 0 && depth < t.tiers.(t.level - 1).low do
    t.level <- t.level - 1
  done

let offer t ~depth ~cls =
  update t ~depth;
  if t.level = 0 then false
  else
    let tier = if cls < Array.length t.cls_tier then t.cls_tier.(cls) else -1 in
    if tier >= 0 && tier < t.level then begin
      t.shed.(tier) <- t.shed.(tier) + 1;
      t.shed_total <- t.shed_total + 1;
      true
    end
    else false

let level t = t.level
let shed_total t = t.shed_total

let tier_stats t =
  Array.to_list
    (Array.mapi
       (fun i tier -> (tier.name, t.activations.(i), t.shed.(i)))
       t.tiers)

let export_metrics ?(labels = []) t reg =
  if Obs.Metrics.is_enabled reg then begin
    Obs.Metrics.Gauge.set (Obs.Metrics.gauge reg ~labels "resil.shed.level") t.level;
    Obs.Metrics.Counter.set (Obs.Metrics.counter reg ~labels "resil.shed.total") t.shed_total;
    Array.iteri
      (fun i tier ->
        let labels = ("tier", tier.name) :: labels in
        Obs.Metrics.Counter.set
          (Obs.Metrics.counter reg ~labels "resil.shed.activations")
          t.activations.(i);
        Obs.Metrics.Counter.set (Obs.Metrics.counter reg ~labels "resil.shed.events") t.shed.(i))
      t.tiers
  end
