(** Graceful event shedding under overload.

    When a queue's backlog crosses configurable watermarks, whole event
    classes are shed in priority {e tiers} — aggregation/telemetry
    events first, packet events last — modeling the paper's §4
    bounded-staleness trade-off as an explicit overload-protection
    knob: under pressure the system serves stale aggregates rather
    than stalling or failing.

    Tiers are ordered by ascending [high] watermark (= shed order) and
    recover with hysteresis (a tier stops shedding only once the
    backlog falls below its [low] watermark). Classes are abstract
    [int] indices so the module stays independent of the event type;
    the event merger maps [Devents.Event.cls_index] onto them. *)

type tier = {
  name : string;
  classes : int list;  (** class indices shed while this tier is active *)
  high : int;  (** backlog depth at which the tier starts shedding *)
  low : int;  (** backlog depth below which it stops (hysteresis) *)
}

type config = { tiers : tier list }

val default_watermark : int option ref
(** Process-wide base watermark; [None] (the default) disables
    shedding. Set by [evsim --shed-watermark], consumed by
    [Event_switch.default_config] via [Event_merger.shed_config]. *)

type t

val create : config:config -> unit -> t
(** Validates tier ordering, watermark sanity and class disjointness. *)

val offer : t -> depth:int -> cls:int -> bool
(** [offer t ~depth ~cls] updates the shed level against the current
    backlog [depth] and returns [true] if an event of class [cls]
    should be shed now. Deterministic: purely a function of the
    observed depth sequence. *)

val level : t -> int
(** Number of tiers currently shedding. *)

val shed_total : t -> int

val tier_stats : t -> (string * int * int) list
(** Per tier: (name, activations, events shed). *)

val export_metrics : ?labels:Obs.Metrics.labels -> t -> Obs.Metrics.t -> unit
(** [resil.shed.level] gauge, [resil.shed.total] and per-tier
    activation / shed counters. Idempotent; no-op when disabled. *)
