module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time

exception Failed of string * exn
exception Budget_exhausted
exception Injected_crash of string

type config = {
  policy : Policy.t;
  max_trips : int;
  base_backoff : Sim_time.t;
  max_backoff : Sim_time.t;
  backoff_jitter : Sim_time.t;
  budget : int;
}

let default_config () =
  {
    policy = !Policy.default;
    max_trips = 8;
    base_backoff = Sim_time.us 50;
    max_backoff = Sim_time.ms 1;
    backoff_jitter = Sim_time.us 20;
    budget = 100_000;
  }

type key = {
  k_name : string;
  k_policy : Policy.t;
  on_disable : unit -> unit;
  on_enable : unit -> unit;
  k_rng : Stats.Rng.t; (* backoff jitter stream, split at registration *)
  mutable active_ : bool;
  mutable permanent : bool;
  mutable trip_count : int;
  mutable calls : int;
  mutable crashes : int;
  mutable watchdog : int;
  mutable dropped : int;
  mutable recovered : int;
  mutable fuel : int;
  mutable pending_crash : int;
  mutable pending_slow : int;
  mutable slow_steps : int;
}

let noop () = ()

(* Sentinel for "no guard running". Using a physical-equality sentinel
   instead of a [key option] keeps the per-invocation guard entry/exit
   allocation-free on the event hot path. *)
let no_key =
  {
    k_name = "<none>";
    k_policy = Policy.Fail_fast;
    on_disable = noop;
    on_enable = noop;
    k_rng = Stats.Rng.create ~seed:0;
    active_ = false;
    permanent = true;
    trip_count = 0;
    calls = 0;
    crashes = 0;
    watchdog = 0;
    dropped = 0;
    recovered = 0;
    fuel = 0;
    pending_crash = 0;
    pending_slow = 0;
    slow_steps = 0;
  }

type t = {
  sched : Scheduler.t;
  config : config;
  rng : Stats.Rng.t;
  mutable keys : key list; (* registration order, newest first *)
  mutable current : key; (* physically [no_key] outside any guard *)
  mutable trips_ : int;
  mutable recoveries_ : int;
  mutable permanent_ : int;
}

let create ~sched ?config ~seed () =
  let config = match config with Some c -> c | None -> default_config () in
  if config.max_trips <= 0 then invalid_arg "Supervisor.create: max_trips must be positive";
  if config.base_backoff <= 0 then
    invalid_arg "Supervisor.create: base_backoff must be positive";
  {
    sched;
    config;
    rng = Stats.Rng.create ~seed;
    keys = [];
    current = no_key;
    trips_ = 0;
    recoveries_ = 0;
    permanent_ = 0;
  }

let register t ~name ?policy ?(on_disable = noop) ?(on_enable = noop) () =
  let key =
    {
      k_name = name;
      k_policy = (match policy with Some p -> p | None -> t.config.policy);
      on_disable;
      on_enable;
      k_rng = Stats.Rng.split t.rng;
      active_ = true;
      permanent = false;
      trip_count = 0;
      calls = 0;
      crashes = 0;
      watchdog = 0;
      dropped = 0;
      recovered = 0;
      fuel = 0;
      pending_crash = 0;
      pending_slow = 0;
      slow_steps = 0;
    }
  in
  t.keys <- key :: t.keys;
  key

let key_name k = k.k_name
let active k = k.active_
let permanently_failed k = k.permanent
let key_trips k = k.trip_count
let key_crashes k = k.crashes
let key_dropped k = k.dropped
let key_recoveries k = k.recovered
let key_calls k = k.calls

(* Exponential backoff for the [n]th trip (1-based), capped, plus a
   deterministic jitter drawn from the key's own split RNG — so backoff
   timelines are reproducible and independent across handlers. *)
let backoff_delay t key =
  let exp = min (key.trip_count - 1) 30 in
  let nominal = min t.config.max_backoff (t.config.base_backoff * (1 lsl exp)) in
  let nominal = if nominal <= 0 then t.config.max_backoff else nominal in
  let jitter =
    if t.config.backoff_jitter > 0 then Stats.Rng.int key.k_rng (t.config.backoff_jitter + 1)
    else 0
  in
  nominal + jitter

let quarantine t key =
  key.trip_count <- key.trip_count + 1;
  t.trips_ <- t.trips_ + 1;
  key.active_ <- false;
  key.on_disable ();
  if key.trip_count >= t.config.max_trips then begin
    key.permanent <- true;
    t.permanent_ <- t.permanent_ + 1
  end
  else
    let delay = backoff_delay t key in
    Scheduler.post_after ~cls:"resil.backoff" t.sched ~delay (fun () ->
        if not key.permanent then begin
          key.active_ <- true;
          key.recovered <- key.recovered + 1;
          t.recoveries_ <- t.recoveries_ + 1;
          key.on_enable ()
        end)

(* A failure has been caught (or, under [Fail_fast], is about to
   abort): account it, then apply the key's policy. *)
let trap t key exn =
  key.crashes <- key.crashes + 1;
  (match exn with Budget_exhausted -> key.watchdog <- key.watchdog + 1 | _ -> ());
  match key.k_policy with
  | Policy.Fail_fast -> raise (Failed (key.k_name, exn))
  | Policy.Drop_event -> key.dropped <- key.dropped + 1
  | Policy.Quarantine ->
      key.dropped <- key.dropped + 1;
      quarantine t key

let consume t n =
  let key = t.current in
  if key != no_key && t.config.budget > 0 then begin
    key.fuel <- key.fuel - n;
    if key.fuel < 0 then raise Budget_exhausted
  end

(* Pre-invocation bookkeeping shared by every guarded entry point:
   arms injected faults and resets the watchdog fuel. Raises (into the
   caller's [trap]) when an injected crash or slowdown fires. *)
let enter t key =
  key.calls <- key.calls + 1;
  key.fuel <- t.config.budget;
  t.current <- key;
  if key.pending_crash > 0 then begin
    key.pending_crash <- key.pending_crash - 1;
    raise (Injected_crash key.k_name)
  end;
  if key.pending_slow > 0 then begin
    key.pending_slow <- key.pending_slow - 1;
    consume t key.slow_steps
  end

(* Guards may nest (a handler's [notify_monitor] callback is itself
   guarded), so the previously-running key is restored, not cleared. *)
let call t key f a b =
  if key.permanent || not key.active_ then begin
    key.dropped <- key.dropped + 1;
    None
  end
  else begin
    let prev = t.current in
    match
      enter t key;
      f a b
    with
    | r ->
        t.current <- prev;
        Some r
    | exception exn ->
        t.current <- prev;
        trap t key exn;
        None
  end

(* Like [call], but delivers the result through a (persistent) sink
   instead of wrapping it in an option — no [Some] allocation per
   guarded invocation on the packet hot path. *)
let call_sink t key f a b ~sink =
  if key.permanent || not key.active_ then begin
    key.dropped <- key.dropped + 1;
    false
  end
  else begin
    let prev = t.current in
    match
      enter t key;
      f a b
    with
    | r ->
        t.current <- prev;
        sink r;
        true
    | exception exn ->
        t.current <- prev;
        trap t key exn;
        false
  end

let call_unit t key f a b =
  if key.permanent || not key.active_ then begin
    key.dropped <- key.dropped + 1;
    false
  end
  else begin
    let prev = t.current in
    match
      enter t key;
      f a b
    with
    | () ->
        t.current <- prev;
        true
    | exception exn ->
        t.current <- prev;
        trap t key exn;
        false
  end

let protect t key f =
  if key.permanent || not key.active_ then begin
    key.dropped <- key.dropped + 1;
    false
  end
  else begin
    let prev = t.current in
    match
      enter t key;
      f ()
    with
    | () ->
        t.current <- prev;
        true
    | exception exn ->
        t.current <- prev;
        trap t key exn;
        false
  end

let inject_crash key ~n =
  if n < 0 then invalid_arg "Supervisor.inject_crash: negative count";
  key.pending_crash <- key.pending_crash + n

let inject_slowdown key ~steps ~n =
  if n < 0 then invalid_arg "Supervisor.inject_slowdown: negative count";
  if steps < 0 then invalid_arg "Supervisor.inject_slowdown: negative steps";
  key.slow_steps <- steps;
  key.pending_slow <- key.pending_slow + n

let trips t = t.trips_
let recoveries t = t.recoveries_
let permanent_failures t = t.permanent_
let policy t = t.config.policy
let config t = t.config

let fold_keys t ~init ~f = List.fold_left f init t.keys
let dropped t = fold_keys t ~init:0 ~f:(fun acc k -> acc + k.dropped)
let crashes t = fold_keys t ~init:0 ~f:(fun acc k -> acc + k.crashes)
let watchdog_trips t = fold_keys t ~init:0 ~f:(fun acc k -> acc + k.watchdog)
let quarantined t = fold_keys t ~init:0 ~f:(fun acc k -> acc + (if k.active_ then 0 else 1))

let keys t = List.rev t.keys
let find_key t ~name = List.find_opt (fun k -> k.k_name = name) t.keys

let export_metrics ?(labels = []) t reg =
  if Obs.Metrics.is_enabled reg then begin
    let counter ?(labels = labels) name v =
      Obs.Metrics.Counter.set (Obs.Metrics.counter reg ~labels name) v
    in
    counter "resil.trips" t.trips_;
    counter "resil.recoveries" t.recoveries_;
    counter "resil.permanent_failures" t.permanent_;
    List.iter
      (fun k ->
        if k.crashes > 0 || k.dropped > 0 || k.trip_count > 0 then begin
          let labels = ("handler", k.k_name) :: labels in
          counter ~labels "resil.handler.crashes" k.crashes;
          counter ~labels "resil.handler.watchdog_trips" k.watchdog;
          counter ~labels "resil.handler.trips" k.trip_count;
          counter ~labels "resil.handler.recoveries" k.recovered;
          counter ~labels "resil.handler.dropped_events" k.dropped
        end)
      (keys t)
  end
