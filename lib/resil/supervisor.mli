(** Supervised handler execution.

    Every handler invocation on the dispatch path runs under a
    supervisor: exceptions are caught, a cooperative step budget (the
    watchdog) bounds runaway handlers, and the per-handler
    {!Policy.t} decides what a failure costs — abort ([Fail_fast]),
    lose one event ([Drop_event]), or unsubscribe the handler and
    re-enable it after an exponentially-growing, deterministically
    jittered backoff ([Quarantine]).

    Each registered handler is a {!key}. A key carries [on_disable] /
    [on_enable] callbacks (an event switch passes
    [Event_switch.set_subscribed]) so quarantining a handler also stops
    the event stream feeding it, and its own split RNG so backoff
    jitter is reproducible and independent of every other stream.

    The watchdog is metered, not preemptive: guarded code (or a fault
    injector) reports work via {!consume}; exceeding the per-invocation
    [budget] raises {!Budget_exhausted}, which the guard traps like any
    other handler failure. *)

type t
type key

exception Failed of string * exn
(** Raised (out of the guard) under [Fail_fast]: handler name plus the
    original exception. *)

exception Budget_exhausted
(** Raised by {!consume} when the current invocation's watchdog budget
    runs out. *)

exception Injected_crash of string
(** The synthetic failure armed by {!inject_crash}. *)

type config = {
  policy : Policy.t;  (** default policy for keys registered without one *)
  max_trips : int;  (** quarantine trips before a permanent failure *)
  base_backoff : Eventsim.Sim_time.t;  (** first quarantine duration *)
  max_backoff : Eventsim.Sim_time.t;  (** backoff growth cap *)
  backoff_jitter : Eventsim.Sim_time.t;
      (** uniform jitter added to each backoff, drawn from the key's
          split RNG *)
  budget : int;  (** watchdog steps per invocation; 0 = unlimited *)
}

val default_config : unit -> config
(** Reads {!Policy.default} at call time: 8 trips, 50 us base backoff
    doubling to a 1 ms cap, 20 us jitter, 100k-step budget. *)

val create : sched:Eventsim.Scheduler.t -> ?config:config -> seed:int -> unit -> t

val register :
  t ->
  name:string ->
  ?policy:Policy.t ->
  ?on_disable:(unit -> unit) ->
  ?on_enable:(unit -> unit) ->
  unit ->
  key
(** Registration order is significant: each key splits its jitter RNG
    off the supervisor's master stream. *)

(** {1 Guarded invocation} *)

val call : t -> key -> ('a -> 'b -> 'r) -> 'a -> 'b -> 'r option
(** Run [f a b] under the guard. [None] if the key is quarantined /
    permanently failed (the event is counted dropped) or the invocation
    failed and the policy absorbed it. Under [Fail_fast] a failure
    raises {!Failed} instead. *)

val call_sink : t -> key -> ('a -> 'b -> 'r) -> 'a -> 'b -> sink:('r -> unit) -> bool
(** Like {!call}, but the result is passed to [sink] (called only on
    success, before returning [true]) instead of being wrapped in an
    option — allocation-free when [sink] is a persistent closure. *)

val call_unit : t -> key -> ('a -> 'b -> unit) -> 'a -> 'b -> bool
(** Allocation-free variant of {!call} for [unit] handlers; [true] iff
    the handler ran to completion. *)

val protect : t -> key -> (unit -> unit) -> bool
(** Thunk variant, for callbacks that are not shaped [ctx -> ev]. *)

val consume : t -> int -> unit
(** Report [n] steps of work against the currently-running guarded
    invocation's budget (no-op outside a guard or with budget 0). *)

(** {1 Fault-injection hooks} (driven by [Faults.Handler_fault]) *)

val inject_crash : key -> n:int -> unit
(** Arm the next [n] invocations of [key] to raise {!Injected_crash}. *)

val inject_slowdown : key -> steps:int -> n:int -> unit
(** Arm the next [n] invocations to consume [steps] watchdog steps
    before the handler body runs. *)

(** {1 Introspection} *)

val key_name : key -> string
val active : key -> bool
(** [false] while quarantined or permanently failed. *)

val permanently_failed : key -> bool
val key_trips : key -> int
val key_crashes : key -> int
val key_dropped : key -> int
val key_recoveries : key -> int
val key_calls : key -> int

val trips : t -> int
val recoveries : t -> int
val permanent_failures : t -> int
val dropped : t -> int
val crashes : t -> int
val watchdog_trips : t -> int
val quarantined : t -> int
(** Keys currently inactive. *)

val policy : t -> Policy.t
val config : t -> config
val keys : t -> key list
(** In registration order. *)

val find_key : t -> name:string -> key option

val export_metrics : ?labels:Obs.Metrics.labels -> t -> Obs.Metrics.t -> unit
(** Publish [resil.trips] / [resil.recoveries] /
    [resil.permanent_failures] plus per-handler crash / watchdog /
    trip / recovery / dropped-event counters (only for handlers that
    misbehaved, to keep cardinality flat). Idempotent; no-op when
    disabled. *)
