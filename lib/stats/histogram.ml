type layout =
  | Linear of { lo : float; width : float }
  | Log2

type t = {
  layout : layout;
  counts : int array;
  bounds : (float * float) array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : int;
  (* [sum; max_seen] in a flat float array: as mutable fields of this
     mixed record each store would box a fresh float, and [add] sits on
     per-event hot paths (staleness tracking in the shared registers). *)
  acc : float array;
}

let make layout bounds =
  {
    layout;
    counts = Array.make (Array.length bounds) 0;
    bounds;
    underflow = 0;
    overflow = 0;
    total = 0;
    acc = [| 0.; neg_infinity |];
  }

let linear ~lo ~hi ~buckets =
  if buckets <= 0 || hi <= lo then invalid_arg "Histogram.linear";
  let width = (hi -. lo) /. float_of_int buckets in
  let bounds =
    Array.init buckets (fun i ->
        (lo +. (float_of_int i *. width), lo +. (float_of_int (i + 1) *. width)))
  in
  make (Linear { lo; width }) bounds

let log2 ~max_exponent =
  if max_exponent <= 0 then invalid_arg "Histogram.log2";
  let bounds =
    Array.init (max_exponent + 1) (fun i ->
        if i = 0 then (0., 1.) else (2. ** float_of_int (i - 1), 2. ** float_of_int i))
  in
  make Log2 bounds

let bucket_index t x =
  match t.layout with
  | Linear { lo; width } ->
      if x < lo then -1
      else
        let i = int_of_float ((x -. lo) /. width) in
        if i >= Array.length t.counts then Array.length t.counts else i
  | Log2 ->
      if x < 0. then -1
      else if x < 1. then 0
      else
        (* floor(log2 x) = floor(log2 (floor x)) for x >= 1 (both lie in
           the same [2^k, 2^(k+1)) octave), so the bucket falls out of a
           few shift probes — no [Float.log2] C call per observation. *)
        let n = int_of_float x in
        let n = ref n and k = ref 0 in
        if !n lsr 32 <> 0 then begin n := !n lsr 32; k := !k + 32 end;
        if !n lsr 16 <> 0 then begin n := !n lsr 16; k := !k + 16 end;
        if !n lsr 8 <> 0 then begin n := !n lsr 8; k := !k + 8 end;
        if !n lsr 4 <> 0 then begin n := !n lsr 4; k := !k + 4 end;
        if !n lsr 2 <> 0 then begin n := !n lsr 2; k := !k + 2 end;
        if !n lsr 1 <> 0 then incr k;
        let i = 1 + !k in
        if i >= Array.length t.counts then Array.length t.counts else i

let add_n t x n =
  t.total <- t.total + n;
  t.acc.(0) <- t.acc.(0) +. (x *. float_of_int n);
  if x > t.acc.(1) then t.acc.(1) <- x;
  let i = bucket_index t x in
  if i < 0 then t.underflow <- t.underflow + n
  else if i >= Array.length t.counts then t.overflow <- t.overflow + n
  else t.counts.(i) <- t.counts.(i) + n

let add t x = add_n t x 1
let count t = t.total
let underflow t = t.underflow
let overflow t = t.overflow
let mean t = if t.total = 0 then 0. else t.acc.(0) /. float_of_int t.total
let max_seen t = t.acc.(1)

let percentile t q =
  if t.total = 0 then nan
  else begin
    let target = q *. float_of_int t.total in
    let acc = ref (float_of_int t.underflow) in
    let result = ref nan in
    (try
       for i = 0 to Array.length t.counts - 1 do
         acc := !acc +. float_of_int t.counts.(i);
         if !acc >= target then begin
           result := snd t.bounds.(i);
           raise Exit
         end
       done;
       result := t.acc.(1)
     with Exit -> ());
    (* Never report beyond the observed maximum. *)
    Float.min !result t.acc.(1)
  end

let buckets t =
  let out = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then
      let lo, hi = t.bounds.(i) in
      out := (lo, hi, t.counts.(i)) :: !out
  done;
  !out

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.underflow <- 0;
  t.overflow <- 0;
  t.total <- 0;
  t.acc.(0) <- 0.;
  t.acc.(1) <- neg_infinity

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.4g p50=%.4g p99=%.4g max=%.4g" t.total (mean t)
    (percentile t 0.5) (percentile t 0.99) t.acc.(1)
