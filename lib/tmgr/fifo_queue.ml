(* Ring buffer rather than [Stdlib.Queue]: the stdlib queue links one
   cons cell per [push], which puts a minor-heap allocation on every
   packet through the traffic manager. The ring recycles its slots —
   steady-state push/pop allocates nothing — and vacated slots are
   reset to [Packet.nil] so a popped packet is never pinned by the
   queue that carried it. Capacity is a power of two so indices are
   mask-derived. *)

type t = {
  mutable data : Netcore.Packet.t array;
  mutable head : int;
  mutable count : int;
  limit_bytes : int option;
  mutable bytes : int;
  mutable high_watermark : int;
}

let create ?limit_bytes () =
  {
    data = Array.make 16 Netcore.Packet.nil;
    head = 0;
    count = 0;
    limit_bytes;
    bytes = 0;
    high_watermark = 0;
  }

let can_accept t n =
  match t.limit_bytes with None -> true | Some limit -> t.bytes + n <= limit

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) Netcore.Packet.nil in
  for i = 0 to t.count - 1 do
    data.(i) <- t.data.((t.head + i) land (cap - 1))
  done;
  t.data <- data;
  t.head <- 0

let push t pkt =
  if t.count = Array.length t.data then grow t;
  t.data.((t.head + t.count) land (Array.length t.data - 1)) <- pkt;
  t.count <- t.count + 1;
  t.bytes <- t.bytes + Netcore.Packet.len pkt;
  if t.bytes > t.high_watermark then t.high_watermark <- t.bytes

let pop t =
  if t.count = 0 then None
  else begin
    let pkt = t.data.(t.head) in
    t.data.(t.head) <- Netcore.Packet.nil;
    t.head <- (t.head + 1) land (Array.length t.data - 1);
    t.count <- t.count - 1;
    t.bytes <- t.bytes - Netcore.Packet.len pkt;
    Some pkt
  end

let peek t = if t.count = 0 then None else Some t.data.(t.head)
let occupancy_pkts t = t.count
let occupancy_bytes t = t.bytes
let high_watermark_bytes t = t.high_watermark
let is_empty t = t.count = 0
