module Scheduler = Eventsim.Scheduler

type endpoint = {
  deliver : Netcore.Packet.t -> unit;
  notify_status : up:bool -> unit;
}

type fate =
  | Deliver
  | Drop
  | Delay of Eventsim.Sim_time.t
  | Duplicate of int

(* In-flight ring for one direction of the wire.  Every packet on the
   fast path (no perturb extra delay) travels exactly [t.delay], so
   arrival order equals departure order and a FIFO ring plus ONE
   persistent arrival closure replaces a fresh closure per packet.
   Slots are cleared on arrival so the ring never pins dead packets. *)
type flight = {
  mutable pkts : Netcore.Packet.t option array; (* capacity: power of two *)
  mutable epochs : int array; (* epoch at departure, same indices *)
  mutable head : int;
  mutable len : int;
  mutable cb : unit -> unit; (* posted once per in-flight packet *)
}

type t = {
  sched : Scheduler.t;
  delay : int;
  detection_delay : int;
  a : endpoint;
  b : endpoint;
  fly_ab : flight;
  fly_ba : flight;
  mutable up : bool;
  mutable epoch : int; (* bumped on every status change to void in-flight packets *)
  mutable delivered : int;
  mutable lost : int;
  mutable perturb : (from_a:bool -> Netcore.Packet.t -> fate) option;
  mutable perturb_drops : int;
  mutable perturb_dups : int;
  mutable perturb_delays : int;
  mutable stale_notifications : int;
}

let new_flight () =
  { pkts = Array.make 16 None; epochs = Array.make 16 0; head = 0; len = 0; cb = (fun () -> ()) }

let fly_grow fl =
  let cap = Array.length fl.pkts in
  let cap' = cap * 2 in
  let pkts = Array.make cap' None in
  let epochs = Array.make cap' 0 in
  for k = 0 to fl.len - 1 do
    let src = (fl.head + k) land (cap - 1) in
    pkts.(k) <- fl.pkts.(src);
    epochs.(k) <- fl.epochs.(src)
  done;
  fl.pkts <- pkts;
  fl.epochs <- epochs;
  fl.head <- 0

let fly_push t fl ~epoch pkt =
  if fl.len = Array.length fl.pkts then fly_grow fl;
  let i = (fl.head + fl.len) land (Array.length fl.pkts - 1) in
  fl.pkts.(i) <- Some pkt;
  fl.epochs.(i) <- epoch;
  fl.len <- fl.len + 1;
  Scheduler.post_after ~cls:"link" t.sched ~delay:t.delay fl.cb

let arrive t fl dst =
  let i = fl.head in
  let pkt = match fl.pkts.(i) with Some p -> p | None -> assert false in
  let epoch = fl.epochs.(i) in
  fl.pkts.(i) <- None;
  fl.head <- (i + 1) land (Array.length fl.pkts - 1);
  fl.len <- fl.len - 1;
  if t.up && t.epoch = epoch then begin
    t.delivered <- t.delivered + 1;
    dst.deliver pkt
  end
  else t.lost <- t.lost + 1

let create ~sched ?(delay = Eventsim.Sim_time.us 1) ?(detection_delay = Eventsim.Sim_time.us 10)
    ~a ~b () =
  let t =
    {
      sched;
      delay;
      detection_delay;
      a;
      b;
      fly_ab = new_flight ();
      fly_ba = new_flight ();
      up = true;
      epoch = 0;
      delivered = 0;
      lost = 0;
      perturb = None;
      perturb_drops = 0;
      perturb_dups = 0;
      perturb_delays = 0;
      stale_notifications = 0;
    }
  in
  t.fly_ab.cb <- (fun () -> arrive t t.fly_ab t.b);
  t.fly_ba.cb <- (fun () -> arrive t t.fly_ba t.a);
  t

let set_perturb t f = t.perturb <- Some f
let clear_perturb t = t.perturb <- None

(* Perturb-delayed packets leave the FIFO ring (their transit time
   differs, so arrival order no longer matches departure order) and pay
   for a dedicated closure instead. *)
let deliver_after t dst ~epoch ~extra pkt =
  Scheduler.post_after ~cls:"link" t.sched ~delay:(t.delay + extra) (fun () ->
      if t.up && t.epoch = epoch then begin
        t.delivered <- t.delivered + 1;
        dst.deliver pkt
      end
      else t.lost <- t.lost + 1)

let send t ~from_a pkt =
  if not t.up then t.lost <- t.lost + 1
  else begin
    let epoch = t.epoch in
    let dst = if from_a then t.b else t.a in
    let fl = if from_a then t.fly_ab else t.fly_ba in
    let fate = match t.perturb with None -> Deliver | Some f -> f ~from_a pkt in
    match fate with
    | Deliver -> fly_push t fl ~epoch pkt
    | Drop ->
        t.perturb_drops <- t.perturb_drops + 1;
        t.lost <- t.lost + 1
    | Delay extra ->
        let extra = max 0 extra in
        t.perturb_delays <- t.perturb_delays + 1;
        deliver_after t dst ~epoch ~extra pkt
    | Duplicate copies ->
        let copies = max 0 copies in
        t.perturb_dups <- t.perturb_dups + copies;
        fly_push t fl ~epoch pkt;
        for _ = 1 to copies do
          fly_push t fl ~epoch (Netcore.Packet.clone_for_forward pkt)
        done
  end

let change_status t up =
  if t.up <> up then begin
    t.up <- up;
    t.epoch <- t.epoch + 1;
    (* Tag the PHY notification with the epoch that produced it.  Under
       rapid flapping several notifications can be in flight at once;
       only the one matching the current epoch still describes reality —
       stale ones are dropped so an endpoint never observes a status
       that disagrees with [is_up] at delivery time. *)
    let epoch = t.epoch in
    Scheduler.post_after ~cls:"link" t.sched ~delay:t.detection_delay (fun () ->
        if t.epoch = epoch then begin
          t.a.notify_status ~up;
          t.b.notify_status ~up
        end
        else t.stale_notifications <- t.stale_notifications + 1)
  end

let fail t = change_status t false
let restore t = change_status t true
let is_up t = t.up
let delivered t = t.delivered
let lost t = t.lost
let perturb_drops t = t.perturb_drops
let perturb_dups t = t.perturb_dups
let perturb_delays t = t.perturb_delays
let stale_notifications t = t.stale_notifications
