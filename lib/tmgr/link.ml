module Scheduler = Eventsim.Scheduler

type endpoint = {
  deliver : Netcore.Packet.t -> unit;
  notify_status : up:bool -> unit;
}

type fate =
  | Deliver
  | Drop
  | Delay of Eventsim.Sim_time.t
  | Duplicate of int

type t = {
  sched : Scheduler.t;
  delay : int;
  detection_delay : int;
  a : endpoint;
  b : endpoint;
  mutable up : bool;
  mutable epoch : int; (* bumped on every status change to void in-flight packets *)
  mutable delivered : int;
  mutable lost : int;
  mutable perturb : (from_a:bool -> Netcore.Packet.t -> fate) option;
  mutable perturb_drops : int;
  mutable perturb_dups : int;
  mutable perturb_delays : int;
  mutable stale_notifications : int;
}

let create ~sched ?(delay = Eventsim.Sim_time.us 1) ?(detection_delay = Eventsim.Sim_time.us 10)
    ~a ~b () =
  {
    sched;
    delay;
    detection_delay;
    a;
    b;
    up = true;
    epoch = 0;
    delivered = 0;
    lost = 0;
    perturb = None;
    perturb_drops = 0;
    perturb_dups = 0;
    perturb_delays = 0;
    stale_notifications = 0;
  }

let set_perturb t f = t.perturb <- Some f
let clear_perturb t = t.perturb <- None

let deliver_after t dst ~epoch ~extra pkt =
  ignore
    (Scheduler.schedule_after ~cls:"link" t.sched ~delay:(t.delay + extra) (fun () ->
         if t.up && t.epoch = epoch then begin
           t.delivered <- t.delivered + 1;
           dst.deliver pkt
         end
         else t.lost <- t.lost + 1))

let send t ~from_a pkt =
  if not t.up then t.lost <- t.lost + 1
  else begin
    let epoch = t.epoch in
    let dst = if from_a then t.b else t.a in
    let fate = match t.perturb with None -> Deliver | Some f -> f ~from_a pkt in
    match fate with
    | Deliver -> deliver_after t dst ~epoch ~extra:0 pkt
    | Drop ->
        t.perturb_drops <- t.perturb_drops + 1;
        t.lost <- t.lost + 1
    | Delay extra ->
        let extra = max 0 extra in
        t.perturb_delays <- t.perturb_delays + 1;
        deliver_after t dst ~epoch ~extra pkt
    | Duplicate copies ->
        let copies = max 0 copies in
        t.perturb_dups <- t.perturb_dups + copies;
        deliver_after t dst ~epoch ~extra:0 pkt;
        for _ = 1 to copies do
          deliver_after t dst ~epoch ~extra:0 (Netcore.Packet.clone_for_forward pkt)
        done
  end

let change_status t up =
  if t.up <> up then begin
    t.up <- up;
    t.epoch <- t.epoch + 1;
    (* Tag the PHY notification with the epoch that produced it.  Under
       rapid flapping several notifications can be in flight at once;
       only the one matching the current epoch still describes reality —
       stale ones are dropped so an endpoint never observes a status
       that disagrees with [is_up] at delivery time. *)
    let epoch = t.epoch in
    ignore
      (Scheduler.schedule_after ~cls:"link" t.sched ~delay:t.detection_delay (fun () ->
           if t.epoch = epoch then begin
             t.a.notify_status ~up;
             t.b.notify_status ~up
           end
           else t.stale_notifications <- t.stale_notifications + 1))
  end

let fail t = change_status t false
let restore t = change_status t true
let is_up t = t.up
let delivered t = t.delivered
let lost t = t.lost
let perturb_drops t = t.perturb_drops
let perturb_dups t = t.perturb_dups
let perturb_delays t = t.perturb_delays
let stale_notifications t = t.stale_notifications
