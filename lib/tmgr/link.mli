(** Point-to-point link between two device ports.

    Carries packets with a propagation delay; supports failure
    injection. When the link fails (or is restored), each endpoint's
    PHY notices after [detection_delay] and calls its status callback —
    which an event-driven switch turns into a Link Status Change event,
    while a baseline switch must wait for control-plane polling.
    Packets in flight when the failure occurs, and packets sent while
    down, are lost.

    Status notifications are epoch-tagged: under rapid flapping only
    the notification matching the link's current epoch is delivered, so
    an endpoint never observes a stale status that disagrees with
    {!is_up} at delivery time (dropped ones are counted by
    {!stale_notifications}).

    A {e perturbation} hook lets a fault injector decide a per-packet
    {!fate} (drop / extra delay / duplication) at send time — the
    mechanism behind [Faults.Perturb]. Without a hook installed the
    link behaves exactly as before. *)

type endpoint = {
  deliver : Netcore.Packet.t -> unit;
  notify_status : up:bool -> unit;
}

(** What a perturbation decides for one packet. *)
type fate =
  | Deliver  (** normal delivery after the propagation delay *)
  | Drop  (** silently lost (counted in {!lost} and {!perturb_drops}) *)
  | Delay of Eventsim.Sim_time.t
      (** extra latency on top of the propagation delay; large enough
          values reorder the packet behind later traffic *)
  | Duplicate of int  (** deliver plus [n] extra copies *)

type t

val create :
  sched:Eventsim.Scheduler.t ->
  ?delay:Eventsim.Sim_time.t ->
  ?detection_delay:Eventsim.Sim_time.t ->
  a:endpoint ->
  b:endpoint ->
  unit ->
  t
(** Defaults: 1 us propagation, 10 us failure detection. *)

val send : t -> from_a:bool -> Netcore.Packet.t -> unit
val fail : t -> unit
val restore : t -> unit
val is_up : t -> bool
val delivered : t -> int
val lost : t -> int

val set_perturb : t -> (from_a:bool -> Netcore.Packet.t -> fate) -> unit
(** Install a perturbation; it is consulted once per [send] while the
    link is up. *)

val clear_perturb : t -> unit

val perturb_drops : t -> int
(** Packets a perturbation dropped (also included in {!lost}). *)

val perturb_dups : t -> int
(** Extra copies a perturbation created (each also counts in
    {!delivered} when it arrives). *)

val perturb_delays : t -> int
val stale_notifications : t -> int
(** Status notifications suppressed because a newer flap superseded
    them before the PHY detection delay elapsed. *)
