type 'a entry = { rank : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
  capacity : int option;
  mutable evictions : int;
}

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Pifo.create: capacity must be positive"
  | Some _ | None -> ());
  { data = [||]; len = 0; next_seq = 0; capacity; evictions = 0 }

let before a b = a.rank < b.rank || (a.rank = b.rank && a.seq < b.seq)

(* Slots at index >= len are dead; they must not keep the last entry
   that passed through them reachable (values are packets — pinning
   them for the life of the PIFO is a leak).  Dead slots hold this
   shared inert entry instead; its value is never read because the API
   only exposes slots below [len].  [entry] is a mixed int/pointer
   record, so the representation is the same for every ['a] and the
   cast is safe — same discipline as [Event_heap.null_entry]. *)
let null_entry : Obj.t entry = { rank = min_int; seq = min_int; value = Obj.repr () }
let null () : 'a entry = Obj.magic null_entry

let grow t =
  let cap = Array.length t.data in
  let cap' = if cap = 0 then 16 else cap * 2 in
  let data = Array.make cap' (null ()) in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let sift_up t i =
  let entry = t.data.(i) in
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before entry t.data.(parent) then begin
      t.data.(!i) <- t.data.(parent);
      t.data.(parent) <- entry;
      i := parent
    end
    else continue := false
  done

let sift_down t i =
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.len && before t.data.(l) t.data.(!smallest) then smallest := l;
    if r < t.len && before t.data.(r) t.data.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = t.data.(!i) in
      t.data.(!i) <- t.data.(!smallest);
      t.data.(!smallest) <- tmp;
      i := !smallest
    end
    else continue := false
  done

(* Index of the worst (largest-rank, latest) element: it is among the
   leaves; linear scan of the second half of the heap. *)
let worst_index t =
  let worst = ref (t.len / 2) in
  for i = (t.len / 2) + 1 to t.len - 1 do
    if before t.data.(!worst) t.data.(i) then worst := i
  done;
  !worst

let do_push t entry =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- entry;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let remove_at t i =
  t.len <- t.len - 1;
  if i < t.len then begin
    t.data.(i) <- t.data.(t.len);
    t.data.(t.len) <- null ();
    sift_down t i;
    sift_up t i
  end
  else t.data.(i) <- null ()

let push_evict t ~rank value =
  let entry = { rank; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  match t.capacity with
  | Some c when t.len >= c ->
      let w = worst_index t in
      if before entry t.data.(w) then begin
        (* Evict the worst to admit the better-ranked newcomer. *)
        let evicted = t.data.(w).value in
        remove_at t w;
        t.evictions <- t.evictions + 1;
        do_push t entry;
        `Evicted evicted
      end
      else begin
        t.evictions <- t.evictions + 1;
        `Rejected
      end
  | Some _ | None ->
      do_push t entry;
      `Accepted

let push t ~rank value =
  match push_evict t ~rank value with `Accepted | `Evicted _ -> true | `Rejected -> false

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    remove_at t 0;
    Some top.value
  end

let peek t = if t.len = 0 then None else Some t.data.(0).value
let length t = t.len
let is_empty t = t.len = 0
let evictions t = t.evictions
