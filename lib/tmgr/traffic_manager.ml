module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Packet = Netcore.Packet
module Event = Devents.Event

type policy = Fifo | Strict_priority | Pifo_sched

type config = {
  num_ports : int;
  queues_per_port : int;
  buffer_bytes : int;
  queue_limit_bytes : int option;
  pifo_capacity : int;
  policy : policy;
  port_rate_gbps : float;
}

let default_config =
  {
    num_ports = 4;
    queues_per_port = 1;
    buffer_bytes = 512 * 1024;
    queue_limit_bytes = None;
    pifo_capacity = 2048;
    policy = Fifo;
    port_rate_gbps = 10.;
  }

type port_queues =
  | Fifos of Fifo_queue.t array
  | Pifo_q of Netcore.Packet.t Pifo.t

type port = {
  index : int;
  queues : port_queues;
  mutable busy : bool;
  mutable occupancy_bytes : int;
  mutable occupancy_pkts : int;
  (* The wire carries at most one packet per port ([busy]), so a single
     slot plus one persistent completion closure covers every
     transmission — no closure allocation per packet. *)
  mutable tx_pkt : Packet.t; (* Packet.nil when idle *)
  mutable tx_done : unit -> unit;
}

type t = {
  sched : Scheduler.t;
  config : config;
  pool : Buffer_pool.t;
  ports : port array;
  emit : port:int -> Packet.t -> unit;
  events : Devents.Event_sink.t;
  egress : (port:int -> Packet.t -> Packet.t option) option;
  mutable enqueues : int;
  mutable dequeues : int;
  mutable transmitted : int;
  mutable transmitted_bytes : int;
  mutable drops : int;
  mutable egress_drops : int;
  mutable in_flight : int;
  (* One-entry serialization-time memo. The port rate is fixed for the
     lifetime of the TM and traffic repeats packet lengths, so this
     skips the float multiply/divide/round in {!Sim_time.tx_time} on
     nearly every transmission. [-1] = empty. *)
  mutable tx_memo_bytes : int;
  mutable tx_memo_time : int;
}

let make_port config index =
  let queues =
    match config.policy with
    | Fifo | Strict_priority ->
        Fifos
          (Array.init (max 1 config.queues_per_port) (fun _ ->
               match config.queue_limit_bytes with
               | Some limit_bytes -> Fifo_queue.create ~limit_bytes ()
               | None -> Fifo_queue.create ()))
    | Pifo_sched -> Pifo_q (Pifo.create ~capacity:config.pifo_capacity ())
  in
  {
    index;
    queues;
    busy = false;
    occupancy_bytes = 0;
    occupancy_pkts = 0;
    tx_pkt = Packet.nil;
    tx_done = (fun () -> ());
  }

let select_queue t port =
  match port.queues with
  | Pifo_q pifo -> if Pifo.is_empty pifo then None else Some (-1)
  | Fifos queues -> (
      match t.config.policy with
      | Fifo | Strict_priority ->
          (* Strict priority = scan from qid 0 (highest); plain FIFO has a
             single queue so the scan is equivalent. *)
          let rec go q =
            if q >= Array.length queues then None
            else if not (Fifo_queue.is_empty queues.(q)) then Some q
            else go (q + 1)
          in
          go 0
      | Pifo_sched -> None)

let pop_from _t port qid =
  match port.queues with
  | Pifo_q pifo -> Pifo.pop pifo
  | Fifos queues -> Fifo_queue.pop queues.(qid)

let rec try_dequeue t port =
  if not port.busy then
    match select_queue t port with
    | None -> ()
    | Some qid -> (
        match pop_from t port qid with
        | None -> ()
        | Some pkt ->
            let len = Packet.len pkt in
            let meta = pkt.Packet.meta in
            port.occupancy_bytes <- port.occupancy_bytes - len;
            port.occupancy_pkts <- port.occupancy_pkts - 1;
            Buffer_pool.free t.pool len;
            t.dequeues <- t.dequeues + 1;
            t.events.Devents.Event_sink.dequeue ~port:port.index ~qid:meta.Packet.qid
              ~pkt_len:len ~flow_id:meta.Packet.flow_id ~meta:meta.Packet.deq_meta
              ~occupancy_pkts:port.occupancy_pkts ~occupancy_bytes:port.occupancy_bytes
              ~time:(Scheduler.now t.sched);
            if port.occupancy_pkts = 0 then
              t.events.Devents.Event_sink.underflow ~port:port.index ~qid:meta.Packet.qid
                ~time:(Scheduler.now t.sched);
            let outgoing =
              match t.egress with
              | None -> Some pkt
              | Some egress -> egress ~port:port.index pkt
            in
            (match outgoing with
            | None ->
                t.egress_drops <- t.egress_drops + 1;
                (* Port is free immediately; look for more work. *)
                try_dequeue t port
            | Some pkt ->
                port.busy <- true;
                port.tx_pkt <- pkt;
                t.in_flight <- t.in_flight + 1;
                let bytes = Packet.len pkt in
                let tx =
                  if bytes = t.tx_memo_bytes then t.tx_memo_time
                  else begin
                    let tx = Sim_time.tx_time ~bytes ~gbps:t.config.port_rate_gbps in
                    t.tx_memo_bytes <- bytes;
                    t.tx_memo_time <- tx;
                    tx
                  end
                in
                Scheduler.post_after ~cls:"tm.tx" t.sched ~delay:tx port.tx_done))

and finish_tx t port =
  let pkt = port.tx_pkt in
  if Packet.is_nil pkt then assert false;
  port.tx_pkt <- Packet.nil;
  port.busy <- false;
  t.in_flight <- t.in_flight - 1;
  t.transmitted <- t.transmitted + 1;
  t.transmitted_bytes <- t.transmitted_bytes + Packet.len pkt;
  t.events.Devents.Event_sink.transmitted ~port:port.index ~pkt_len:(Packet.len pkt)
    ~flow_id:pkt.Packet.meta.Packet.flow_id ~time:(Scheduler.now t.sched);
  t.emit ~port:port.index pkt;
  try_dequeue t port

let create ~sched ~config ~emit ~events ?egress () =
  if config.num_ports <= 0 then invalid_arg "Traffic_manager.create: num_ports";
  let t =
    {
      sched;
      config;
      pool = Buffer_pool.create ~capacity_bytes:config.buffer_bytes;
      ports = Array.init config.num_ports (make_port config);
      emit;
      events;
      egress;
      enqueues = 0;
      dequeues = 0;
      transmitted = 0;
      transmitted_bytes = 0;
      drops = 0;
      egress_drops = 0;
      in_flight = 0;
      tx_memo_bytes = -1;
      tx_memo_time = 0;
    }
  in
  Array.iter (fun port -> port.tx_done <- (fun () -> finish_tx t port)) t.ports;
  t

let reject t port pkt =
  t.drops <- t.drops + 1;
  let meta = pkt.Packet.meta in
  t.events.Devents.Event_sink.overflow ~port:port.index ~qid:meta.Packet.qid
    ~pkt_len:(Packet.len pkt) ~flow_id:meta.Packet.flow_id ~meta:meta.Packet.enq_meta
    ~occupancy_pkts:port.occupancy_pkts ~occupancy_bytes:port.occupancy_bytes
    ~time:(Scheduler.now t.sched)

(* Post-admission bookkeeping for [enqueue]. Top-level (not a local
   closure of [enqueue]: capturing [t]/[p]/[len]/[pkt] would allocate
   one closure per packet on the enqueue hot path). *)
let accept t p len pkt =
  p.occupancy_bytes <- p.occupancy_bytes + len;
  p.occupancy_pkts <- p.occupancy_pkts + 1;
  t.enqueues <- t.enqueues + 1;
  let meta = pkt.Packet.meta in
  t.events.Devents.Event_sink.enqueue ~port:p.index ~qid:meta.Packet.qid ~pkt_len:len
    ~flow_id:meta.Packet.flow_id ~meta:meta.Packet.enq_meta ~occupancy_pkts:p.occupancy_pkts
    ~occupancy_bytes:p.occupancy_bytes ~time:(Scheduler.now t.sched);
  try_dequeue t p

let enqueue t ~port pkt =
  if port < 0 || port >= Array.length t.ports then
    invalid_arg (Printf.sprintf "Traffic_manager.enqueue: bad port %d" port);
  let p = t.ports.(port) in
  let len = Packet.len pkt in
  match p.queues with
  | Fifos queues ->
      let qid =
        let q = pkt.Packet.meta.Packet.qid in
        if q < 0 || q >= Array.length queues then 0 else q
      in
      pkt.Packet.meta.Packet.qid <- qid;
      if Fifo_queue.can_accept queues.(qid) len && Buffer_pool.try_alloc t.pool len then begin
        Fifo_queue.push queues.(qid) pkt;
        accept t p len pkt;
        true
      end
      else begin
        reject t p pkt;
        false
      end
  | Pifo_q pifo ->
      if Buffer_pool.try_alloc t.pool len then begin
        match Pifo.push_evict pifo ~rank:pkt.Packet.meta.Packet.priority pkt with
        | `Accepted ->
            accept t p len pkt;
            true
        | `Evicted victim ->
            let vlen = Packet.len victim in
            p.occupancy_bytes <- p.occupancy_bytes - vlen;
            p.occupancy_pkts <- p.occupancy_pkts - 1;
            Buffer_pool.free t.pool vlen;
            reject t p victim;
            accept t p len pkt;
            true
        | `Rejected ->
            Buffer_pool.free t.pool len;
            reject t p pkt;
            false
      end
      else begin
        reject t p pkt;
        false
      end

let occupancy_bytes t ~port = t.ports.(port).occupancy_bytes
let occupancy_pkts t ~port = t.ports.(port).occupancy_pkts

let queue_occupancy_bytes t ~port ~qid =
  match t.ports.(port).queues with
  | Fifos queues -> Fifo_queue.occupancy_bytes queues.(qid)
  | Pifo_q _ -> t.ports.(port).occupancy_bytes

let total_occupancy_bytes t =
  Array.fold_left (fun acc p -> acc + p.occupancy_bytes) 0 t.ports

let enqueues t = t.enqueues
let dequeues t = t.dequeues
let transmitted t = t.transmitted
let transmitted_bytes t = t.transmitted_bytes
let drops t = t.drops
let egress_drops t = t.egress_drops
let config t = t.config

let quiescent t =
  t.in_flight = 0 && Array.for_all (fun p -> p.occupancy_pkts = 0) t.ports

let export_metrics ?(labels = []) t reg =
  if Obs.Metrics.is_enabled reg then begin
    let counter name v = Obs.Metrics.Counter.set (Obs.Metrics.counter reg ~labels name) v in
    let gauge ?(labels = labels) name v =
      Obs.Metrics.Gauge.set (Obs.Metrics.gauge reg ~labels name) v
    in
    counter "tm.enqueues" t.enqueues;
    counter "tm.dequeues" t.dequeues;
    counter "tm.transmitted" t.transmitted;
    counter "tm.transmitted_bytes" t.transmitted_bytes;
    counter "tm.drops" t.drops;
    counter "tm.egress_drops" t.egress_drops;
    gauge "tm.buffer_occupancy_bytes" (Buffer_pool.occupancy t.pool);
    gauge "tm.buffer_hwm_bytes" (Buffer_pool.high_watermark t.pool);
    counter "tm.buffer_failed_allocs" (Buffer_pool.failed_allocs t.pool);
    Array.iter
      (fun p ->
        let plabels = ("port", string_of_int p.index) :: labels in
        gauge ~labels:plabels "tm.port_occupancy_bytes" p.occupancy_bytes;
        gauge ~labels:plabels "tm.port_occupancy_pkts" p.occupancy_pkts;
        match p.queues with
        | Fifos queues ->
            Array.iteri
              (fun qid q ->
                gauge
                  ~labels:(("qid", string_of_int qid) :: plabels)
                  "tm.queue_hwm_bytes"
                  (Fifo_queue.high_watermark_bytes q))
              queues
        | Pifo_q pifo ->
            gauge ~labels:plabels "tm.pifo_occupancy_pkts" (Pifo.length pifo))
      t.ports
  end
