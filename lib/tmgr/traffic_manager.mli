(** Traffic manager: per-port output queueing, scheduling and
    transmission, firing the buffer-related data-plane events of
    Table 1 into the architecture's event sink.

    Events fired (with the packet's [enq_meta]/[deq_meta] carried in
    the event metadata, as the paper's programming model specifies):

    - [Enqueue] when a packet is accepted into a queue;
    - [Overflow] when a packet is rejected (shared pool or per-queue
      limit exceeded) — the packet is dropped;
    - [Dequeue] when a packet leaves its queue to start transmission;
    - [Underflow] when that departure leaves the queue empty;
    - [Transmitted] when serialization completes and the packet is
      handed to [emit].

    Scheduling policies: FIFO across a single queue, strict priority
    across the per-port queues (lower qid = higher priority), or a PIFO
    ranked by [meta.priority]. *)

type policy = Fifo | Strict_priority | Pifo_sched

type config = {
  num_ports : int;
  queues_per_port : int;  (** ignored by [Pifo_sched] *)
  buffer_bytes : int;  (** shared pool (default 512 KiB) *)
  queue_limit_bytes : int option;  (** per-queue cap *)
  pifo_capacity : int;  (** entries per port PIFO *)
  policy : policy;
  port_rate_gbps : float;
}

val default_config : config

type t

val create :
  sched:Eventsim.Scheduler.t ->
  config:config ->
  emit:(port:int -> Netcore.Packet.t -> unit) ->
  events:Devents.Event_sink.t ->
  ?egress:(port:int -> Netcore.Packet.t -> Netcore.Packet.t option) ->
  unit ->
  t
(** [egress] runs at dequeue time (PSA egress processing); returning
    [None] drops the packet (counted, no Transmitted event). [events]
    receives buffer/transmit notifications as plain fields — wrap a
    boxed handler with {!Devents.Event_sink.of_fn} if needed. *)

val enqueue : t -> port:int -> Netcore.Packet.t -> bool
(** Route a packet to [port], queue [pkt.meta.qid]. [false] if it was
    dropped (Overflow fired). *)

val occupancy_bytes : t -> port:int -> int
val occupancy_pkts : t -> port:int -> int
val queue_occupancy_bytes : t -> port:int -> qid:int -> int
val total_occupancy_bytes : t -> int
val enqueues : t -> int
val dequeues : t -> int
val transmitted : t -> int
val transmitted_bytes : t -> int
val drops : t -> int
(** Overflow drops. *)

val egress_drops : t -> int
val config : t -> config
val quiescent : t -> bool
(** No queued or in-flight packets. *)

val export_metrics : ?labels:Obs.Metrics.labels -> t -> Obs.Metrics.t -> unit
(** Publish enqueue/dequeue/transmit/drop counters, shared-buffer
    occupancy and high-water marks, and per-port (and per-queue)
    occupancy gauges into [reg]. Idempotent; a no-op when [reg] is
    disabled. *)
