module Flow = Netcore.Flow
module Ipv4_addr = Netcore.Ipv4_addr
module Scheduler = Eventsim.Scheduler

type flow_desc = {
  flow : Flow.t;
  packets : int;
  pkt_bytes : int;
  start : Eventsim.Sim_time.t;
  rank : int;
}

type spec = {
  num_flows : int;
  key_space : int;
  zipf_alpha : float;
  mean_packets : float;
  max_packets : int;
  pkt_bytes : int;
  arrival_rate_per_sec : float;
}

let default_spec =
  {
    num_flows = 500;
    key_space = 200;
    zipf_alpha = 1.1;
    mean_packets = 20.;
    max_packets = max_int;
    pkt_bytes = 256;
    arrival_rate_per_sec = 50_000.;
  }

let flow_of_rank rank =
  (* Deterministic (src, dst) per popularity rank; distinct ports per
     rank keep five-tuples unique. *)
  Flow.make
    ~src:(Ipv4_addr.host ~subnet:1 rank)
    ~dst:(Ipv4_addr.host ~subnet:2 rank)
    ~src_port:(1024 + (rank land 0xfff))
    ~dst_port:80 ()

(* One-flow-at-a-time draw closure: all of [generate], [stream] and
   [install] pull from this, so the draw order (gap, rank, size — in
   that sequence per flow) is identical however the population is
   consumed, and a million-flow mix is never materialized. *)
let make_draw ~rng ?(flow_of_rank = flow_of_rank) spec =
  let zipf = Stats.Dist.zipf ~n:spec.key_space ~alpha:spec.zipf_alpha in
  (* Pareto with shape 1.4 and mean m has scale m * (shape-1)/shape. *)
  let shape = 1.4 in
  let scale = spec.mean_packets *. (shape -. 1.) /. shape in
  let time = ref 0. in
  fun () ->
    let gap = Stats.Dist.exponential rng ~rate:spec.arrival_rate_per_sec in
    time := !time +. gap;
    let rank = Stats.Dist.zipf_draw rng zipf in
    let packets = max 1 (int_of_float (Stats.Dist.pareto rng ~shape ~scale)) in
    let packets = min packets spec.max_packets in
    {
      flow = flow_of_rank rank;
      packets;
      pkt_bytes = spec.pkt_bytes;
      start = int_of_float (!time *. 1e12);
      rank;
    }

let stream ~rng ?flow_of_rank spec ~f =
  if spec.num_flows <= 0 then invalid_arg "Flowgen.stream";
  let draw = make_draw ~rng ?flow_of_rank spec in
  for _ = 1 to spec.num_flows do
    f (draw ())
  done

let generate ~rng spec =
  if spec.num_flows <= 0 then invalid_arg "Flowgen.generate";
  let acc = ref [] in
  stream ~rng spec ~f:(fun fd -> acc := fd :: !acc);
  List.rev !acc

let true_packet_counts flows =
  let table = Hashtbl.create 64 in
  List.iter
    (fun fd ->
      let key = Flow.hash_addresses fd.flow in
      let prev = Option.value (Hashtbl.find_opt table key) ~default:0 in
      Hashtbl.replace table key (prev + fd.packets))
    flows;
  table

type source_stats = {
  mutable flows_started : int;
  mutable flows_finished : int;
  mutable live_flows : int;
  mutable peak_live_flows : int;
  mutable packets_sent : int;
  mutable bytes_sent : int;
  mutable stopped : bool;
}

let halt st = st.stopped <- true

let install ~sched ~rng ?flow_of_rank ?(start = Eventsim.Sim_time.zero) ?arrival_stop
    ~rate_pps_per_flow ?(on_flow = fun _ -> ()) ?(on_flow_end = fun _ -> ()) spec ~send
    () =
  if rate_pps_per_flow <= 0. then
    invalid_arg "Flowgen.install: rate_pps_per_flow must be positive";
  let draw = make_draw ~rng ?flow_of_rank spec in
  let st =
    {
      flows_started = 0;
      flows_finished = 0;
      live_flows = 0;
      peak_live_flows = 0;
      packets_sent = 0;
      bytes_sent = 0;
      stopped = false;
    }
  in
  let emission_gap = max 1 (int_of_float (1e12 /. rate_pps_per_flow)) in
  (* De-grid the emission schedule: with one exact gap shared by every
     flow, two flows whose grids ever align (likely among millions of
     pairs) tie on the same picosecond at every subsequent emission —
     violating the no-same-instant precondition sharded determinism
     rests on. A tiny offset per (flow, packet index), derived only
     from the flow's drawn arrival time (unique w.h.p. and independent
     of the shard layout), keeps repeat emissions off each other's
     grids while moving each gap by at most 4 ns. *)
  let gap_jitter fd i = Netcore.Hashes.mix64 (fd.start + (i * 1_000_003)) land 0xfff in
  let finish fd =
    st.live_flows <- st.live_flows - 1;
    st.flows_finished <- st.flows_finished + 1;
    on_flow_end fd
  in
  (* A live flow is one pending scheduler event (the next emission) plus
     the closure holding [fd] and the packet index — O(1) words. *)
  let begin_flow fd =
    st.flows_started <- st.flows_started + 1;
    st.live_flows <- st.live_flows + 1;
    if st.live_flows > st.peak_live_flows then st.peak_live_flows <- st.live_flows;
    on_flow fd;
    let rec emit_one i =
      if st.stopped then finish fd
      else begin
        let pkt = Traffic.make_packet ~sched ~flow:fd.flow ~pkt_bytes:fd.pkt_bytes in
        st.packets_sent <- st.packets_sent + 1;
        st.bytes_sent <- st.bytes_sent + Netcore.Packet.len pkt;
        send pkt;
        if i + 1 < fd.packets then
          Scheduler.post_after ~cls:"workload" sched
            ~delay:(emission_gap + gap_jitter fd i)
            (fun () -> emit_one (i + 1))
        else finish fd
      end
    in
    emit_one 0
  in
  (* Lazy arrival chain: the next flow is drawn only when the previous
     one starts, so exactly one un-started flow is in memory at any
     simulated moment regardless of [spec.num_flows]. Cumulative draw
     times never decrease, so once one arrival passes [arrival_stop]
     all later ones would too — the chain just ends. *)
  let rec next_arrival remaining =
    if remaining > 0 && not st.stopped then begin
      let fd = draw () in
      let at = start + fd.start in
      match arrival_stop with
      | Some s when at >= s -> ()
      | _ ->
          Scheduler.post ~cls:"workload" sched ~at (fun () ->
              if not st.stopped then begin
                begin_flow fd;
                next_arrival (remaining - 1)
              end)
    end
  in
  next_arrival spec.num_flows;
  st

let replay ~sched ~flows ~rate_pps_per_flow ~send () =
  List.map
    (fun (fd : flow_desc) ->
      let gap_gbps =
        (* Convert a per-flow packet rate into the gbps knob cbr wants. *)
        float_of_int (fd.pkt_bytes * 8) *. rate_pps_per_flow /. 1e9
      in
      let t =
        Traffic.cbr ~sched ~flow:fd.flow ~pkt_bytes:fd.pkt_bytes ~rate_gbps:gap_gbps
          ~start:fd.start ~send ()
      in
      (* Bound the flow's packet count by stopping it after its quota:
         the simplest faithful cut-off is a scheduled stop. *)
      let duration =
        int_of_float (float_of_int fd.packets /. rate_pps_per_flow *. 1e12)
      in
      Eventsim.Scheduler.post sched
        ~at:(fd.start + duration)
        (fun () -> Traffic.stop_now t);
      t)
    flows
