module Flow = Netcore.Flow
module Ipv4_addr = Netcore.Ipv4_addr

type flow_desc = {
  flow : Flow.t;
  packets : int;
  pkt_bytes : int;
  start : Eventsim.Sim_time.t;
  rank : int;
}

type spec = {
  num_flows : int;
  key_space : int;
  zipf_alpha : float;
  mean_packets : float;
  pkt_bytes : int;
  arrival_rate_per_sec : float;
}

let default_spec =
  {
    num_flows = 500;
    key_space = 200;
    zipf_alpha = 1.1;
    mean_packets = 20.;
    pkt_bytes = 256;
    arrival_rate_per_sec = 50_000.;
  }

let flow_of_rank rank =
  (* Deterministic (src, dst) per popularity rank; distinct ports per
     rank keep five-tuples unique. *)
  Flow.make
    ~src:(Ipv4_addr.host ~subnet:1 rank)
    ~dst:(Ipv4_addr.host ~subnet:2 rank)
    ~src_port:(1024 + (rank land 0xfff))
    ~dst_port:80 ()

let generate ~rng spec =
  if spec.num_flows <= 0 then invalid_arg "Flowgen.generate";
  let zipf = Stats.Dist.zipf ~n:spec.key_space ~alpha:spec.zipf_alpha in
  (* Pareto with shape 1.4 and mean m has scale m * (shape-1)/shape. *)
  let shape = 1.4 in
  let scale = spec.mean_packets *. (shape -. 1.) /. shape in
  let time = ref 0. in
  List.init spec.num_flows (fun _ ->
      let gap = Stats.Dist.exponential rng ~rate:spec.arrival_rate_per_sec in
      time := !time +. gap;
      let rank = Stats.Dist.zipf_draw rng zipf in
      let packets = max 1 (int_of_float (Stats.Dist.pareto rng ~shape ~scale)) in
      {
        flow = flow_of_rank rank;
        packets;
        pkt_bytes = spec.pkt_bytes;
        start = int_of_float (!time *. 1e12);
        rank;
      })

let true_packet_counts flows =
  let table = Hashtbl.create 64 in
  List.iter
    (fun fd ->
      let key = Flow.hash_addresses fd.flow in
      let prev = Option.value (Hashtbl.find_opt table key) ~default:0 in
      Hashtbl.replace table key (prev + fd.packets))
    flows;
  table

let replay ~sched ~flows ~rate_pps_per_flow ~send () =
  List.map
    (fun (fd : flow_desc) ->
      let gap_gbps =
        (* Convert a per-flow packet rate into the gbps knob cbr wants. *)
        float_of_int (fd.pkt_bytes * 8) *. rate_pps_per_flow /. 1e9
      in
      let t =
        Traffic.cbr ~sched ~flow:fd.flow ~pkt_bytes:fd.pkt_bytes ~rate_gbps:gap_gbps
          ~start:fd.start ~send ()
      in
      (* Bound the flow's packet count by stopping it after its quota:
         the simplest faithful cut-off is a scheduled stop. *)
      let duration =
        int_of_float (float_of_int fd.packets /. rate_pps_per_flow *. 1e12)
      in
      Eventsim.Scheduler.post sched
        ~at:(fd.start + duration)
        (fun () -> Traffic.stop_now t);
      t)
    flows
