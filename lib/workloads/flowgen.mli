(** Synthetic flow populations for measurement experiments: Zipf
    popularity over keys, Pareto sizes, Poisson arrivals — the standard
    shape for heavy-hitter / sketch workloads.

    Two consumption styles share one draw order ((gap, rank, size) per
    flow, from the caller's seeded RNG):

    - {!generate} materializes the population as a list — fine up to
      thousands of flows;
    - {!stream} / {!install} draw flows lazily, one at a time, so a
      million-flow Zipf mix costs O(1) live words (plus O(live flows)
      while running): nothing per-flow is retained after the flow
      finishes. *)

type flow_desc = {
  flow : Netcore.Flow.t;
  packets : int;  (** flow length in packets *)
  pkt_bytes : int;
  start : Eventsim.Sim_time.t;
  rank : int;  (** popularity rank of the flow's key (1 = hottest) *)
}

type spec = {
  num_flows : int;
  key_space : int;  (** distinct (src,dst) pairs *)
  zipf_alpha : float;
  mean_packets : float;  (** mean flow length (Pareto, shape 1.4) *)
  max_packets : int;
      (** cap on a single flow's drawn length ([max_int] = uncapped);
          large-topology runs cap the Pareto tail so every flow
          completes within the simulated horizon *)
  pkt_bytes : int;
  arrival_rate_per_sec : float;  (** Poisson flow arrivals *)
}

val default_spec : spec

val flow_of_rank : int -> Netcore.Flow.t
(** The default rank -> five-tuple mapping (subnet 1 -> subnet 2,
    distinct ports per rank). Override it in {!stream}/{!install} to
    embed topology-aware sources and destinations. *)

val generate : rng:Stats.Rng.t -> spec -> flow_desc list
(** Flows ordered by start time. Materializes the whole population —
    implemented as {!stream} collected into a list, so the draws are
    bit-identical to the streaming forms for the same seed. *)

val stream :
  rng:Stats.Rng.t ->
  ?flow_of_rank:(int -> Netcore.Flow.t) ->
  spec ->
  f:(flow_desc -> unit) ->
  unit
(** Visit the population in start-time order without retaining it:
    [f] sees each descriptor exactly once, then it is garbage. *)

val true_packet_counts : flow_desc list -> (int, int) Hashtbl.t
(** Key (packed flow hash) -> total packets; ground truth for sketch
    accuracy experiments. *)

(** Counters of one {!install}ed source; all monotone except
    [live_flows]. Read them during or after the run. *)
type source_stats = {
  mutable flows_started : int;
  mutable flows_finished : int;
  mutable live_flows : int;  (** started, last packet not yet emitted *)
  mutable peak_live_flows : int;
  mutable packets_sent : int;
  mutable bytes_sent : int;
  mutable stopped : bool;
}

val halt : source_stats -> unit
(** Stop the source: no further arrivals; each live flow ends at its
    next emission slot (counted as finished). *)

val install :
  sched:Eventsim.Scheduler.t ->
  rng:Stats.Rng.t ->
  ?flow_of_rank:(int -> Netcore.Flow.t) ->
  ?start:Eventsim.Sim_time.t ->
  ?arrival_stop:Eventsim.Sim_time.t ->
  rate_pps_per_flow:float ->
  ?on_flow:(flow_desc -> unit) ->
  ?on_flow_end:(flow_desc -> unit) ->
  spec ->
  send:(Netcore.Packet.t -> unit) ->
  unit ->
  source_stats
(** Run the population live against a scheduler, streaming: flow [i+1]
    is drawn only when flow [i] arrives, and each live flow is one
    pending emission event emitting its packets [rate_pps_per_flow]
    apart. Memory is O(live flows), never O([spec.num_flows]).

    Each emission gap carries a deterministic picosecond-scale offset
    derived from the flow's drawn arrival time and the packet index,
    so large populations sharing one exact rate do not produce
    repeated same-instant arrival ties at a switch — the
    no-simultaneous-arrivals precondition [Parsim]'s cross-shard
    determinism rests on. The offset is independent of the shard
    layout, and at most 4 ns per gap.

    Arrivals at or after [arrival_stop] end the arrival chain (draw
    times never decrease, so nothing later could start either);
    started flows still emit to natural completion, which keeps flow
    lifetimes independent of the cutoff. [on_flow] / [on_flow_end]
    fire at flow start / completion — the hooks live-flow accounting
    and concurrency sampling plug into. *)

val replay :
  sched:Eventsim.Scheduler.t ->
  flows:flow_desc list ->
  rate_pps_per_flow:float ->
  send:(Netcore.Packet.t -> unit) ->
  unit ->
  Traffic.t list
(** Start a CBR-ish sub-source per flow emitting its packets. *)
