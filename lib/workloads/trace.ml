module Packet = Netcore.Packet
module Flow = Netcore.Flow

type entry = {
  at : Eventsim.Sim_time.t;
  port : int;
  flow : Flow.t;
  pkt_bytes : int;
}

type t = { mutable rev_entries : entry list; mutable len : int; mutable last : int }

let create () = { rev_entries = []; len = 0; last = 0 }
let length t = t.len
let entries t = List.rev t.rev_entries

let add t entry =
  if entry.at < t.last then invalid_arg "Trace.add: entries must be time-ordered";
  t.rev_entries <- entry :: t.rev_entries;
  t.len <- t.len + 1;
  t.last <- entry.at

let record t ~sched ~port pkt =
  match Packet.flow pkt with
  | None -> ()
  | Some flow ->
      add t { at = Eventsim.Scheduler.now sched; port; flow; pkt_bytes = Packet.len pkt }

let duration t = t.last

let packet_of entry =
  let payload_len =
    max 0 (entry.pkt_bytes - Netcore.Ethernet.size - Netcore.Ipv4.size - Netcore.Udp.size)
  in
  Packet.udp_packet ~src:entry.flow.Flow.src ~dst:entry.flow.Flow.dst
    ~src_port:entry.flow.Flow.src_port ~dst_port:entry.flow.Flow.dst_port ~payload_len ()

let replay t ~sched ?(time_offset = 0) ~send () =
  let scheduled = ref 0 in
  List.iter
    (fun entry ->
      incr scheduled;
      Eventsim.Scheduler.post sched ~at:(entry.at + time_offset) (fun () ->
          send ~port:entry.port (packet_of entry)))
    (entries t);
  !scheduled

let total_bytes t = List.fold_left (fun acc e -> acc + e.pkt_bytes) 0 t.rev_entries
