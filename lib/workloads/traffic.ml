module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Packet = Netcore.Packet
module Flow = Netcore.Flow

type t = { mutable sent : int; mutable sent_bytes : int; mutable stopped : bool }

let sent t = t.sent
let sent_bytes t = t.sent_bytes
let stop_now t = t.stopped <- true

let make_packet ~sched ~flow ~pkt_bytes =
  let payload_len =
    max 0 (pkt_bytes - Netcore.Ethernet.size - Netcore.Ipv4.size - Netcore.Udp.size)
  in
  Packet.udp_packet ~created_at:(Scheduler.now sched) ~src:flow.Flow.src ~dst:flow.Flow.dst
    ~src_port:flow.Flow.src_port ~dst_port:flow.Flow.dst_port ~payload_len ()

let emit t ~sched ~flow ~pkt_bytes send =
  let pkt = make_packet ~sched ~flow ~pkt_bytes in
  t.sent <- t.sent + 1;
  t.sent_bytes <- t.sent_bytes + Packet.len pkt;
  send pkt

let within stop ~sched = match stop with None -> true | Some s -> Scheduler.now sched < s

let cbr ~sched ~flow ~pkt_bytes ~rate_gbps ?(start = Sim_time.zero) ?stop ?jitter ~send () =
  let t = { sent = 0; sent_bytes = 0; stopped = false } in
  let gap = Sim_time.tx_time ~bytes:pkt_bytes ~gbps:rate_gbps in
  let rec step () =
    if (not t.stopped) && within stop ~sched then begin
      let delay =
        match jitter with
        | None -> 0
        | Some (rng, j) -> if j > 0 then Stats.Rng.int rng j else 0
      in
      Scheduler.post_after ~cls:"workload" sched ~delay (fun () ->
          if (not t.stopped) && within stop ~sched then
            emit t ~sched ~flow ~pkt_bytes send);
      Scheduler.post_after ~cls:"workload" sched ~delay:gap step
    end
  in
  Scheduler.post ~cls:"workload" sched ~at:(max start (Scheduler.now sched)) step;
  t

let poisson ~sched ~rng ~flow ~pkt_bytes ~rate_pps ?(start = Sim_time.zero) ?stop ~send () =
  if rate_pps <= 0. then invalid_arg "Traffic.poisson: rate must be positive";
  let t = { sent = 0; sent_bytes = 0; stopped = false } in
  let rec step () =
    if (not t.stopped) && within stop ~sched then begin
      emit t ~sched ~flow ~pkt_bytes send;
      let gap_sec = Stats.Dist.exponential rng ~rate:rate_pps in
      let gap = max 1 (int_of_float (gap_sec *. 1e12)) in
      Scheduler.post_after ~cls:"workload" sched ~delay:gap step
    end
  in
  Scheduler.post ~cls:"workload" sched ~at:(max start (Scheduler.now sched)) step;
  t

let on_off ~sched ~rng ~flow ~pkt_bytes ~burst_rate_gbps ~on_time ~off_time
    ?(start = Sim_time.zero) ?stop ?(exponential_gaps = false) ~send () =
  if on_time <= 0 || off_time < 0 then invalid_arg "Traffic.on_off: bad durations";
  let t = { sent = 0; sent_bytes = 0; stopped = false } in
  let gap = Sim_time.tx_time ~bytes:pkt_bytes ~gbps:burst_rate_gbps in
  let duration mean =
    if exponential_gaps then
      max 1 (int_of_float (Stats.Dist.exponential rng ~rate:(1e12 /. float_of_int mean) *. 1e12))
    else mean
  in
  let rec on_phase until =
    if (not t.stopped) && within stop ~sched then
      if Scheduler.now sched < until then begin
        emit t ~sched ~flow ~pkt_bytes send;
        Scheduler.post_after ~cls:"workload" sched ~delay:gap (fun () -> on_phase until)
      end
      else
        Scheduler.post_after ~cls:"workload" sched ~delay:(duration off_time) (fun () ->
            start_burst ())
  and start_burst () =
    if (not t.stopped) && within stop ~sched then
      on_phase (Scheduler.now sched + duration on_time)
  in
  Scheduler.post ~cls:"workload" sched ~at:(max start (Scheduler.now sched)) start_burst;
  t

let burst_once ~sched ~flow ~pkt_bytes ~count ~rate_gbps ~at ~send () =
  let t = { sent = 0; sent_bytes = 0; stopped = false } in
  let gap = Sim_time.tx_time ~bytes:pkt_bytes ~gbps:rate_gbps in
  let rec step remaining =
    if (not t.stopped) && remaining > 0 then begin
      emit t ~sched ~flow ~pkt_bytes send;
      Scheduler.post_after ~cls:"workload" sched ~delay:gap (fun () -> step (remaining - 1))
    end
  in
  Scheduler.post ~cls:"workload" sched ~at (fun () -> step count);
  t
