(** Traffic sources.

    Each source repeatedly builds a packet for a given five-tuple and
    hands it to a [send] callback on a schedule; the callback typically
    wraps [Host.send] or [Event_switch.inject]. Sources stop at
    [stop] time (exclusive) and count what they sent. *)

type t

val sent : t -> int
val sent_bytes : t -> int
val stop_now : t -> unit

val make_packet :
  sched:Eventsim.Scheduler.t -> flow:Netcore.Flow.t -> pkt_bytes:int -> Netcore.Packet.t
(** One UDP packet for the five-tuple, [pkt_bytes] on the wire
    (headers + payload), stamped [created_at = now]. The building block
    every source here shares; exposed for streaming generators that
    schedule their own emissions. *)

val cbr :
  sched:Eventsim.Scheduler.t ->
  flow:Netcore.Flow.t ->
  pkt_bytes:int ->
  rate_gbps:float ->
  ?start:Eventsim.Sim_time.t ->
  ?stop:Eventsim.Sim_time.t ->
  ?jitter:(Stats.Rng.t * Eventsim.Sim_time.t) ->
  send:(Netcore.Packet.t -> unit) ->
  unit ->
  t
(** Constant bit rate: one [pkt_bytes] packet every
    [pkt_bytes * 8 / rate] seconds; optional uniform send jitter. *)

val poisson :
  sched:Eventsim.Scheduler.t ->
  rng:Stats.Rng.t ->
  flow:Netcore.Flow.t ->
  pkt_bytes:int ->
  rate_pps:float ->
  ?start:Eventsim.Sim_time.t ->
  ?stop:Eventsim.Sim_time.t ->
  send:(Netcore.Packet.t -> unit) ->
  unit ->
  t

val on_off :
  sched:Eventsim.Scheduler.t ->
  rng:Stats.Rng.t ->
  flow:Netcore.Flow.t ->
  pkt_bytes:int ->
  burst_rate_gbps:float ->
  on_time:Eventsim.Sim_time.t ->
  off_time:Eventsim.Sim_time.t ->
  ?start:Eventsim.Sim_time.t ->
  ?stop:Eventsim.Sim_time.t ->
  ?exponential_gaps:bool ->
  send:(Netcore.Packet.t -> unit) ->
  unit ->
  t
(** On/off (microburst-shaped) source: sends at [burst_rate_gbps] for
    [on_time], silent for [off_time], repeats. With
    [exponential_gaps], on/off durations are exponential with those
    means. *)

val burst_once :
  sched:Eventsim.Scheduler.t ->
  flow:Netcore.Flow.t ->
  pkt_bytes:int ->
  count:int ->
  rate_gbps:float ->
  at:Eventsim.Sim_time.t ->
  send:(Netcore.Packet.t -> unit) ->
  unit ->
  t
(** A single back-to-back burst of [count] packets starting at [at]. *)
