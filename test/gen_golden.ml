(* Regenerate the canonical golden traces in test/golden/.

   Usage: dune exec test/gen_golden.exe -- [output-dir]

   The canon is defined as the SEQUENTIAL run under the HEAP backend —
   the simplest execution mode, one scheduler, no channels — of the
   E23 golden scenario for each golden seed. Every other mode (wheel
   backend, sharded runs) is tested against these files byte-for-byte,
   so regenerating them is only legitimate when the simulated behaviour
   intentionally changed. *)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/golden" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let topo = Experiments.E23_scale.topo () in
  List.iter
    (fun seed ->
      let cfg =
        Experiments.E23_scale.golden_scenario ~shards:1 ~backend:Eventsim.Sched_backend.Heap
          ~seed ()
      in
      let r = Parsim.run cfg topo in
      let path = Filename.concat dir (Experiments.E23_scale.golden_file seed) in
      let oc = open_out path in
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        r.Parsim.trace;
      close_out oc;
      Printf.printf "wrote %s (%d trace lines, %d events)\n" path (List.length r.Parsim.trace)
        r.Parsim.events)
    Experiments.E23_scale.golden_seeds;
  (* E24: the stateful (EFSM) apps' golden digests — per app, one trace
     digest and one metrics digest (which embeds pisa.efsm.state_hash,
     so the whole flow-state evolution is pinned). Canon as above:
     sequential under the heap backend. *)
  List.iter
    (fun seed ->
      let digests =
        Experiments.E24_efsm.golden_digests ~backend:Eventsim.Sched_backend.Heap ~shards:1
          ~seed ()
      in
      let path = Filename.concat dir (Experiments.E24_efsm.golden_file seed) in
      let oc = open_out path in
      List.iter (fun (label, hex) -> Printf.fprintf oc "%s %s\n" label hex) digests;
      close_out oc;
      Printf.printf "wrote %s (%d digests)\n" path (List.length digests))
    Experiments.E24_efsm.golden_seeds;
  (* E25: the CEP detector apps' golden digests — per leg (syn flood,
     burst forensics, chaos) one trace digest and one metrics digest.
     Canon as above: sequential under the heap backend. *)
  List.iter
    (fun seed ->
      let digests =
        Experiments.E25_cep.golden_digests ~backend:Eventsim.Sched_backend.Heap ~shards:1
          ~seed ()
      in
      let path = Filename.concat dir (Experiments.E25_cep.golden_file seed) in
      let oc = open_out path in
      List.iter (fun (label, hex) -> Printf.fprintf oc "%s %s\n" label hex) digests;
      close_out oc;
      Printf.printf "wrote %s (%d digests)\n" path (List.length digests))
    Experiments.E25_cep.golden_seeds;
  (* E26: the consistent-update protocol — per leg (clean storm, chaos)
     one trace digest and one metrics digest; the metrics digest embeds
     the netupd op ledger and the mixed-version counters, so a protocol
     change that lets a packet observe two versions (or unbalances the
     books) fails the pin. Canon as above: sequential under the heap
     backend. *)
  List.iter
    (fun seed ->
      let digests =
        Experiments.E26_netupd.golden_digests ~backend:Eventsim.Sched_backend.Heap ~shards:1
          ~seed ()
      in
      let path = Filename.concat dir (Experiments.E26_netupd.golden_file seed) in
      let oc = open_out path in
      List.iter (fun (label, hex) -> Printf.fprintf oc "%s %s\n" label hex) digests;
      close_out oc;
      Printf.printf "wrote %s (%d digests)\n" path (List.length digests))
    Experiments.E26_netupd.golden_seeds
