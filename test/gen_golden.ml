(* Regenerate the canonical golden traces in test/golden/.

   Usage: dune exec test/gen_golden.exe -- [output-dir]

   The canon is defined as the SEQUENTIAL run under the HEAP backend —
   the simplest execution mode, one scheduler, no channels — of the
   E23 golden scenario for each golden seed. Every other mode (wheel
   backend, sharded runs) is tested against these files byte-for-byte,
   so regenerating them is only legitimate when the simulated behaviour
   intentionally changed. *)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/golden" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  (* E23: the k=4 fat-tree forwarding scenario — an MD5 of the merged
     trace plus one of the merged metrics (replacing the old ~4700-line
     committed trace files with the same pinning power). *)
  List.iter
    (fun seed ->
      let digests =
        Experiments.E23_scale.golden_digests ~backend:Eventsim.Sched_backend.Heap ~shards:1
          ~seed ()
      in
      let path = Filename.concat dir (Experiments.E23_scale.golden_file seed) in
      let oc = open_out path in
      List.iter (fun (label, hex) -> Printf.fprintf oc "%s %s\n" label hex) digests;
      close_out oc;
      Printf.printf "wrote %s (%d digests)\n" path (List.length digests))
    Experiments.E23_scale.golden_seeds;
  (* E24: the stateful (EFSM) apps' golden digests — per app, one trace
     digest and one metrics digest (which embeds pisa.efsm.state_hash,
     so the whole flow-state evolution is pinned). Canon as above:
     sequential under the heap backend. *)
  List.iter
    (fun seed ->
      let digests =
        Experiments.E24_efsm.golden_digests ~backend:Eventsim.Sched_backend.Heap ~shards:1
          ~seed ()
      in
      let path = Filename.concat dir (Experiments.E24_efsm.golden_file seed) in
      let oc = open_out path in
      List.iter (fun (label, hex) -> Printf.fprintf oc "%s %s\n" label hex) digests;
      close_out oc;
      Printf.printf "wrote %s (%d digests)\n" path (List.length digests))
    Experiments.E24_efsm.golden_seeds;
  (* E25: the CEP detector apps' golden digests — per leg (syn flood,
     burst forensics, chaos) one trace digest and one metrics digest.
     Canon as above: sequential under the heap backend. *)
  List.iter
    (fun seed ->
      let digests =
        Experiments.E25_cep.golden_digests ~backend:Eventsim.Sched_backend.Heap ~shards:1
          ~seed ()
      in
      let path = Filename.concat dir (Experiments.E25_cep.golden_file seed) in
      let oc = open_out path in
      List.iter (fun (label, hex) -> Printf.fprintf oc "%s %s\n" label hex) digests;
      close_out oc;
      Printf.printf "wrote %s (%d digests)\n" path (List.length digests))
    Experiments.E25_cep.golden_seeds;
  (* E26: the consistent-update protocol — per leg (clean storm, chaos)
     one trace digest and one metrics digest; the metrics digest embeds
     the netupd op ledger and the mixed-version counters, so a protocol
     change that lets a packet observe two versions (or unbalances the
     books) fails the pin. Canon as above: sequential under the heap
     backend. *)
  List.iter
    (fun seed ->
      let digests =
        Experiments.E26_netupd.golden_digests ~backend:Eventsim.Sched_backend.Heap ~shards:1
          ~seed ()
      in
      let path = Filename.concat dir (Experiments.E26_netupd.golden_file seed) in
      let oc = open_out path in
      List.iter (fun (label, hex) -> Printf.fprintf oc "%s %s\n" label hex) digests;
      close_out oc;
      Printf.printf "wrote %s (%d digests)\n" path (List.length digests))
    Experiments.E26_netupd.golden_seeds;
  (* E27: datacenter scale — the k=16 streaming-mix scenario pinned by
     its order-independent arrival digest plus the merged metrics MD5;
     the raw trace (hundreds of thousands of arrivals) is never
     materialized. Canon as above: sequential under the heap backend. *)
  List.iter
    (fun seed ->
      let digests =
        Experiments.E27_dcscale.golden_digests ~backend:Eventsim.Sched_backend.Heap ~shards:1
          ~seed ()
      in
      let path = Filename.concat dir (Experiments.E27_dcscale.golden_file seed) in
      let oc = open_out path in
      List.iter (fun (label, hex) -> Printf.fprintf oc "%s %s\n" label hex) digests;
      close_out oc;
      Printf.printf "wrote %s (%d digests)\n" path (List.length digests))
    Experiments.E27_dcscale.golden_seeds
