(* Behavioural tests for the data-plane applications. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Packet = Netcore.Packet
module Flow = Netcore.Flow
module Ipv4_addr = Netcore.Ipv4_addr
module Arch = Evcore.Arch
module Program = Evcore.Program
module Event_switch = Evcore.Event_switch
module Control_plane = Evcore.Control_plane
module Traffic = Workloads.Traffic

let mk_flow ?(dst = 1) i =
  Flow.make
    ~src:(Ipv4_addr.host ~subnet:1 i)
    ~dst:(Ipv4_addr.host ~subnet:2 dst)
    ~src_port:(1000 + i) ~dst_port:80 ()

let mk_switch ?(arch = Arch.event_pisa_full) ?tm_config ~sched spec =
  let config = Event_switch.default_config arch in
  let config =
    match tm_config with
    | None -> config
    | Some tm_config -> { config with Event_switch.tm_config }
  in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  for p = 0 to 3 do
    Event_switch.set_port_tx sw ~port:p (fun _ -> ())
  done;
  sw

(* --- Microburst --- *)

let test_microburst_detects_culprit () =
  let sched = Scheduler.create () in
  let spec, det = Apps.Microburst.program ~threshold_bytes:20_000 ~out_port:(fun _ -> 3) () in
  let sw = mk_switch ~sched spec in
  (* Two ports of the same flow at 10G each into one 10G output. *)
  List.iter
    (fun port ->
      ignore
        (Traffic.burst_once ~sched ~flow:(mk_flow 9) ~pkt_bytes:1000 ~count:30 ~rate_gbps:10.
           ~at:(Sim_time.us 10)
           ~send:(fun pkt -> Event_switch.inject sw ~port pkt)
           ()))
    [ 0; 1 ];
  Scheduler.run sched;
  Alcotest.(check int) "one culprit" 1 (Apps.Microburst.detection_count det);
  let d = List.hd (Apps.Microburst.detections det) in
  Alcotest.(check bool) "over threshold" true (d.Apps.Microburst.occupancy_bytes > 20_000)

let test_microburst_no_false_positive () =
  let sched = Scheduler.create () in
  let spec, det = Apps.Microburst.program ~threshold_bytes:20_000 ~out_port:(fun _ -> 3) () in
  let sw = mk_switch ~sched spec in
  (* Light traffic never accumulates 20KB for one flow. *)
  for i = 0 to 3 do
    ignore
      (Traffic.cbr ~sched ~flow:(mk_flow i) ~pkt_bytes:500 ~rate_gbps:1. ~stop:(Sim_time.us 500)
         ~send:(fun pkt -> Event_switch.inject sw ~port:(i mod 3) pkt)
         ())
  done;
  Scheduler.run sched;
  Alcotest.(check int) "no detections" 0 (Apps.Microburst.detection_count det)

let test_microburst_state_modes () =
  (* Aggregated mode charges 3x the multiport state (Figure 3). *)
  let bits mode =
    let sched = Scheduler.create () in
    let spec, det = Apps.Microburst.program ~slots:256 ~threshold_bytes:1 ~out_port:(fun _ -> 0) () in
    let config = Event_switch.default_config Arch.event_pisa_full in
    let config = { config with Event_switch.state_mode = mode } in
    ignore (Event_switch.create ~sched ~config ~program:spec ());
    Apps.Microburst.state_bits det
  in
  Alcotest.(check int) "multiport" (256 * 32) (bits Devents.Shared_register.Multiport);
  Alcotest.(check int) "aggregated 3x" (3 * 256 * 32) (bits Devents.Shared_register.Aggregated)

(* --- Snappy --- *)

let test_snappy_state_exceeds_event_driven () =
  let sched = Scheduler.create () in
  let spec, det = Apps.Snappy.program ~threshold_bytes:10_000 ~out_port:(fun _ -> 3) () in
  let sw = mk_switch ~arch:Arch.baseline_psa ~sched spec in
  Event_switch.inject sw ~port:0
    (Packet.udp_packet ~src:(Ipv4_addr.host ~subnet:1 1) ~dst:(Ipv4_addr.host ~subnet:2 1)
       ~src_port:1 ~dst_port:2 ~payload_len:100 ());
  Scheduler.run sched;
  (* 8 snapshots x (2 x 512 x 32) + ring bookkeeping. *)
  Alcotest.(check bool) "at least 4x the single array" true
    (Apps.Snappy.state_bits det >= 4 * 1024 * 32)

let test_snappy_detects_big_burst () =
  let sched = Scheduler.create () in
  let spec, det = Apps.Snappy.program ~threshold_bytes:20_000 ~out_port:(fun _ -> 3) () in
  let sw = mk_switch ~arch:Arch.baseline_psa ~sched spec in
  List.iter
    (fun port ->
      ignore
        (Traffic.burst_once ~sched ~flow:(mk_flow 9) ~pkt_bytes:1000 ~count:40 ~rate_gbps:10.
           ~at:(Sim_time.us 10)
           ~send:(fun pkt -> Event_switch.inject sw ~port pkt)
           ()))
    [ 0; 1 ];
  Scheduler.run sched;
  Alcotest.(check bool) "detected" true (Apps.Snappy.detection_count det >= 1)

(* --- CMS reset --- *)

let drive_heavy_flow sched sw =
  ignore
    (Traffic.cbr ~sched ~flow:(mk_flow 1) ~pkt_bytes:200 ~rate_gbps:2. ~stop:(Sim_time.us 900)
       ~send:(fun pkt -> Event_switch.inject sw ~port:0 pkt)
       ())

let test_cms_timer_reset_reports_windows () =
  let sched = Scheduler.create () in
  let spec, app =
    Apps.Cms_reset.program ~mode:Apps.Cms_reset.Timer_reset ~window:(Sim_time.us 200)
      ~threshold_packets:50 ~out_port:(fun _ -> 3) ()
  in
  let sw = mk_switch ~sched spec in
  drive_heavy_flow sched sw;
  Scheduler.run ~until:(Sim_time.ms 1) sched;
  Alcotest.(check int) "five windows" 5 (Apps.Cms_reset.resets app);
  let reports = Apps.Cms_reset.reports app in
  Alcotest.(check int) "five reports" 5 (List.length reports);
  (* The 2 Gb/s flow (1250 pkt/200us window) is a heavy hitter in every
     full window. *)
  List.iter
    (fun (r : Apps.Cms_reset.window_report) ->
      Alcotest.(check bool)
        (Printf.sprintf "window %d has the heavy flow" r.Apps.Cms_reset.window_index)
        true
        (List.length r.Apps.Cms_reset.heavy_hitters >= 1))
    (List.filteri (fun i _ -> i < 4) reports)

let test_cms_cp_reset_lags () =
  let sched = Scheduler.create () in
  let cp = Control_plane.create ~sched ~rng:(Stats.Rng.create ~seed:3) () in
  let spec, app =
    Apps.Cms_reset.program ~mode:(Apps.Cms_reset.Control_plane_reset cp)
      ~window:(Sim_time.us 500) ~threshold_packets:50 ~out_port:(fun _ -> 3) ()
  in
  let sw = mk_switch ~arch:Arch.baseline_psa ~sched spec in
  drive_heavy_flow sched sw;
  Scheduler.run ~until:(Sim_time.ms 3) sched;
  Alcotest.(check bool) "resets happened" true (Apps.Cms_reset.resets app >= 4);
  let lag = Apps.Cms_reset.reset_lag app in
  Alcotest.(check bool) "lag at least the channel latency" true
    (Stats.Welford.mean lag >= 200_000. (* ns *));
  Alcotest.(check bool) "cp ops counted" true (Control_plane.ops cp >= 4)

(* --- Flow rate --- *)

let test_flow_rate_estimate () =
  let sched = Scheduler.create () in
  let spec, app =
    Apps.Flow_rate.program ~slots:64 ~window_slices:4 ~slice:(Sim_time.us 100)
      ~out_port:(fun _ -> 3) ()
  in
  let sw = mk_switch ~sched spec in
  let flow = mk_flow 2 in
  ignore
    (Traffic.cbr ~sched ~flow ~pkt_bytes:1000 ~rate_gbps:2. ~stop:(Sim_time.ms 1)
       ~send:(fun pkt -> Event_switch.inject sw ~port:0 pkt)
       ());
  Scheduler.run ~until:(Sim_time.ms 1) sched;
  let slot = Netcore.Hashes.fold_range (Flow.hash_addresses flow) 64 in
  let est = Apps.Flow_rate.estimate_bps app ~flow_slot:slot *. 8. /. 1e9 in
  Alcotest.(check (float 0.1)) "2 Gb/s estimated" 2.0 est;
  Alcotest.(check bool) "rotations happened" true (Apps.Flow_rate.rotations app >= 9)

(* --- AQM --- *)

let congest sched sw =
  List.iteri
    (fun i rate_gbps ->
      ignore
        (Traffic.cbr ~sched ~flow:(mk_flow i) ~pkt_bytes:1000 ~rate_gbps ~stop:(Sim_time.ms 1)
           ~send:(fun pkt -> Event_switch.inject sw ~port:(i mod 3) pkt)
           ()))
    [ 2.; 4.; 8. ]

let test_aqm_taildrop_overflow_only () =
  let sched = Scheduler.create () in
  let spec, app =
    Apps.Aqm.program ~policy:Apps.Aqm.Taildrop ~buffer_bytes:100_000 ~out_port:(fun _ -> 3) ()
  in
  let tm_config =
    { Tmgr.Traffic_manager.default_config with Tmgr.Traffic_manager.buffer_bytes = 100_000 }
  in
  let sw = mk_switch ~tm_config ~sched spec in
  congest sched sw;
  Scheduler.run ~until:(Sim_time.ms 1) sched;
  Alcotest.(check int) "no early drops" 0 (Apps.Aqm.early_drops app);
  Alcotest.(check bool) "tail drops happened" true
    (Tmgr.Traffic_manager.drops (Event_switch.tm sw) > 0)

let test_aqm_fred_limits_hog () =
  let sched = Scheduler.create () in
  let spec, app =
    Apps.Aqm.program
      ~policy:(Apps.Aqm.Fred { multiplier = 0.6 })
      ~buffer_bytes:100_000 ~out_port:(fun _ -> 3) ()
  in
  let tm_config =
    { Tmgr.Traffic_manager.default_config with Tmgr.Traffic_manager.buffer_bytes = 100_000 }
  in
  let sw = mk_switch ~tm_config ~sched spec in
  congest sched sw;
  Scheduler.run ~until:(Sim_time.ms 1) sched;
  Alcotest.(check bool) "early drops happened" true (Apps.Aqm.early_drops app > 0);
  Alcotest.(check int) "no tail drops" 0 (Tmgr.Traffic_manager.drops (Event_switch.tm sw))

let test_aqm_red_marks_instead_of_dropping () =
  let sched = Scheduler.create () in
  let spec, app =
    Apps.Aqm.program ~mark_instead_of_drop:true
      ~policy:(Apps.Aqm.Red { min_th = 5_000; max_th = 30_000; max_p = 0.5; weight = 0.1 })
      ~buffer_bytes:100_000 ~out_port:(fun _ -> 3) ()
  in
  let sw = mk_switch ~sched spec in
  congest sched sw;
  Scheduler.run ~until:(Sim_time.ms 1) sched;
  Alcotest.(check bool) "marks happened" true (Apps.Aqm.ecn_marks app > 0);
  Alcotest.(check int) "no early drops in mark mode" 0 (Apps.Aqm.early_drops app)

let test_aqm_active_flow_count () =
  let sched = Scheduler.create () in
  let spec, app =
    Apps.Aqm.program ~policy:Apps.Aqm.Taildrop ~buffer_bytes:100_000 ~out_port:(fun _ -> 3) ()
  in
  let sw = mk_switch ~sched spec in
  congest sched sw;
  (* Peek at the active-flow estimate while the buffer is loaded. *)
  let active_mid = ref 0 in
  ignore
    (Scheduler.schedule sched ~at:(Sim_time.us 500) (fun () ->
         active_mid := Apps.Aqm.active_flows app));
  (* Leave enough time after the sources stop for the ~500KB backlog
     to drain at 10 Gb/s. *)
  Scheduler.run ~until:(Sim_time.ms 2) sched;
  Alcotest.(check int) "three flows active mid-run" 3 !active_mid;
  Alcotest.(check int) "zero active after drain" 0 (Apps.Aqm.active_flows app)

(* --- Policer --- *)

let test_policer_under_rate_passes_everything () =
  let sched = Scheduler.create () in
  let spec, app =
    Apps.Policer.program
      ~mode:(Apps.Policer.Timer_bucket { refill_period = Sim_time.us 10 })
      ~cir_bytes_per_sec:250_000_000. (* 2 Gb/s *)
      ~burst_bytes:64_000 ~out_port:(fun _ -> 3) ()
  in
  let sw = mk_switch ~sched spec in
  let src =
    Traffic.cbr ~sched ~flow:(mk_flow 1) ~pkt_bytes:1000 ~rate_gbps:1. ~stop:(Sim_time.ms 1)
      ~send:(fun pkt -> Event_switch.inject sw ~port:0 pkt)
      ()
  in
  Scheduler.run ~until:(Sim_time.ms 1) sched;
  Alcotest.(check int) "nothing dropped" (Traffic.sent_bytes src)
    (Apps.Policer.total_accepted_bytes app)

let test_policer_enforces_cir () =
  let sched = Scheduler.create () in
  let spec, app =
    Apps.Policer.program
      ~mode:(Apps.Policer.Timer_bucket { refill_period = Sim_time.us 10 })
      ~cir_bytes_per_sec:125_000_000. (* 1 Gb/s *)
      ~burst_bytes:16_000 ~out_port:(fun _ -> 3) ()
  in
  let sw = mk_switch ~sched spec in
  ignore
    (Traffic.cbr ~sched ~flow:(mk_flow 1) ~pkt_bytes:1000 ~rate_gbps:4. ~stop:(Sim_time.ms 2)
       ~send:(fun pkt -> Event_switch.inject sw ~port:0 pkt)
       ());
  Scheduler.run ~until:(Sim_time.ms 2) sched;
  let accepted_rate =
    float_of_int (Apps.Policer.total_accepted_bytes app) /. 2e-3
  in
  Alcotest.(check bool) "within 15% of CIR" true
    (Float.abs (accepted_rate -. 125e6) /. 125e6 < 0.15)

(* --- Fast reroute --- *)

let test_frr_event_driven_switchover () =
  let sched = Scheduler.create () in
  let network = Evcore.Network.create ~sched in
  let spec, app = Apps.Fast_reroute.program ~mode:Apps.Fast_reroute.Event_driven ~primary:1 ~backup:2 () in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let sw_a = Event_switch.create ~sched ~id:0 ~config ~program:spec () in
  let spec_b, _ = Apps.Fast_reroute.program ~mode:Apps.Fast_reroute.Event_driven ~primary:1 ~backup:2 () in
  let sw_b = Event_switch.create ~sched ~id:1 ~config ~program:spec_b () in
  let link = Evcore.Network.connect_switches network ~a:(sw_a, 1) ~b:(sw_b, 1) () in
  ignore (Evcore.Network.connect_switches network ~a:(sw_a, 2) ~b:(sw_b, 2) ());
  Event_switch.set_port_tx sw_a ~port:0 (fun _ -> ());
  Event_switch.set_port_tx sw_b ~port:0 (fun _ -> ());
  ignore (Scheduler.schedule sched ~at:(Sim_time.us 100) (fun () -> Tmgr.Link.fail link));
  ignore
    (Scheduler.schedule sched ~at:(Sim_time.us 200) (fun () ->
         Event_switch.inject sw_a ~port:0
           (Packet.udp_packet ~src:(Ipv4_addr.host ~subnet:1 1) ~dst:(Ipv4_addr.host ~subnet:2 1)
              ~src_port:1 ~dst_port:2 ~payload_len:100 ())));
  Scheduler.run sched;
  Alcotest.(check bool) "switched to backup" true (Apps.Fast_reroute.using_backup app);
  (* PHY detection delay is 10us. *)
  Alcotest.(check (option int)) "failover at fail+10us"
    (Some (Sim_time.us 110))
    (Apps.Fast_reroute.failover_time app);
  Alcotest.(check int) "packet took backup" 1 (Apps.Fast_reroute.switched_packets app)

let test_frr_failback () =
  let sched = Scheduler.create () in
  let network = Evcore.Network.create ~sched in
  let mk () = Apps.Fast_reroute.program ~mode:Apps.Fast_reroute.Event_driven ~primary:1 ~backup:2 () in
  let spec_a, app = mk () and spec_b, _ = mk () in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let sw_a = Event_switch.create ~sched ~id:0 ~config ~program:spec_a () in
  let sw_b = Event_switch.create ~sched ~id:1 ~config ~program:spec_b () in
  let link = Evcore.Network.connect_switches network ~a:(sw_a, 1) ~b:(sw_b, 1) () in
  ignore (Evcore.Network.connect_switches network ~a:(sw_a, 2) ~b:(sw_b, 2) ());
  ignore (Scheduler.schedule sched ~at:(Sim_time.us 100) (fun () -> Tmgr.Link.fail link));
  ignore (Scheduler.schedule sched ~at:(Sim_time.us 300) (fun () -> Tmgr.Link.restore link));
  Scheduler.run sched;
  Alcotest.(check bool) "back on primary" false (Apps.Fast_reroute.using_backup app);
  Alcotest.(check (option int)) "failback at restore+10us"
    (Some (Sim_time.us 310))
    (Apps.Fast_reroute.failback_time app)

(* --- Liveness --- *)

let test_liveness_stays_alive () =
  let sched = Scheduler.create () in
  let network = Evcore.Network.create ~sched in
  let mk id =
    let spec, app =
      Apps.Liveness.program
        ~mode:
          (Apps.Liveness.Event_driven
             { probe_period = Sim_time.us 50; check_period = Sim_time.us 50 })
        ~timeout:(Sim_time.us 150) ~neighbor_port:1 ~out_port:(fun _ -> 0) ()
    in
    let config = Event_switch.default_config Arch.event_pisa_full in
    (Event_switch.create ~sched ~id ~config ~program:spec (), app)
  in
  let sw_a, app_a = mk 0 in
  let sw_b, app_b = mk 1 in
  ignore (Evcore.Network.connect_switches network ~a:(sw_a, 1) ~b:(sw_b, 1) ());
  Event_switch.set_port_tx sw_a ~port:0 (fun _ -> ());
  Event_switch.set_port_tx sw_b ~port:0 (fun _ -> ());
  Scheduler.run ~until:(Sim_time.ms 2) sched;
  Alcotest.(check (option int)) "a never declares dead" None (Apps.Liveness.declared_dead_at app_a);
  Alcotest.(check (option int)) "b never declares dead" None (Apps.Liveness.declared_dead_at app_b);
  Alcotest.(check bool) "replies flowed" true (Apps.Liveness.replies_heard app_a > 30)

let test_liveness_detects_and_recovers () =
  let sched = Scheduler.create () in
  let network = Evcore.Network.create ~sched in
  let mk id =
    let spec, app =
      Apps.Liveness.program
        ~mode:
          (Apps.Liveness.Event_driven
             { probe_period = Sim_time.us 50; check_period = Sim_time.us 50 })
        ~timeout:(Sim_time.us 150) ~neighbor_port:1 ~out_port:(fun _ -> 0) ()
    in
    let config = Event_switch.default_config Arch.event_pisa_full in
    (Event_switch.create ~sched ~id ~config ~program:spec (), app)
  in
  let sw_a, app_a = mk 0 in
  let sw_b, _ = mk 1 in
  let link = Evcore.Network.connect_switches network ~a:(sw_a, 1) ~b:(sw_b, 1) () in
  Event_switch.set_port_tx sw_a ~port:0 (fun _ -> ());
  Event_switch.set_port_tx sw_b ~port:0 (fun _ -> ());
  ignore (Scheduler.schedule sched ~at:(Sim_time.ms 1) (fun () -> Tmgr.Link.fail link));
  ignore (Scheduler.schedule sched ~at:(Sim_time.ms 2) (fun () -> Tmgr.Link.restore link));
  Scheduler.run ~until:(Sim_time.ms 3) sched;
  (match Apps.Liveness.declared_dead_at app_a with
  | None -> Alcotest.fail "failure not detected"
  | Some t ->
      Alcotest.(check bool) "detected after failure" true (t > Sim_time.ms 1);
      Alcotest.(check bool) "detected within 2x timeout + checks" true
        (t - Sim_time.ms 1 <= Sim_time.us 400));
  Alcotest.(check bool) "recovery noticed" true
    (Apps.Liveness.declared_alive_at app_a <> None);
  Alcotest.(check bool) "monitor notified" true (Event_switch.notification_count sw_a >= 2)

(* --- WFQ --- *)

let test_wfq_weighted_shares () =
  let sched = Scheduler.create () in
  (* Flows hash to distinct slots; give slot-based weights 1 vs 3. *)
  let f1 = mk_flow 1 and f2 = mk_flow 2 in
  let slot f = Netcore.Hashes.fold_range (Flow.hash f) 64 in
  QCheck.assume (slot f1 <> slot f2);
  let w1 = 1 and w2 = 3 in
  let spec, _app =
    Apps.Wfq.program ~slots:64
      ~weight_of:(fun ~flow_slot -> if flow_slot = slot f2 then w2 else w1)
      ~out_port:(fun _ -> 3) ()
  in
  let tm_config =
    {
      Tmgr.Traffic_manager.default_config with
      Tmgr.Traffic_manager.policy = Tmgr.Traffic_manager.Pifo_sched;
      (* Rank-based PIFO eviction is the dropper; keep the byte pool
         non-binding so weighted loss (not blind tail drop) decides. *)
      pifo_capacity = 128;
      buffer_bytes = 4 * 1024 * 1024;
    }
  in
  let sw = mk_switch ~tm_config ~sched spec in
  let recv = Hashtbl.create 4 in
  Event_switch.set_port_tx sw ~port:3 (fun pkt ->
      match Packet.flow pkt with
      | Some f ->
          let k = f.Flow.src_port in
          Hashtbl.replace recv k (Packet.len pkt + Option.value (Hashtbl.find_opt recv k) ~default:0)
      | None -> ());
  (* Both flows offer 10 Gb/s into one 10 Gb/s port: 2x overload. *)
  List.iter
    (fun flow ->
      ignore
        (Traffic.cbr ~sched ~flow ~pkt_bytes:1000 ~rate_gbps:10. ~stop:(Sim_time.us 500)
           ~send:(fun pkt -> Event_switch.inject sw ~port:(flow.Flow.src_port mod 2) pkt)
           ()))
    [ f1; f2 ];
  Scheduler.run ~until:(Sim_time.us 500) sched;
  let got f = float_of_int (Option.value (Hashtbl.find_opt recv f.Flow.src_port) ~default:0) in
  let share = got f2 /. Float.max 1. (got f1) in
  Alcotest.(check bool)
    (Printf.sprintf "weighted share about 3 (got %.2f)" share)
    true
    (share > 2.6 && share < 3.4)

(* --- NetCache --- *)

let test_netcache_hits_after_promotion () =
  let sched = Scheduler.create () in
  let spec, cache =
    Apps.Netcache.program ~cache_size:8 ~promote_threshold:3 ~with_timers:true ~server_port:3
      ~client_port:(fun _ -> 0) ()
  in
  let sw = mk_switch ~sched spec in
  let to_server = ref 0 in
  Event_switch.set_port_tx sw ~port:3 (fun _ -> incr to_server);
  for i = 0 to 19 do
    ignore
      (Scheduler.schedule sched
         ~at:(i * Sim_time.us 5)
         (fun () -> Event_switch.inject sw ~port:0 (Apps.Netcache.get_packet ~client:0 ~key:42)))
  done;
  Scheduler.run ~until:(Sim_time.us 200) sched;
  (* First 3 miss (promotion threshold), the rest hit. *)
  Alcotest.(check int) "misses" 3 (Apps.Netcache.cache_misses cache);
  Alcotest.(check int) "hits" 17 (Apps.Netcache.cache_hits cache);
  Alcotest.(check int) "server saw only misses" 3 !to_server;
  Alcotest.(check (list int)) "key cached" [ 42 ] (Apps.Netcache.cached_keys cache)

let test_netcache_eviction_bounded () =
  let sched = Scheduler.create () in
  let spec, cache =
    Apps.Netcache.program ~cache_size:4 ~promote_threshold:1 ~with_timers:false ~server_port:3
      ~client_port:(fun _ -> 0) ()
  in
  let sw = mk_switch ~arch:Arch.baseline_psa ~sched spec in
  for key = 1 to 10 do
    ignore
      (Scheduler.schedule sched
         ~at:(key * Sim_time.us 5)
         (fun () -> Event_switch.inject sw ~port:0 (Apps.Netcache.get_packet ~client:0 ~key)))
  done;
  Scheduler.run ~until:(Sim_time.us 200) sched;
  Alcotest.(check int) "cache bounded" 4 (List.length (Apps.Netcache.cached_keys cache));
  Alcotest.(check int) "evictions" 6 (Apps.Netcache.evictions cache)

(* --- INT telemetry --- *)

let test_int_heartbeat_only_when_quiet () =
  let sched = Scheduler.create () in
  let spec, app =
    Apps.Int_telemetry.program
      ~strategy:
        (Apps.Int_telemetry.Aggregated
           { report_period = Sim_time.us 100; occupancy_threshold = 1_000_000; heartbeat_every = 5 })
      ~out_port:(fun _ -> 3) ()
  in
  let sw = mk_switch ~sched spec in
  ignore
    (Traffic.cbr ~sched ~flow:(mk_flow 1) ~pkt_bytes:500 ~rate_gbps:1. ~stop:(Sim_time.ms 1)
       ~send:(fun pkt -> Event_switch.inject sw ~port:0 pkt)
       ());
  Scheduler.run ~until:(Sim_time.ms 1) sched;
  (* 10 windows, heartbeat every 5: exactly 2 reports, no anomalies. *)
  Alcotest.(check int) "heartbeats" 2 (Apps.Int_telemetry.report_count app);
  Alcotest.(check int) "no anomalies" 0 (Apps.Int_telemetry.anomalies_reported app)

(* --- HULA --- *)

let test_hula_probes_populate_best_hops () =
  let sched = Scheduler.create () in
  let params =
    {
      Apps.Hula.default_params with
      Apps.Hula.num_leaves = 2;
      num_spines = 2;
      hosts_per_leaf = 1;
      probe_period = Sim_time.us 50;
      util_period = Sim_time.us 50;
    }
  in
  let hula = Apps.Hula.create params Apps.Hula.Event_driven in
  let topo =
    Workloads.Topology.leaf_spine ~sched ~num_leaves:2 ~num_spines:2 ~hosts_per_leaf:1
      ~config:(fun _ -> Event_switch.default_config Arch.event_pisa_full)
      ~program:(Apps.Hula.program hula) ()
  in
  ignore topo;
  Scheduler.run ~until:(Sim_time.ms 1) sched;
  Alcotest.(check bool) "leaf0 knows a hop to leaf1" true
    (Apps.Hula.best_hop hula ~leaf:0 ~dst_leaf:1 <> None);
  Alcotest.(check bool) "leaf1 knows a hop to leaf0" true
    (Apps.Hula.best_hop hula ~leaf:1 ~dst_leaf:0 <> None);
  Alcotest.(check bool) "probes flowed" true (Apps.Hula.probes_delivered hula > 20);
  (* Origination period is exact with the data-plane generator. *)
  let gaps = Apps.Hula.origination_gaps_us hula ~leaf:0 in
  Alcotest.(check bool) "gaps recorded" true (Array.length gaps > 5);
  Array.iter (fun g -> Alcotest.(check (float 0.2)) "exact 50us period" 50. g) gaps

let test_hula_delivery_end_to_end () =
  let sched = Scheduler.create () in
  let params =
    {
      Apps.Hula.default_params with
      Apps.Hula.num_leaves = 2;
      num_spines = 2;
      hosts_per_leaf = 1;
      probe_period = Sim_time.us 50;
      util_period = Sim_time.us 50;
    }
  in
  let hula = Apps.Hula.create params Apps.Hula.Event_driven in
  let topo =
    Workloads.Topology.leaf_spine ~sched ~num_leaves:2 ~num_spines:2 ~hosts_per_leaf:1
      ~config:(fun _ -> Event_switch.default_config Arch.event_pisa_full)
      ~program:(Apps.Hula.program hula) ()
  in
  ignore
    (Traffic.cbr ~sched
       ~flow:
         (Netcore.Flow.make
            ~src:(Ipv4_addr.host ~subnet:0 0)
            ~dst:(Ipv4_addr.host ~subnet:1 0)
            ~src_port:5000 ~dst_port:6000 ())
       ~pkt_bytes:1000 ~rate_gbps:1. ~stop:(Sim_time.ms 1)
       ~send:(fun pkt -> Evcore.Host.send topo.Workloads.Topology.hosts.(0).(0) pkt)
       ());
  Scheduler.run ~until:(Sim_time.ms 1 + Sim_time.us 100) sched;
  let received = Evcore.Host.received topo.Workloads.Topology.hosts.(1).(0) in
  Alcotest.(check bool)
    (Printf.sprintf "most packets delivered (%d)" received)
    true (received > 100)

(* --- PIE --- *)

let test_pie_controls_queue () =
  let sched = Scheduler.create () in
  let spec, app =
    Apps.Aqm.program
      ~policy:
        (Apps.Aqm.Pie
           {
             target_delay = Sim_time.us 20;
             update_period = Sim_time.us 50;
             alpha = 100.;
             beta = 800.;
           })
      ~buffer_bytes:(256 * 1024)
      ~out_port:(fun _ -> 3) ()
  in
  let sw = mk_switch ~sched spec in
  congest sched sw;
  Scheduler.run ~until:(Sim_time.ms 2) sched;
  Alcotest.(check bool) "drop probability ramped" true (Apps.Aqm.drop_probability app > 0.1);
  Alcotest.(check bool) "early drops happened" true (Apps.Aqm.early_drops app > 100);
  Alcotest.(check int) "no tail drops" 0 (Tmgr.Traffic_manager.drops (Event_switch.tm sw))

let test_pie_idle_probability_decays () =
  let sched = Scheduler.create () in
  let spec, app =
    Apps.Aqm.program
      ~policy:
        (Apps.Aqm.Pie
           {
             target_delay = Sim_time.us 20;
             update_period = Sim_time.us 50;
             alpha = 100.;
             beta = 800.;
           })
      ~buffer_bytes:(256 * 1024)
      ~out_port:(fun _ -> 3) ()
  in
  let sw = mk_switch ~sched spec in
  (* Congest for 1 ms, then idle: p must come back down (PIE decays by
     alpha*target per update when the queue is empty, so give it a few
     milliseconds). *)
  congest sched sw;
  let p_peak = ref 0. in
  ignore
    (Scheduler.schedule sched ~at:(Sim_time.ms 1) (fun () ->
         p_peak := Apps.Aqm.drop_probability app));
  Scheduler.run ~until:(Sim_time.ms 8) sched;
  Alcotest.(check bool) "probability decayed when idle" true
    (Apps.Aqm.drop_probability app < 0.05 && Apps.Aqm.drop_probability app < !p_peak)

(* --- State migration --- *)

let test_state_migration_event_driven () =
  let sched = Scheduler.create () in
  let network = Evcore.Network.create ~sched in
  let app = Apps.State_migration.create ~slots:16 () in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let sw_a =
    Event_switch.create ~sched ~id:0 ~config
      ~program:
        (Apps.State_migration.active_program app
           ~mode:(Apps.State_migration.Event_driven { chunk_period = Sim_time.us 1 })
           ~primary:1 ~backup:2)
      ()
  in
  let sw_b =
    Event_switch.create ~sched ~id:1 ~config
      ~program:(Apps.State_migration.standby_program app ~out_port:0) ()
  in
  let sink = Evcore.Host.create ~sched ~id:1 () in
  let primary = Evcore.Network.connect_host network ~host:sink ~switch:(sw_a, 1) () in
  ignore (Evcore.Network.connect_switches network ~a:(sw_a, 2) ~b:(sw_b, 1) ());
  Event_switch.set_port_tx sw_a ~port:0 (fun _ -> ());
  Event_switch.set_port_tx sw_b ~port:0 (fun _ -> ());
  let flow = mk_flow 5 in
  let probe_pkt () =
    Packet.udp_packet ~src:flow.Flow.src ~dst:flow.Flow.dst ~src_port:flow.Flow.src_port
      ~dst_port:flow.Flow.dst_port ~payload_len:100 ()
  in
  let slot = Apps.State_migration.flow_slot app (probe_pkt ()) in
  (* 10 packets before the failure, 5 after. *)
  for i = 1 to 10 do
    ignore
      (Scheduler.schedule sched ~at:(i * Sim_time.us 2) (fun () ->
           Event_switch.inject sw_a ~port:0 (probe_pkt ())))
  done;
  ignore (Scheduler.schedule sched ~at:(Sim_time.us 50) (fun () -> Tmgr.Link.fail primary));
  for i = 1 to 5 do
    ignore
      (Scheduler.schedule sched
         ~at:(Sim_time.us 100 + (i * Sim_time.us 2))
         (fun () -> Event_switch.inject sw_a ~port:0 (probe_pkt ())))
  done;
  Scheduler.run sched;
  Alcotest.(check bool) "migration completed" true
    (Apps.State_migration.migration_completed_at app <> None);
  Alcotest.(check int) "all chunks installed" 16 (Apps.State_migration.chunks_installed app);
  Alcotest.(check int) "standby has full count" 15
    (Apps.State_migration.counter app ~role:`Standby ~slot)

(* --- multi-bit ECN --- *)

let test_ecn_quantise () =
  Alcotest.(check int) "empty" 0 (Apps.Ecn_mark.quantise ~buffer_bytes:1000 ~levels:16 0);
  Alcotest.(check int) "half" 8 (Apps.Ecn_mark.quantise ~buffer_bytes:1000 ~levels:16 500);
  Alcotest.(check int) "full clamps" 15 (Apps.Ecn_mark.quantise ~buffer_bytes:1000 ~levels:16 2000);
  Alcotest.(check int) "1-bit" 1 (Apps.Ecn_mark.quantise ~buffer_bytes:1000 ~levels:2 600)

let test_ecn_marks_only_under_congestion () =
  let sched = Scheduler.create () in
  let spec, app = Apps.Ecn_mark.program ~levels:16 ~buffer_bytes:50_000 ~out_port:(fun _ -> 3) () in
  let sw = mk_switch ~sched spec in
  let max_mark = ref 0 in
  Event_switch.set_port_tx sw ~port:3 (fun pkt ->
      max_mark := max !max_mark pkt.Packet.meta.Packet.mark);
  (* Light phase: no marks expected. *)
  ignore
    (Traffic.cbr ~sched ~flow:(mk_flow 1) ~pkt_bytes:500 ~rate_gbps:1. ~stop:(Sim_time.us 200)
       ~send:(fun pkt -> Event_switch.inject sw ~port:0 pkt)
       ());
  Scheduler.run sched;
  Alcotest.(check int) "no marks when uncongested" 0 !max_mark;
  (* Congestion: two ports of 10G into one. *)
  List.iter
    (fun port ->
      ignore
        (Traffic.burst_once ~sched ~flow:(mk_flow (10 + port)) ~pkt_bytes:1000 ~count:40
           ~rate_gbps:10. ~at:(Sim_time.us 300)
           ~send:(fun pkt -> Event_switch.inject sw ~port pkt)
           ()))
    [ 0; 1 ];
  Scheduler.run sched;
  Alcotest.(check bool) "marks under congestion" true (!max_mark > 4);
  Alcotest.(check bool) "marks counted" true (Apps.Ecn_mark.marks_applied app > 0)

(* --- Stateful firewall --- *)

module Fw = Apps.Stateful_fw
module Tcp = Netcore.Tcp

let fw_pkt ?(flags = 0) ?(sport = 4000) () =
  Packet.tcp_packet
    ~src:(Ipv4_addr.host ~subnet:1 1)
    ~dst:(Ipv4_addr.host ~subnet:2 1)
    ~src_port:sport ~dst_port:80 ~payload_len:100 ~flags ()

let test_fw_mark_spoof_blocked () =
  (* Regression: session state must be driven by parsed TCP flags, not
     the writable meta.mark side channel. A non-TCP packet with a
     spoofed mark must not open or establish a session. *)
  let sched = Scheduler.create () in
  let spec, fw = Fw.program ~out_port:(fun _ -> 1) () in
  let sw = mk_switch ~sched spec in
  let spoofed =
    Packet.udp_packet
      ~src:(Ipv4_addr.host ~subnet:1 1)
      ~dst:(Ipv4_addr.host ~subnet:2 1)
      ~src_port:4000 ~dst_port:80 ~payload_len:100 ()
  in
  spoofed.Packet.meta.Packet.mark <- Fw.input_syn;
  Alcotest.(check int) "no TCP header classifies as non-tcp" Fw.input_non_tcp
    (Fw.input_of spoofed);
  Event_switch.inject sw ~port:0 spoofed;
  let spoofed2 = { spoofed with Packet.meta = { spoofed.Packet.meta with Packet.mark = Fw.input_data } } in
  Event_switch.inject sw ~port:0 spoofed2;
  (* Bounded run: the firewall's periodic sweep timer re-arms forever. *)
  Scheduler.run ~until:(Sim_time.us 50) sched;
  Alcotest.(check int) "spoofed packets all blocked" 2 (Fw.blocked fw);
  Alcotest.(check int) "nothing allowed" 0 (Fw.allowed fw);
  Alcotest.(check bool) "no established session" true
    (Pisa.Efsm.state_of (Fw.efsm fw) ~key:(Fw.key_of spoofed) <> Some Fw.s_est)

let test_fw_flag_driven_lifecycle () =
  (* The real handshake drives the session: SYN -> syn-sent, ACK ->
     established, data flows, RST aborts, post-close data is blocked. *)
  let sched = Scheduler.create () in
  let spec, fw = Fw.program ~out_port:(fun _ -> 1) () in
  let sw = mk_switch ~sched spec in
  let key = Fw.key_of (fw_pkt ()) in
  let state () = Pisa.Efsm.state_of (Fw.efsm fw) ~key in
  (* Bounded runs (the sweep timer re-arms forever), well inside the
     500 µs idle timeout. *)
  let t = ref 0 in
  let inject ?flags () =
    Event_switch.inject sw ~port:0 (fw_pkt ?flags ());
    t := !t + Sim_time.us 10;
    Scheduler.run ~until:!t sched
  in
  inject ~flags:Tcp.flag_syn ();
  Alcotest.(check (option int)) "SYN opens" (Some Fw.s_syn) (state ());
  inject ~flags:Tcp.flag_ack ();
  Alcotest.(check (option int)) "handshake ACK establishes" (Some Fw.s_est) (state ());
  inject ~flags:Tcp.flag_ack ();
  inject ~flags:(Tcp.flag_rst lor Tcp.flag_ack) ();
  Alcotest.(check (option int)) "RST closes" (Some Fw.s_closed) (state ());
  let blocked_before = Fw.blocked fw in
  inject ~flags:Tcp.flag_ack ();
  Alcotest.(check int) "post-close data blocked" (blocked_before + 1) (Fw.blocked fw);
  Alcotest.(check int) "SYN, ACK, data, RST allowed" 4 (Fw.allowed fw)

let suite =
  [
    Alcotest.test_case "microburst detects culprit" `Quick test_microburst_detects_culprit;
    Alcotest.test_case "microburst no false positive" `Quick test_microburst_no_false_positive;
    Alcotest.test_case "microburst state modes" `Quick test_microburst_state_modes;
    Alcotest.test_case "snappy state cost" `Quick test_snappy_state_exceeds_event_driven;
    Alcotest.test_case "snappy detects burst" `Quick test_snappy_detects_big_burst;
    Alcotest.test_case "cms timer reset windows" `Quick test_cms_timer_reset_reports_windows;
    Alcotest.test_case "cms cp reset lags" `Quick test_cms_cp_reset_lags;
    Alcotest.test_case "flow rate estimate" `Quick test_flow_rate_estimate;
    Alcotest.test_case "aqm taildrop" `Quick test_aqm_taildrop_overflow_only;
    Alcotest.test_case "aqm fred limits hog" `Quick test_aqm_fred_limits_hog;
    Alcotest.test_case "aqm red marking" `Quick test_aqm_red_marks_instead_of_dropping;
    Alcotest.test_case "aqm active flow count" `Quick test_aqm_active_flow_count;
    Alcotest.test_case "policer under rate" `Quick test_policer_under_rate_passes_everything;
    Alcotest.test_case "policer enforces cir" `Quick test_policer_enforces_cir;
    Alcotest.test_case "frr switchover" `Quick test_frr_event_driven_switchover;
    Alcotest.test_case "frr failback" `Quick test_frr_failback;
    Alcotest.test_case "liveness stays alive" `Quick test_liveness_stays_alive;
    Alcotest.test_case "liveness detects + recovers" `Quick test_liveness_detects_and_recovers;
    Alcotest.test_case "wfq weighted shares" `Quick test_wfq_weighted_shares;
    Alcotest.test_case "netcache promotion + hits" `Quick test_netcache_hits_after_promotion;
    Alcotest.test_case "netcache bounded eviction" `Quick test_netcache_eviction_bounded;
    Alcotest.test_case "int heartbeat reports" `Quick test_int_heartbeat_only_when_quiet;
    Alcotest.test_case "hula best hops" `Quick test_hula_probes_populate_best_hops;
    Alcotest.test_case "hula end-to-end delivery" `Quick test_hula_delivery_end_to_end;
    Alcotest.test_case "pie controls the queue" `Quick test_pie_controls_queue;
    Alcotest.test_case "pie decays when idle" `Quick test_pie_idle_probability_decays;
    Alcotest.test_case "state migration" `Quick test_state_migration_event_driven;
    Alcotest.test_case "ecn quantiser" `Quick test_ecn_quantise;
    Alcotest.test_case "ecn marks under congestion" `Quick test_ecn_marks_only_under_congestion;
    Alcotest.test_case "fw: mark spoof cannot fake a session" `Quick test_fw_mark_spoof_blocked;
    Alcotest.test_case "fw: TCP flags drive the lifecycle" `Quick test_fw_flag_driven_lifecycle;
  ]
