(* CEP compiler conformance: the compiled EFSM automaton must agree
   with the reference interpreter verdict-for-verdict on any event
   stream — deterministic cases for each combinator plus a QCheck
   property over random patterns and random streams (with ticks). *)

open Alcotest
module P = Cep.Pattern
module C = Cep.Compile
module I = Cep.Interp
module Efsm = Pisa.Efsm
module Event = Devents.Event

type item = E of P.view | T

let item_to_string = function
  | E v -> Printf.sprintf "%s:%d" (Event.cls_name v.P.cls) v.P.attr
  | T -> "tick"

let stream_to_string s = String.concat " " (List.map item_to_string s)

(* Drive the compiled automaton for one instance (key 1). Ticks go
   through [step] rather than [step_all] — same rows, single flow. *)
let run_compiled ?(tick_period = Eventsim.Sim_time.us 1) pat stream =
  let c = C.compile ~tick_period pat in
  let e = C.efsm ~name:"cep-test" ~entries:16 c () in
  List.mapi
    (fun i item ->
      let input = match item with E v -> P.encode v | T -> P.tick_input in
      let o = Efsm.step e ~now:i ~key:1 ~input in
      C.is_match c o)
    stream

let run_interp ?(tick_period = Eventsim.Sim_time.us 1) pat stream =
  let it = I.create ~tick_period pat in
  List.map
    (function
      | E v -> I.feed it v
      | T ->
          I.tick it;
          false)
    stream

(* Event alphabet for the deterministic cases. *)
let a_cls = Event.Ingress_packet
let b_cls = Event.Buffer_overflow
let c_cls = Event.User_event
let a = P.atom ~label:"a" a_cls
let b = P.atom ~label:"b" b_cls
let c = P.atom ~label:"c" c_cls
let ev ?(attr = 0) cls = E { P.cls; attr }
let ea = ev a_cls
let eb = ev b_cls
let ec = ev c_cls

let both pat stream =
  let comp = run_compiled pat stream in
  let interp = run_interp pat stream in
  check (list bool)
    (Printf.sprintf "%s on [%s]" (P.to_string pat) (stream_to_string stream))
    interp comp;
  comp

let test_atom () =
  let m = both a [ eb; ea; ea; T; ea ] in
  check (list bool) "every a matches, b never" [ false; true; true; false; true ] m

let test_seq () =
  let p = P.seq [ a; b ] in
  let m = both p [ eb; ea; ea; eb; ea; eb ] in
  (* Leading b ignored; second a ignored at the b-frontier
     (skip-till-next-match); each a..b pair completes. *)
  check (list bool) "seq skip-till-next-match" [ false; false; false; true; false; true ] m

let test_seq_attr_guard () =
  let big = P.atom ~label:"big" ~lo:100 a_cls in
  let p = P.seq [ big; b ] in
  let m = both p [ ev ~attr:50 a_cls; eb; ev ~attr:200 a_cls; eb ] in
  check (list bool) "attr interval gates the atom" [ false; false; false; true ] m

let test_count () =
  let p = P.count 3 a in
  let m = both p [ ea; eb; ea; ea; ea ] in
  check (list bool) "3rd a completes, then restart" [ false; false; false; true; false ] m

let test_conj () =
  let p = P.conj [ a; b ] in
  let m = both p [ eb; ea ] in
  check (list bool) "order-free conjunction" [ false; true ] m;
  ignore (both p [ ea; ea; eb; ea; eb ] : bool list)

let test_disj () =
  let p = P.disj [ a; b ] in
  let m = both p [ ec; eb; ea ] in
  check (list bool) "either branch completes" [ false; true; true ] m

let test_within_expiry () =
  (* Window of 2 ticks, armed by the first a. Two ticks after arming the
     region resets, so a stale a does not pair with a late b. *)
  let p = P.within (Eventsim.Sim_time.us 2) (P.seq [ a; b ]) in
  let m = both p [ ea; T; T; eb; ea; eb ] in
  check (list bool) "expired window drops the partial match"
    [ false; false; false; false; false; true ] m;
  let m = both p [ ea; T; eb ] in
  check (list bool) "b inside the window completes" [ false; false; true ] m

let test_within_rearm () =
  let p = P.within (Eventsim.Sim_time.us 1) (P.seq [ a; b ]) in
  (* w=1: the tick after arming already expires the window. *)
  ignore (both p [ ea; T; eb; ea; eb; T; T; ea; T; ea; eb ] : bool list)

let test_count_within () =
  (* Microburst shape: n overflows inside a window. *)
  let p = P.within (Eventsim.Sim_time.us 3) (P.count 3 b) in
  ignore (both p [ eb; T; eb; T; eb ] : bool list);
  ignore (both p [ eb; T; T; T; eb; eb; T; eb ] : bool list)

let test_nested_windows () =
  (* Sibling armed windows: only one expires per tick, the outer
     (pre-order first) going first. *)
  let p =
    P.conj
      [
        P.within (Eventsim.Sim_time.us 2) (P.seq [ a; b ]);
        P.within (Eventsim.Sim_time.us 2) (P.seq [ c; b ]);
      ]
  in
  ignore (both p [ ea; ec; T; T; T; eb; ec; eb; ea; eb ] : bool list);
  let p = P.within (Eventsim.Sim_time.us 4) (P.seq [ a; P.within (Eventsim.Sim_time.us 2) (P.seq [ b; c ]) ]) in
  ignore (both p [ ea; eb; T; T; T; eb; ec; ea; eb; ec ] : bool list)

let test_seq_of_disj_count () =
  let p = P.seq [ P.disj [ a; c ]; P.count 2 b ] in
  ignore (both p [ ec; eb; ea; eb; eb; eb ] : bool list)

let test_accept_restarts () =
  let p = P.seq [ a; b ] in
  let m = both p [ ea; eb; ea; eb; ea; eb ] in
  check (list bool) "instance restarts after accept"
    [ false; true; false; true; false; true ] m

let test_compile_shape () =
  let c = C.compile a in
  check int "atom: init + accept" 2 c.C.states;
  check int "atom: no registers" 0 c.C.nregs;
  check int "accept label" 1 c.C.accept;
  let c = C.compile (P.within (Eventsim.Sim_time.us 2) (P.count 3 b)) in
  check int "count+within: two registers" 2 c.C.nregs;
  check bool "state_bits covers labels" true (1 lsl c.C.state_bits > c.C.accept)

let test_validation () =
  let rejects name f = check_raises name (Invalid_argument "") (fun () -> try f () with Invalid_argument _ -> raise (Invalid_argument "")) in
  rejects "empty seq" (fun () -> ignore (P.seq [] : P.t));
  rejects "empty conj" (fun () -> ignore (P.conj [] : P.t));
  rejects "empty disj" (fun () -> ignore (P.disj [] : P.t));
  rejects "count 0" (fun () -> ignore (P.count 0 a : P.t));
  rejects "within 0" (fun () -> ignore (P.within 0 a : P.t));
  rejects "empty atom interval" (fun () ->
      ignore (P.atom ~label:"x" ~lo:5 ~hi:4 a_cls : P.t))

(* --- QCheck: random patterns, random streams ------------------------- *)

let classes = [| a_cls; b_cls; c_cls |]

let gen_atom =
  QCheck.Gen.(
    let* ci = int_bound 2 in
    let* lo = int_bound 6 in
    let* len = int_bound 4 in
    return (P.atom ~label:(Printf.sprintf "c%d[%d-%d]" ci lo (lo + len)) ~lo ~hi:(lo + len) classes.(ci)))

let gen_pattern =
  QCheck.Gen.(
    fix (fun self depth ->
        if depth = 0 then gen_atom
        else
          let sub = self (depth - 1) in
          frequency
            [
              (2, gen_atom);
              (2, list_size (int_range 2 3) sub >|= P.seq);
              (1, list_size (int_range 2 3) sub >|= P.conj);
              (1, list_size (int_range 2 3) sub >|= P.disj);
              (1, map2 (fun n p -> P.count (1 + n) p) (int_bound 2) sub);
              (2, map2 (fun w p -> P.within (Eventsim.Sim_time.us (1 + w)) p) (int_bound 3) sub);
            ]))

let gen_item =
  QCheck.Gen.(
    frequency
      [
        (1, return T);
        ( 3,
          let* ci = int_bound 2 in
          let* attr = int_bound 11 in
          return (E { P.cls = classes.(ci); attr }) );
      ])

let gen_case =
  QCheck.Gen.(
    let* pat = gen_pattern 3 in
    let* stream = list_size (int_range 1 50) gen_item in
    return (pat, stream))

let qcheck_compiled_matches_interp =
  let arb =
    QCheck.make
      ~print:(fun (pat, stream) ->
        Printf.sprintf "%s on [%s]" (P.to_string pat) (stream_to_string stream))
      gen_case
  in
  QCheck.Test.make ~count:300 ~name:"compiled automaton == reference interpreter" arb
    (fun (pat, stream) ->
      match C.compile pat with
      | exception Invalid_argument _ ->
          QCheck.assume_fail () (* state-space cap; vacuous *)
      | c ->
          let e = C.efsm ~name:"cep-qc" ~entries:8 c () in
          let it = I.create pat in
          List.iteri
            (fun i item ->
              let input = match item with E v -> P.encode v | T -> P.tick_input in
              let o = Efsm.step e ~now:i ~key:1 ~input in
              let compiled = C.is_match c o in
              let interp =
                match item with
                | E v -> I.feed it v
                | T ->
                    I.tick it;
                    false
              in
              if compiled <> interp then
                QCheck.Test.fail_reportf "verdicts diverge at event %d (%s): compiled=%b interp=%b"
                  i (item_to_string item) compiled interp)
            stream;
          true)

let suite =
  [
    test_case "atom matches its class and interval" `Quick test_atom;
    test_case "seq with skip-till-next-match" `Quick test_seq;
    test_case "seq with attribute guard" `Quick test_seq_attr_guard;
    test_case "count n completes on the n-th" `Quick test_count;
    test_case "conj is order-free" `Quick test_conj;
    test_case "disj completes on either branch" `Quick test_disj;
    test_case "within expiry drops partial matches" `Quick test_within_expiry;
    test_case "within re-arms after expiry" `Quick test_within_rearm;
    test_case "count under within (microburst shape)" `Quick test_count_within;
    test_case "nested and sibling windows" `Quick test_nested_windows;
    test_case "seq of disj and count" `Quick test_seq_of_disj_count;
    test_case "accept restarts the instance" `Quick test_accept_restarts;
    test_case "compiled shape: states, regs, accept" `Quick test_compile_shape;
    test_case "pattern validation" `Quick test_validation;
    QCheck_alcotest.to_alcotest qcheck_compiled_matches_interp;
  ]
