(* Determinism regression: the same seeded workload run twice must
   produce byte-identical trace records and byte-identical metrics
   snapshots.  Wall-clock profiling is excluded ([set_metrics
   ~wall:false]) because it is the one intentionally nondeterministic
   series. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Trace = Eventsim.Trace
module Event_switch = Evcore.Event_switch
module M = Obs.Metrics

let mk_pkt ~payload_len i =
  Netcore.Packet.udp_packet
    ~src:(Netcore.Ipv4_addr.host ~subnet:1 (1 + (i mod 8)))
    ~dst:(Netcore.Ipv4_addr.host ~subnet:2 1)
    ~src_port:(1000 + (i mod 16))
    ~dst_port:80 ~payload_len ()

(* A seeded random workload through a live event switch: random
   injection times, sizes and input ports, with detections and
   transmissions recorded in the trace. *)
let run_once ?backend ~seed () =
  let sched = Scheduler.create ?backend () in
  let trace = Trace.create ~limit:50_000 () in
  Trace.enable trace;
  let reg = M.create () in
  Scheduler.set_metrics ~wall:false sched reg;
  let config = Event_switch.default_config Evcore.Arch.event_pisa_full in
  let spec, detector =
    Apps.Microburst.program ~slots:256 ~threshold_bytes:20_000 ~out_port:(fun _ -> 1) ()
  in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  Event_switch.set_port_tx sw ~port:1 (fun pkt ->
      Trace.record trace ~time:(Scheduler.now sched)
        (Printf.sprintf "tx len=%d" (Netcore.Packet.len pkt)));
  let rng = Stats.Rng.create ~seed in
  for i = 0 to 299 do
    let at = Sim_time.ns (Stats.Rng.int rng 50_000) in
    let payload_len = 64 + Stats.Rng.int rng 1000 in
    let port = Stats.Rng.int rng 3 in
    let pkt = mk_pkt ~payload_len i in
    ignore
      (Scheduler.schedule sched ~at (fun () -> Event_switch.inject sw ~port pkt))
  done;
  Scheduler.run sched;
  List.iter
    (fun (d : Apps.Microburst.detection) ->
      Trace.record trace ~time:d.Apps.Microburst.time
        (Printf.sprintf "detect slot=%d" d.Apps.Microburst.flow_id))
    (Apps.Microburst.detections detector);
  Scheduler.export_metrics sched reg;
  Event_switch.export_metrics sw reg;
  (Trace.records trace, M.to_json reg, M.to_csv reg)

let test_trace_identical () =
  let t1, _, _ = run_once ~seed:7 () and t2, _, _ = run_once ~seed:7 () in
  Alcotest.(check bool) "trace non-trivial" true (List.length t1 > 50);
  Alcotest.(check (list (pair int string))) "byte-identical trace" t1 t2

let test_metrics_identical () =
  let _, j1, c1 = run_once ~seed:7 () and _, j2, c2 = run_once ~seed:7 () in
  Alcotest.(check string) "byte-identical metrics JSON" j1 j2;
  Alcotest.(check string) "byte-identical metrics CSV" c1 c2

let test_seed_changes_behaviour () =
  (* Sanity check that the workload actually depends on the seed —
     otherwise the two tests above would pass vacuously. *)
  let t1, _, _ = run_once ~seed:7 () and t2, _, _ = run_once ~seed:8 () in
  Alcotest.(check bool) "different seeds diverge" false (t1 = t2)

(* The two scheduler backends must be observationally identical: same
   seed, different backend, byte-identical trace and metrics. *)
let test_backends_identical () =
  let th, jh, ch = run_once ~backend:Eventsim.Sched_backend.Heap ~seed:7 () in
  let tw, jw, cw = run_once ~backend:Eventsim.Sched_backend.Wheel ~seed:7 () in
  Alcotest.(check (list (pair int string))) "heap/wheel identical trace" th tw;
  Alcotest.(check string) "heap/wheel identical metrics JSON" jh jw;
  Alcotest.(check string) "heap/wheel identical metrics CSV" ch cw

(* Run [f] with the process-wide default backend forced to [backend] —
   this is what [evsim --sched-backend] does, and it covers code that
   creates schedulers internally (experiments, chaos). *)
let with_default_backend backend f =
  let saved = !Eventsim.Sched_backend.default in
  Eventsim.Sched_backend.default := backend;
  Fun.protect ~finally:(fun () -> Eventsim.Sched_backend.default := saved) f

(* A full chaos run (E21) is the most adversarial determinism case:
   Poisson flap timelines, per-packet perturbation draws, overlapping
   outages and churn. Same seed must give byte-identical metrics. *)
let chaos_once ~seed ~profile =
  let m = M.create () in
  let r = Experiments.E21_chaos.run ~metrics:m ~seed ~profile () in
  (r, M.to_json m)

let test_chaos_identical () =
  List.iter
    (fun profile ->
      let r1, j1 = chaos_once ~seed:42 ~profile in
      let r2, j2 = chaos_once ~seed:42 ~profile in
      let name = Faults.Profile.to_string profile in
      Alcotest.(check string) (name ^ ": byte-identical metrics JSON") j1 j2;
      Alcotest.(check int)
        (name ^ ": identical receive count")
        r1.Experiments.E21_chaos.received r2.Experiments.E21_chaos.received;
      Alcotest.(check int) (name ^ ": packet conservation") 0 r1.Experiments.E21_chaos.balance;
      Alcotest.(check bool) (name ^ ": fault class exercised") true
        (Experiments.E21_chaos.exercised r1))
    Faults.Profile.all

let test_chaos_backends_identical () =
  (* E21 chaos under heap vs wheel: the most adversarial parity check —
     flap timelines, perturbation draws, churn, and (handler-faults)
     quarantine/backoff timers — must not depend on the queue
     implementation at all. *)
  List.iter
    (fun profile ->
      let run backend =
        with_default_backend backend (fun () -> chaos_once ~seed:42 ~profile)
      in
      let name = Faults.Profile.to_string profile in
      let r1, j1 = run Eventsim.Sched_backend.Heap in
      let r2, j2 = run Eventsim.Sched_backend.Wheel in
      Alcotest.(check string) (name ^ ": heap/wheel identical chaos metrics") j1 j2;
      Alcotest.(check int)
        (name ^ ": heap/wheel identical receive count")
        r1.Experiments.E21_chaos.received r2.Experiments.E21_chaos.received)
    [ Faults.Profile.Burst_storm; Faults.Profile.Handler_faults ]

let test_chaos_seed_diverges () =
  let _, j1 = chaos_once ~seed:42 ~profile:Faults.Profile.Flaky_links in
  let _, j2 = chaos_once ~seed:43 ~profile:Faults.Profile.Flaky_links in
  Alcotest.(check bool) "different seeds diverge" false (j1 = j2)

let suite =
  [
    Alcotest.test_case "same seed, identical trace" `Quick test_trace_identical;
    Alcotest.test_case "same seed, identical metrics" `Quick test_metrics_identical;
    Alcotest.test_case "different seed diverges" `Quick test_seed_changes_behaviour;
    Alcotest.test_case "heap vs wheel, identical run" `Quick test_backends_identical;
    Alcotest.test_case "heap vs wheel, identical chaos" `Quick test_chaos_backends_identical;
    Alcotest.test_case "chaos run, identical metrics" `Quick test_chaos_identical;
    Alcotest.test_case "chaos run, seed diverges" `Quick test_chaos_seed_diverges;
  ]
