(* Determinism regression: the same seeded workload run twice must
   produce byte-identical trace records and byte-identical metrics
   snapshots.  Wall-clock profiling is excluded ([set_metrics
   ~wall:false]) because it is the one intentionally nondeterministic
   series. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Trace = Eventsim.Trace
module Event_switch = Evcore.Event_switch
module M = Obs.Metrics

let mk_pkt ~payload_len i =
  Netcore.Packet.udp_packet
    ~src:(Netcore.Ipv4_addr.host ~subnet:1 (1 + (i mod 8)))
    ~dst:(Netcore.Ipv4_addr.host ~subnet:2 1)
    ~src_port:(1000 + (i mod 16))
    ~dst_port:80 ~payload_len ()

(* A seeded random workload through a live event switch: random
   injection times, sizes and input ports, with detections and
   transmissions recorded in the trace. *)
let run_once ?backend ~seed () =
  let sched = Scheduler.create ?backend () in
  let trace = Trace.create ~limit:50_000 () in
  Trace.enable trace;
  let reg = M.create () in
  Scheduler.set_metrics ~wall:false sched reg;
  let config = Event_switch.default_config Evcore.Arch.event_pisa_full in
  let spec, detector =
    Apps.Microburst.program ~slots:256 ~threshold_bytes:20_000 ~out_port:(fun _ -> 1) ()
  in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  Event_switch.set_port_tx sw ~port:1 (fun pkt ->
      Trace.record trace ~time:(Scheduler.now sched)
        (Printf.sprintf "tx len=%d" (Netcore.Packet.len pkt)));
  let rng = Stats.Rng.create ~seed in
  for i = 0 to 299 do
    let at = Sim_time.ns (Stats.Rng.int rng 50_000) in
    let payload_len = 64 + Stats.Rng.int rng 1000 in
    let port = Stats.Rng.int rng 3 in
    let pkt = mk_pkt ~payload_len i in
    ignore
      (Scheduler.schedule sched ~at (fun () -> Event_switch.inject sw ~port pkt))
  done;
  Scheduler.run sched;
  List.iter
    (fun (d : Apps.Microburst.detection) ->
      Trace.record trace ~time:d.Apps.Microburst.time
        (Printf.sprintf "detect slot=%d" d.Apps.Microburst.flow_id))
    (Apps.Microburst.detections detector);
  Scheduler.export_metrics sched reg;
  Event_switch.export_metrics sw reg;
  (Trace.records trace, M.to_json reg, M.to_csv reg)

let test_trace_identical () =
  let t1, _, _ = run_once ~seed:7 () and t2, _, _ = run_once ~seed:7 () in
  Alcotest.(check bool) "trace non-trivial" true (List.length t1 > 50);
  Alcotest.(check (list (pair int string))) "byte-identical trace" t1 t2

let test_metrics_identical () =
  let _, j1, c1 = run_once ~seed:7 () and _, j2, c2 = run_once ~seed:7 () in
  Alcotest.(check string) "byte-identical metrics JSON" j1 j2;
  Alcotest.(check string) "byte-identical metrics CSV" c1 c2

let test_seed_changes_behaviour () =
  (* Sanity check that the workload actually depends on the seed —
     otherwise the two tests above would pass vacuously. *)
  let t1, _, _ = run_once ~seed:7 () and t2, _, _ = run_once ~seed:8 () in
  Alcotest.(check bool) "different seeds diverge" false (t1 = t2)

(* The scheduler backends must be observationally identical: same seed,
   different backend, byte-identical trace and metrics. *)
let test_backends_identical () =
  let th, jh, ch = run_once ~backend:Eventsim.Sched_backend.Heap ~seed:7 () in
  let tw, jw, cw = run_once ~backend:Eventsim.Sched_backend.Wheel ~seed:7 () in
  let tl, jl, cl = run_once ~backend:Eventsim.Sched_backend.Ladder ~seed:7 () in
  Alcotest.(check (list (pair int string))) "heap/wheel identical trace" th tw;
  Alcotest.(check string) "heap/wheel identical metrics JSON" jh jw;
  Alcotest.(check string) "heap/wheel identical metrics CSV" ch cw;
  Alcotest.(check (list (pair int string))) "heap/ladder identical trace" th tl;
  Alcotest.(check string) "heap/ladder identical metrics JSON" jh jl;
  Alcotest.(check string) "heap/ladder identical metrics CSV" ch cl

(* Run [f] with the process-wide default backend forced to [backend] —
   this is what [evsim --sched-backend] does, and it covers code that
   creates schedulers internally (experiments, chaos). *)
let with_default_backend backend f =
  let saved = !Eventsim.Sched_backend.default in
  Eventsim.Sched_backend.default := backend;
  Fun.protect ~finally:(fun () -> Eventsim.Sched_backend.default := saved) f

(* A full chaos run (E21) is the most adversarial determinism case:
   Poisson flap timelines, per-packet perturbation draws, overlapping
   outages and churn. Same seed must give byte-identical metrics. *)
let chaos_once ~seed ~profile =
  let m = M.create () in
  let r = Experiments.E21_chaos.run ~metrics:m ~seed ~profile () in
  (r, M.to_json m)

let test_chaos_identical () =
  List.iter
    (fun profile ->
      let r1, j1 = chaos_once ~seed:42 ~profile in
      let r2, j2 = chaos_once ~seed:42 ~profile in
      let name = Faults.Profile.to_string profile in
      Alcotest.(check string) (name ^ ": byte-identical metrics JSON") j1 j2;
      Alcotest.(check int)
        (name ^ ": identical receive count")
        r1.Experiments.E21_chaos.received r2.Experiments.E21_chaos.received;
      Alcotest.(check int) (name ^ ": packet conservation") 0 r1.Experiments.E21_chaos.balance;
      Alcotest.(check bool) (name ^ ": fault class exercised") true
        (Experiments.E21_chaos.exercised r1))
    Faults.Profile.all

let test_chaos_backends_identical () =
  (* E21 chaos under heap vs wheel: the most adversarial parity check —
     flap timelines, perturbation draws, churn, and (handler-faults)
     quarantine/backoff timers — must not depend on the queue
     implementation at all. *)
  List.iter
    (fun profile ->
      let run backend =
        with_default_backend backend (fun () -> chaos_once ~seed:42 ~profile)
      in
      let name = Faults.Profile.to_string profile in
      let r1, j1 = run Eventsim.Sched_backend.Heap in
      let r2, j2 = run Eventsim.Sched_backend.Wheel in
      let r3, j3 = run Eventsim.Sched_backend.Ladder in
      Alcotest.(check string) (name ^ ": heap/wheel identical chaos metrics") j1 j2;
      Alcotest.(check int)
        (name ^ ": heap/wheel identical receive count")
        r1.Experiments.E21_chaos.received r2.Experiments.E21_chaos.received;
      Alcotest.(check string) (name ^ ": heap/ladder identical chaos metrics") j1 j3;
      Alcotest.(check int)
        (name ^ ": heap/ladder identical receive count")
        r1.Experiments.E21_chaos.received r3.Experiments.E21_chaos.received)
    [ Faults.Profile.Burst_storm; Faults.Profile.Handler_faults ]

let test_chaos_seed_diverges () =
  let _, j1 = chaos_once ~seed:42 ~profile:Faults.Profile.Flaky_links in
  let _, j2 = chaos_once ~seed:43 ~profile:Faults.Profile.Flaky_links in
  Alcotest.(check bool) "different seeds diverge" false (j1 = j2)

(* Parsim extension: on a random topology with a random seed, a
   sharded run's merged metrics snapshot, merged trace, arrival digest
   and per-host counters must equal the sequential (1-shard) run's —
   and the ADAPTIVE horizon must agree with STATIC windows on all of
   them, since the two modes execute completely different round
   schedules over the same event population. Topologies are drawn from
   both builders up to k=4 fat trees (20 switches) and 10-switch
   rings; the shard count ranges over everything the partitioner
   accepts for that size, capped at 8. *)

let parsim_run ?(horizon = Parsim.Adaptive) ~topo_kind ~size ~seed ~shards () =
  let module Topology = Evcore.Topology in
  let topo, route =
    match topo_kind with
    | `Ring -> (Topology.ring ~switches:size (), Topology.ring_route ~switches:size)
    | `Fat_tree k -> (Topology.fat_tree ~k (), Topology.fat_tree_route ~k)
  in
  let num_hosts = topo.Topology.hosts in
  let addr_of_host h = Netcore.Ipv4_addr.of_octets 10 0 0 h in
  let host_of_addr a = Netcore.Ipv4_addr.to_int a land 0xff in
  let program : Evcore.Program.spec =
   fun _ ->
    Evcore.Program.make ~name:"qcheck-route"
      ~ingress:(fun ctx pkt ->
        match pkt.Netcore.Packet.ip with
        | Some ip ->
            Evcore.Program.Forward
              (route ~sw:ctx.Evcore.Program.switch_id
                 ~dst_host:(host_of_addr ip.Netcore.Ipv4.dst))
        | None -> Evcore.Program.Drop)
      ()
  in
  let until = Sim_time.us 180 in
  let cfg =
    Parsim.config ~shards ~horizon ~record_trace:true ~record_digest:true ~until
      ~switch_config:(fun sw ->
        let cfg = Event_switch.default_config Evcore.Arch.sume_event_switch in
        { cfg with Event_switch.seed = seed + (31 * sw) })
      ~program:(fun _ -> program)
      ~on_shard:(fun ctx ->
        List.iter
          (fun (h, host) ->
            let dst = (h + 1) mod num_hosts in
            let flow =
              Netcore.Flow.make ~src:(addr_of_host h) ~dst:(addr_of_host dst)
                ~proto:Netcore.Ipv4.proto_udp ~src_port:(4000 + h) ~dst_port:(5000 + dst)
                ()
            in
            let rng = Stats.Rng.create ~seed:(seed + (7919 * h)) in
            ignore
              (Workloads.Traffic.cbr ~sched:ctx.Parsim.sched ~flow ~pkt_bytes:128
                 ~rate_gbps:1. ~stop:(until - Sim_time.us 80)
                 ~jitter:(rng, Sim_time.ns 30)
                 ~send:(Evcore.Host.send host) ()
                : Workloads.Traffic.t))
          ctx.Parsim.hosts)
      ()
  in
  Parsim.run cfg topo

let qcheck_parsim_matches_sequential =
  let kind_to_string = function
    | `Ring -> "ring"
    | `Fat_tree k -> Printf.sprintf "fat-tree k=%d" k
  in
  let gen =
    QCheck.make
      ~print:(fun (kind, size, seed, shards) ->
        Printf.sprintf "(%s, size=%d, seed=%d, shards=%d)" (kind_to_string kind) size seed
          shards)
      QCheck.Gen.(
        (* k=4 (20 switches, 16 hosts) is the expensive case — keep it
           in the pool but less frequent than the small topologies. *)
        let* kind = frequency [ (3, return `Ring); (2, return (`Fat_tree 2)); (1, return (`Fat_tree 4)) ] in
        let* size = int_range 2 10 in
        (* fat_tree switch count depends only on k, not [size] *)
        let switches = match kind with `Ring -> size | `Fat_tree 2 -> 5 | `Fat_tree _ -> 20 in
        let* seed = int_range 0 10_000 in
        let* shards = int_range 2 (min 8 switches) in
        return (kind, size, seed, shards))
  in
  QCheck.Test.make ~count:12
    ~name:"random topology: sharded = sequential, adaptive = static" gen
    (fun (kind, size, seed, shards) ->
      let seq = parsim_run ~topo_kind:kind ~size ~seed ~shards:1 () in
      if Array.fold_left ( + ) 0 seq.Parsim.host_received = 0 then
        QCheck.Test.fail_report "no traffic delivered — vacuous comparison";
      (* The conformance guarantee requires no entity to see two
         arrivals on one picosecond ([Parsim.result.tie_arrivals]);
         random seeds occasionally collide two senders' grids — e.g.
         seed 1980 on the k=2 tree puts two packets on switch 0 at the
         same instant and the merge order is then legitimately
         unspecified. Discard those draws instead of comparing. *)
      QCheck.assume (seq.Parsim.tie_arrivals = 0);
      List.for_all
        (fun (label, horizon) ->
          let par = parsim_run ~horizon ~topo_kind:kind ~size ~seed ~shards () in
          if seq.Parsim.metrics_json <> par.Parsim.metrics_json then
            QCheck.Test.fail_reportf "%s: merged metrics snapshots diverge" label;
          if seq.Parsim.trace <> par.Parsim.trace then
            QCheck.Test.fail_reportf "%s: merged traces diverge" label;
          if seq.Parsim.arrival_digest <> par.Parsim.arrival_digest then
            QCheck.Test.fail_reportf "%s: arrival digests diverge" label;
          seq.Parsim.host_received = par.Parsim.host_received
          && seq.Parsim.host_sent = par.Parsim.host_sent)
        [ ("adaptive", Parsim.Adaptive); ("static", Parsim.Static) ])

(* The adaptive horizon's whole point: on sparse traffic it must not
   execute MORE rounds than static windows, and on a concrete sparse
   scenario it should execute strictly fewer (E27's sparse leg measures
   the same thing at k=8; this pins the property at QCheck scale). *)
let qcheck_adaptive_never_more_rounds =
  let gen =
    QCheck.make
      ~print:(fun (size, seed, shards) ->
        Printf.sprintf "(ring size=%d, seed=%d, shards=%d)" size seed shards)
      QCheck.Gen.(
        let* size = int_range 4 10 in
        let* seed = int_range 0 10_000 in
        let* shards = int_range 2 (min 8 size) in
        return (size, seed, shards))
  in
  QCheck.Test.make ~count:10 ~name:"adaptive horizon: never more rounds than static" gen
    (fun (size, seed, shards) ->
      let adaptive =
        parsim_run ~horizon:Parsim.Adaptive ~topo_kind:`Ring ~size ~seed ~shards ()
      in
      let static =
        parsim_run ~horizon:Parsim.Static ~topo_kind:`Ring ~size ~seed ~shards ()
      in
      QCheck.assume (adaptive.Parsim.tie_arrivals = 0);
      if adaptive.Parsim.rounds_executed > static.Parsim.rounds_executed then
        QCheck.Test.fail_reportf "adaptive executed %d rounds > static %d"
          adaptive.Parsim.rounds_executed static.Parsim.rounds_executed;
      adaptive.Parsim.arrival_digest = static.Parsim.arrival_digest)

(* EFSM extension: a RANDOM per-flow transition table — random guards,
   register updates and next-states, optionally with timeout sweeps —
   driven by a random packet interleaving on a sharded ring must evolve
   identically under both queue backends and every shard count. The
   drop decision depends on the flow's post-transition state, so a
   divergence in any flow's state evolution surfaces in the merged
   trace, and the exporter puts [pisa.efsm.state_hash] in the merged
   metrics, so it also surfaces as a register-level digest mismatch. *)

module Efsm = Pisa.Efsm

let operand_to_string = function
  | Efsm.Const n -> string_of_int n
  | Efsm.State -> "state"
  | Efsm.Input -> "in"
  | Efsm.Reg r -> Printf.sprintf "r%d" r

let rec guard_to_string = function
  | Efsm.Always -> "true"
  | Efsm.Cmp (c, a, b) ->
      let op =
        match c with
        | Efsm.Eq -> "=="
        | Efsm.Ne -> "!="
        | Efsm.Lt -> "<"
        | Efsm.Le -> "<="
        | Efsm.Gt -> ">"
        | Efsm.Ge -> ">="
      in
      Printf.sprintf "%s %s %s" (operand_to_string a) op (operand_to_string b)
  | Efsm.All gs -> "(" ^ String.concat " && " (List.map guard_to_string gs) ^ ")"
  | Efsm.Any gs -> "(" ^ String.concat " || " (List.map guard_to_string gs) ^ ")"

let update_to_string u =
  let bin name a b = Printf.sprintf "%s(%s, %s)" name (operand_to_string a) (operand_to_string b) in
  match u with
  | Efsm.Set o -> operand_to_string o
  | Efsm.Add (a, b) -> bin "add" a b
  | Efsm.Sub (a, b) -> bin "sub" a b
  | Efsm.Sat_add (a, b) -> bin "sat_add" a b
  | Efsm.Sat_sub (a, b) -> bin "sat_sub" a b
  | Efsm.Min (a, b) -> bin "min" a b
  | Efsm.Max (a, b) -> bin "max" a b

let table_to_string table =
  String.concat "; "
    (List.map
       (fun (t : Efsm.transition) ->
         Printf.sprintf "on %d when %s => %d {%s}" t.Efsm.from_state
           (guard_to_string t.Efsm.guard) t.Efsm.next_state
           (String.concat "; "
              (List.map
                 (fun (a : Efsm.action) ->
                   Printf.sprintf "r%d = %s" a.Efsm.reg (update_to_string a.Efsm.update))
                 t.Efsm.actions)))
       table)

let gen_efsm_table =
  QCheck.Gen.(
    let operand =
      oneof
        [
          map (fun n -> Efsm.Const n) (int_bound 64);
          return Efsm.Input;
          return Efsm.State;
          map (fun r -> Efsm.Reg r) (int_bound 1);
        ]
    in
    let guard =
      frequency
        [
          (1, return Efsm.Always);
          ( 4,
            map3
              (fun c a b -> Efsm.Cmp (c, a, b))
              (oneofl [ Efsm.Eq; Efsm.Ne; Efsm.Lt; Efsm.Le; Efsm.Gt; Efsm.Ge ])
              operand operand );
        ]
    in
    let update =
      oneof
        [
          map (fun o -> Efsm.Set o) operand;
          map2 (fun a b -> Efsm.Add (a, b)) operand operand;
          map2 (fun a b -> Efsm.Sat_add (a, b)) operand operand;
          map2 (fun a b -> Efsm.Sat_sub (a, b)) operand operand;
          map2 (fun a b -> Efsm.Min (a, b)) operand operand;
          map2 (fun a b -> Efsm.Max (a, b)) operand operand;
        ]
    in
    let action = map2 (fun reg update -> { Efsm.reg; update }) (int_bound 1) update in
    let transition =
      let* from_state = int_bound 3 in
      let* g = guard in
      let* next_state = int_bound 3 in
      let* actions = list_size (int_bound 2) action in
      return { Efsm.from_state; guard = g; next_state; actions }
    in
    list_size (int_range 1 8) transition)

let efsm_parsim_run ~table ~timeout_us ~seed ~shards =
  let module Topology = Evcore.Topology in
  let switches = 4 in
  let topo = Topology.ring ~switches () in
  let addr_of_host h = Netcore.Ipv4_addr.of_octets 10 0 0 h in
  let host_of_addr a = Netcore.Ipv4_addr.to_int a land 0xff in
  let program : Evcore.Program.spec =
   fun ctx ->
    let e =
      Efsm.create ~alloc:ctx.Evcore.Program.alloc
        ?timeout:(if timeout_us = 0 then None else Some (Sim_time.us timeout_us))
        ~name:"q" ~entries:32 ~nregs:2 ~transitions:table ()
    in
    let sweep_timer =
      if timeout_us = 0 then None
      else Some (ctx.Evcore.Program.add_timer ~period:(Sim_time.us timeout_us))
    in
    Evcore.Program.make ~name:"qcheck-efsm"
      ~ingress:(fun ctx pkt ->
        match pkt.Netcore.Packet.ip with
        | Some ip ->
            (* Fold flows onto 32 keys so contexts are revisited. *)
            let key = Apps.Stateful_fw.key_of pkt land 31 in
            let o =
              Efsm.step e ~now:(ctx.Evcore.Program.now ()) ~key
                ~input:(Netcore.Packet.len pkt land 63)
            in
            (* Behaviour depends on the evolved state: an odd state
               drops, so any divergence shows up in the trace. *)
            if o.Efsm.state land 1 = 1 then Evcore.Program.Drop
            else
              Evcore.Program.Forward
                (Topology.ring_route ~switches ~sw:ctx.Evcore.Program.switch_id
                   ~dst_host:(host_of_addr ip.Netcore.Ipv4.dst))
        | None -> Evcore.Program.Drop)
      ~timer:(fun ctx ev ->
        if sweep_timer = Some ev.Devents.Event.id then
          ignore (Efsm.sweep e ~now:(ctx.Evcore.Program.now ()) : int))
      ()
  in
  let until = Sim_time.us 120 in
  let cfg =
    Parsim.config ~shards ~record_trace:true ~until
      ~switch_config:(fun sw ->
        let cfg = Event_switch.default_config Evcore.Arch.event_pisa_full in
        { cfg with Event_switch.seed = seed + (31 * sw) })
      ~program:(fun _ -> program)
      ~on_shard:(fun ctx ->
        List.iter
          (fun (h, host) ->
            let dst = (h + 1) mod switches in
            let flow =
              Netcore.Flow.make ~src:(addr_of_host h) ~dst:(addr_of_host dst)
                ~proto:Netcore.Ipv4.proto_udp ~src_port:(4000 + h) ~dst_port:(5000 + dst)
                ()
            in
            let rng = Stats.Rng.create ~seed:(seed + (7919 * h)) in
            ignore
              (Workloads.Traffic.cbr ~sched:ctx.Parsim.sched ~flow
                 ~pkt_bytes:(96 + (64 * h))
                 ~rate_gbps:1.
                 ~stop:(until - Sim_time.us 60)
                 ~jitter:(rng, Sim_time.ns 30)
                 ~send:(Evcore.Host.send host) ()
                : Workloads.Traffic.t))
          ctx.Parsim.hosts)
      ()
  in
  Parsim.run cfg topo

let qcheck_efsm_evolution_conforms =
  let gen =
    QCheck.make
      ~print:(fun (table, timeout_us, seed) ->
        Printf.sprintf "(timeout=%dus, seed=%d, table=[%s])" timeout_us seed
          (table_to_string table))
      QCheck.Gen.(
        let* table = gen_efsm_table in
        let* timeout_us = oneofl [ 0; 30 ] in
        let* seed = int_range 0 10_000 in
        return (table, timeout_us, seed))
  in
  QCheck.Test.make ~count:8 ~name:"random EFSM table: identical across backends and shards" gen
    (fun (table, timeout_us, seed) ->
      let run ~backend ~shards =
        with_default_backend backend (fun () -> efsm_parsim_run ~table ~timeout_us ~seed ~shards)
      in
      let canon = run ~backend:Eventsim.Sched_backend.Heap ~shards:1 in
      if not (String.length canon.Parsim.metrics_json > 2) then
        QCheck.Test.fail_report "empty metrics — vacuous comparison";
      List.for_all
        (fun (backend, shards) ->
          let r = run ~backend ~shards in
          if r.Parsim.trace <> canon.Parsim.trace then
            QCheck.Test.fail_reportf "trace diverges at %s/%d-shard"
              (Eventsim.Sched_backend.to_string backend)
              shards;
          if r.Parsim.metrics_json <> canon.Parsim.metrics_json then
            QCheck.Test.fail_reportf "metrics (incl. efsm state_hash) diverge at %s/%d-shard"
              (Eventsim.Sched_backend.to_string backend)
              shards;
          r.Parsim.host_received = canon.Parsim.host_received)
        [
          (Eventsim.Sched_backend.Heap, 2);
          (Eventsim.Sched_backend.Heap, 4);
          (Eventsim.Sched_backend.Wheel, 1);
          (Eventsim.Sched_backend.Wheel, 2);
          (Eventsim.Sched_backend.Wheel, 4);
          (Eventsim.Sched_backend.Ladder, 1);
          (Eventsim.Sched_backend.Ladder, 2);
          (Eventsim.Sched_backend.Ladder, 4);
        ])

(* CEP extension: the detector's [pisa.efsm.*] series must be
   shard-count-independent line for line, not only as a whole-snapshot
   digest — a stall or sweep counter drifting under partitioning would
   otherwise hide inside one opaque hash. The E25 SYN scenario
   exercises the full counter surface: per-event steps, broadcast
   window ticks (step_all) and idle-timeout sweeps. *)

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let efsm_metric_lines json =
  String.split_on_char '\n' json |> List.filter (fun l -> contains_substring l "pisa.efsm.")

let test_sharded_efsm_metrics_conform () =
  let module E25 = Experiments.E25_cep in
  let run shards =
    Parsim.run
      (E25.scenario E25.Syn ~shards ~record_trace:false ~seed:42 ~until:(Sim_time.us 400) ())
      (Evcore.Topology.ring ~switches:8 ())
  in
  let canon = run 1 in
  let canon_series = efsm_metric_lines canon.Parsim.metrics_json in
  let has sub = List.exists (fun l -> contains_substring l sub) canon_series in
  List.iter
    (fun s ->
      Alcotest.(check bool) ("series pisa.efsm." ^ s ^ " exported") true (has ("pisa.efsm." ^ s)))
    [ "steps"; "stalls"; "fired"; "sweeps"; "evictions_timeout"; "occupancy"; "state_hash" ];
  List.iter
    (fun shards ->
      let r = run shards in
      Alcotest.(check (list string))
        (Printf.sprintf "%d-shard efsm series equal sequential" shards)
        canon_series
        (efsm_metric_lines r.Parsim.metrics_json))
    [ 2; 4 ]

let suite =
  [
    Alcotest.test_case "same seed, identical trace" `Quick test_trace_identical;
    Alcotest.test_case "same seed, identical metrics" `Quick test_metrics_identical;
    Alcotest.test_case "different seed diverges" `Quick test_seed_changes_behaviour;
    Alcotest.test_case "heap vs wheel, identical run" `Quick test_backends_identical;
    Alcotest.test_case "heap vs wheel, identical chaos" `Quick test_chaos_backends_identical;
    Alcotest.test_case "chaos run, identical metrics" `Quick test_chaos_identical;
    Alcotest.test_case "chaos run, seed diverges" `Quick test_chaos_seed_diverges;
    Alcotest.test_case "sharded efsm metrics conform" `Quick
      test_sharded_efsm_metrics_conform;
    QCheck_alcotest.to_alcotest qcheck_parsim_matches_sequential;
    QCheck_alcotest.to_alcotest qcheck_adaptive_never_more_rounds;
    QCheck_alcotest.to_alcotest qcheck_efsm_evolution_conforms;
  ]
