(* Tests for the event substrate: event queues, timer unit, packet
   generator, event merger, shared registers (incl. Figure 3
   aggregation). *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Event = Devents.Event
module Event_queue = Devents.Event_queue
module Timer_unit = Devents.Timer_unit
module Packet_gen = Devents.Packet_gen
module Event_merger = Devents.Event_merger
module Shared_register = Devents.Shared_register
module Pipeline = Pisa.Pipeline

let test_event_classes () =
  Alcotest.(check int) "thirteen classes (Table 1)" 13 Event.num_classes;
  Alcotest.(check int) "list matches" Event.num_classes (List.length Event.all_classes);
  (* Indexes are a bijection. *)
  let seen = Array.make Event.num_classes false in
  List.iter (fun c -> seen.(Event.cls_index c) <- true) Event.all_classes;
  Alcotest.(check bool) "bijection" true (Array.for_all Fun.id seen)

let test_event_queue_bounds () =
  let q = Event_queue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Event_queue.push q 1);
  Alcotest.(check bool) "push 2" true (Event_queue.push q 2);
  Alcotest.(check bool) "push 3 drops" false (Event_queue.push q 3);
  Alcotest.(check int) "dropped" 1 (Event_queue.dropped q);
  Alcotest.(check (option int)) "fifo" (Some 1) (Event_queue.pop q);
  Alcotest.(check int) "watermark" 2 (Event_queue.high_watermark q)

let test_timer_quantisation () =
  let sched = Scheduler.create () in
  let fired = ref [] in
  let tu =
    Timer_unit.create ~sched ~resolution:(Sim_time.ns 100)
      ~sink:(fun ev -> match ev with Event.Timer t -> fired := t :: !fired | _ -> ())
      ()
  in
  (* Period 250ns with 100ns resolution: firings quantise up
     (scheduled 250/500/750/1000 -> fired 300/500/800/1000). *)
  ignore (Timer_unit.add_periodic tu ~period:(Sim_time.ns 250));
  Scheduler.run ~until:(Sim_time.ns 1000) sched;
  let fired = List.rev !fired in
  Alcotest.(check int) "count" 4 (List.length fired);
  List.iter
    (fun (t : Event.timer_event) ->
      Alcotest.(check int) "fired on tick" 0 (t.Event.fired mod Sim_time.ns 100);
      Alcotest.(check bool) "never early" true (t.Event.fired >= t.Event.scheduled))
    fired

let test_timer_cancel () =
  let sched = Scheduler.create () in
  let count = ref 0 in
  let tu = Timer_unit.create ~sched ~sink:(fun _ -> incr count) () in
  let id = Timer_unit.add_periodic tu ~period:(Sim_time.us 1) in
  ignore
    (Scheduler.schedule sched ~at:(Sim_time.us 3 + Sim_time.ns 500) (fun () ->
         Timer_unit.cancel tu id));
  Scheduler.run ~until:(Sim_time.us 10) sched;
  Alcotest.(check int) "three firings then cancelled" 3 !count

let test_oneshot_timer () =
  let sched = Scheduler.create () in
  let times = ref [] in
  let tu =
    Timer_unit.create ~sched
      ~sink:(fun ev -> times := Event.time_of ev :: !times)
      ()
  in
  ignore (Timer_unit.add_oneshot tu ~delay:(Sim_time.us 5));
  Scheduler.run sched;
  Alcotest.(check (list int)) "fires once" [ Sim_time.us 5 ] !times;
  Alcotest.(check int) "no active timers left" 0 (Timer_unit.active tu)

let mk_pkt () =
  Netcore.Packet.udp_packet
    ~src:(Netcore.Ipv4_addr.of_string "10.0.0.1")
    ~dst:(Netcore.Ipv4_addr.of_string "10.0.0.2")
    ~src_port:1 ~dst_port:2 ~payload_len:22 ()

let test_packet_gen_count () =
  let sched = Scheduler.create () in
  let got = ref 0 in
  let pg = Packet_gen.create ~sched ~sink:(fun _ -> incr got) () in
  Packet_gen.configure pg ~period:(Sim_time.us 1) ~count:5 ~template:(fun _ -> mk_pkt ()) ();
  Scheduler.run ~until:(Sim_time.ms 1) sched;
  Alcotest.(check int) "exactly count" 5 !got;
  Alcotest.(check bool) "stopped" false (Packet_gen.running pg)

let test_packet_gen_reconfigure () =
  let sched = Scheduler.create () in
  let got = ref 0 in
  let pg = Packet_gen.create ~sched ~sink:(fun _ -> incr got) () in
  Packet_gen.configure pg ~period:(Sim_time.us 1) ~template:(fun _ -> mk_pkt ()) ();
  ignore
    (Scheduler.schedule sched ~at:(Sim_time.us 10 + 1) (fun () -> Packet_gen.stop pg));
  Scheduler.run ~until:(Sim_time.us 20) sched;
  Alcotest.(check int) "stopped at 10us" 10 !got

(* --- Event merger --- *)

(* The merger's carrier is a reused scratch record, so the fixture
   snapshots what the tests assert on at receipt time. *)
type carrier_snap = { has_pkt : bool; classes : Event.cls list }

let merger_fixture ?config () =
  let sched = Scheduler.create () in
  let pipeline = Pipeline.create ~sched () in
  let carriers = ref [] in
  let merger =
    Event_merger.create ~sched ~pipeline ?config
      ~process:(fun c ~exit_time:_ ->
        let classes =
          List.init c.Event_merger.n_events (fun i ->
              Event.cls_of c.Event_merger.events.(i))
        in
        let has_pkt = not (Netcore.Packet.is_nil c.Event_merger.pkt) in
        carriers := { has_pkt; classes } :: !carriers)
      ()
  in
  (sched, pipeline, merger, carriers)

let timer_ev n = Event.Timer { id = 0; period = 0; scheduled = n; fired = n; count = n }

let test_merger_piggyback () =
  let sched, _p, merger, carriers = merger_fixture () in
  ignore (Event_merger.offer_event merger (timer_ev 1));
  ignore (Event_merger.offer_packet merger Event_merger.Ingress (mk_pkt ()));
  Scheduler.run sched;
  match List.rev !carriers with
  | [ c ] ->
      Alcotest.(check bool) "packet present" true c.has_pkt;
      Alcotest.(check int) "event piggybacked" 1 (List.length c.classes);
      Alcotest.(check int) "no empty carriers" 0 (Event_merger.empty_carriers merger);
      Alcotest.(check int) "piggyback count" 1 (Event_merger.piggybacked_events merger)
  | cs -> Alcotest.failf "expected one carrier, got %d" (List.length cs)

let test_merger_empty_carrier () =
  let sched, _p, merger, carriers = merger_fixture () in
  ignore (Event_merger.offer_event merger (timer_ev 1));
  Scheduler.run sched;
  match !carriers with
  | [ c ] ->
      Alcotest.(check bool) "no packet" false c.has_pkt;
      Alcotest.(check int) "empty carrier counted" 1 (Event_merger.empty_carriers merger)
  | cs -> Alcotest.failf "expected one carrier, got %d" (List.length cs)

let test_merger_one_admission_per_cycle () =
  let sched, pipeline, merger, carriers = merger_fixture () in
  for _ = 1 to 5 do
    ignore (Event_merger.offer_packet merger Event_merger.Ingress (mk_pkt ()))
  done;
  Scheduler.run sched;
  Alcotest.(check int) "all admitted" 5 (List.length !carriers);
  (* 5 admissions at 1/cycle: the last admission is at cycle 4. *)
  Alcotest.(check int) "admissions" 5 (Pipeline.admissions pipeline);
  Alcotest.(check int) "clock advanced 4 cycles" (4 * Pipeline.clock_period pipeline)
    (Scheduler.now sched)

let test_merger_priority_order () =
  let sched, _p, merger, carriers = merger_fixture () in
  (* Offer low-priority first; the carrier must list link-change before
     enqueue. *)
  let be =
    Event.Enqueue
      {
        Event.port = 0;
        qid = 0;
        pkt_len = 100;
        flow_id = 1;
        meta = [||];
        occupancy_pkts = 1;
        occupancy_bytes = 100;
        time = 0;
      }
  in
  ignore (Event_merger.offer_event merger be);
  ignore (Event_merger.offer_event merger (Event.Link_change { port = 1; up = false; time = 0 }));
  ignore (Event_merger.offer_packet merger Event_merger.Ingress (mk_pkt ()));
  Scheduler.run sched;
  match !carriers with
  | [ c ] ->
      Alcotest.(check (list string)) "priority order"
        [ "link-status-change"; "buffer-enqueue" ]
        (List.map Event.cls_name c.classes)
  | cs -> Alcotest.failf "expected one carrier, got %d" (List.length cs)

let test_merger_one_event_per_class_per_carrier () =
  let sched, _p, merger, carriers = merger_fixture () in
  ignore (Event_merger.offer_event merger (timer_ev 1));
  ignore (Event_merger.offer_event merger (timer_ev 2));
  Scheduler.run sched;
  (* Two timer events cannot share a carrier: two empty carriers. *)
  Alcotest.(check int) "two carriers" 2 (List.length !carriers);
  List.iter
    (fun c -> Alcotest.(check int) "one event each" 1 (List.length c.classes))
    !carriers

let test_merger_event_drop_accounting () =
  let config =
    { Event_merger.default_config with Event_merger.event_queue_capacity = 4 }
  in
  let sched, _p, merger, _carriers = merger_fixture ~config () in
  (* Offer 10 timer events at once; queue capacity 4 -> 6 dropped. *)
  let accepted = ref 0 in
  for i = 1 to 10 do
    if Event_merger.offer_event merger (timer_ev i) then incr accepted
  done;
  Scheduler.run sched;
  Alcotest.(check int) "accepted" 4 !accepted;
  match Event_merger.event_drops merger with
  | [ (cls, n) ] ->
      Alcotest.(check string) "class" "timer-expiration" (Event.cls_name cls);
      Alcotest.(check int) "dropped" 6 n
  | other -> Alcotest.failf "unexpected drop list of length %d" (List.length other)

(* --- Shared registers --- *)

let shared_fixture mode =
  let sched = Scheduler.create () in
  let pipeline = Pipeline.create ~sched () in
  let alloc = Pisa.Register_alloc.create () in
  let reg =
    Shared_register.create ~alloc ~pipeline ~mode ~name:"qsize" ~entries:8 ~width:32 ()
  in
  (sched, pipeline, alloc, reg)

let test_multiport_immediate () =
  let _sched, _p, _alloc, reg = shared_fixture Shared_register.Multiport in
  Shared_register.event_add reg Shared_register.Enq_side 3 200;
  Alcotest.(check int) "immediately visible" 200 (Shared_register.read reg 3);
  Shared_register.event_add reg Shared_register.Deq_side 3 (-50);
  Alcotest.(check int) "decrement" 150 (Shared_register.read reg 3);
  Alcotest.(check int) "no pending" 0 (Shared_register.pending_ops reg);
  Alcotest.(check bool) "no staleness recorded" true
    (Shared_register.max_staleness_cycles reg = neg_infinity)

let test_aggregated_coalesce_and_drain () =
  let sched, pipeline, _alloc, reg = shared_fixture Shared_register.Aggregated in
  (* Two event-side adds at cycle 0 coalesce into one dirty entry. *)
  Shared_register.event_add reg Shared_register.Enq_side 2 100;
  Shared_register.event_add reg Shared_register.Enq_side 2 50;
  Alcotest.(check int) "coalesced" 1 (Shared_register.pending_ops reg);
  Alcotest.(check int) "main still stale" 0 (Shared_register.read reg 2);
  Alcotest.(check int) "true value" 150 (Shared_register.true_value reg 2);
  (* Let 10 idle cycles pass; the drain budget then covers the op. *)
  Scheduler.run ~until:(10 * Pipeline.clock_period pipeline) sched;
  Alcotest.(check int) "applied after idle cycles" 150 (Shared_register.read reg 2);
  Alcotest.(check int) "none pending" 0 (Shared_register.pending_ops reg);
  Alcotest.(check int) "one applied op" 1 (Shared_register.applied_ops reg)

let test_aggregated_conservation () =
  let sched, pipeline, _alloc, reg = shared_fixture Shared_register.Aggregated in
  let rng = Stats.Rng.create ~seed:5 in
  let truth = Array.make 8 0 in
  (* Random event-side traffic across 200 cycles. *)
  for c = 0 to 199 do
    ignore
      (Scheduler.schedule sched
         ~at:(c * Pipeline.clock_period pipeline)
         (fun () ->
           let i = Stats.Rng.int rng 8 in
           let delta = Stats.Rng.int rng 100 - 50 in
           truth.(i) <- truth.(i) + delta;
           let side =
             if Stats.Rng.bool rng then Shared_register.Enq_side else Shared_register.Deq_side
           in
           Shared_register.event_add reg side i delta))
  done;
  Scheduler.run sched;
  Shared_register.sync reg;
  for i = 0 to 7 do
    (* Values are 32-bit wrapped; compare in that domain. *)
    Alcotest.(check int)
      (Printf.sprintf "slot %d conserved" i)
      (truth.(i) land 0xffffffff)
      (Shared_register.read reg i)
  done

let test_aggregated_staleness_bounded_when_idle () =
  let sched, pipeline, _alloc, reg = shared_fixture Shared_register.Aggregated in
  (* With an idle pipeline, staleness stays tiny: each op is applied at
     the next access. *)
  for k = 0 to 49 do
    ignore
      (Scheduler.schedule sched
         ~at:(k * 10 * Pipeline.clock_period pipeline)
         (fun () -> Shared_register.event_add reg Shared_register.Enq_side (k mod 8) 1))
  done;
  Scheduler.run sched;
  Shared_register.sync reg;
  let h = Shared_register.staleness reg in
  Alcotest.(check bool) "some ops applied with staleness tracked" true
    (Stats.Histogram.count h > 0);
  Alcotest.(check bool) "staleness below 15 cycles" true (Stats.Histogram.max_seen h <= 15.)

let test_aggregated_costs_three_arrays () =
  let _sched, _p, alloc, reg = shared_fixture Shared_register.Aggregated in
  Alcotest.(check int) "3x bits charged" (3 * 8 * 32) (Shared_register.total_bits reg);
  Alcotest.(check int) "allocator agrees" (3 * 8 * 32) (Pisa.Register_alloc.total_bits alloc)

let qcheck_aggregated_matches_multiport =
  (* Property: after sync, an Aggregated register holds exactly what a
     Multiport register holds under the same op sequence. *)
  QCheck.Test.make ~name:"aggregated == multiport after sync" ~count:100
    QCheck.(list (tup3 (int_bound 7) (int_range (-100) 100) bool))
    (fun ops ->
      let sched = Scheduler.create () in
      let pipeline = Pipeline.create ~sched () in
      let alloc = Pisa.Register_alloc.create () in
      let mk mode =
        Shared_register.create ~alloc ~pipeline ~mode ~name:"x" ~entries:8 ~width:32 ()
      in
      let a = mk Shared_register.Aggregated and m = mk Shared_register.Multiport in
      List.iter
        (fun (i, delta, enq) ->
          let side = if enq then Shared_register.Enq_side else Shared_register.Deq_side in
          Shared_register.event_add a side i delta;
          Shared_register.event_add m side i delta)
        ops;
      Shared_register.sync a;
      let ok = ref true in
      for i = 0 to 7 do
        if Shared_register.read a i <> Shared_register.read m i then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "event classes (Table 1)" `Quick test_event_classes;
    Alcotest.test_case "event queue bounds" `Quick test_event_queue_bounds;
    Alcotest.test_case "timer quantisation" `Quick test_timer_quantisation;
    Alcotest.test_case "timer cancel" `Quick test_timer_cancel;
    Alcotest.test_case "oneshot timer" `Quick test_oneshot_timer;
    Alcotest.test_case "packet gen count" `Quick test_packet_gen_count;
    Alcotest.test_case "packet gen stop" `Quick test_packet_gen_reconfigure;
    Alcotest.test_case "merger piggyback" `Quick test_merger_piggyback;
    Alcotest.test_case "merger empty carrier" `Quick test_merger_empty_carrier;
    Alcotest.test_case "merger admission rate" `Quick test_merger_one_admission_per_cycle;
    Alcotest.test_case "merger priority order" `Quick test_merger_priority_order;
    Alcotest.test_case "merger one event/class/carrier" `Quick
      test_merger_one_event_per_class_per_carrier;
    Alcotest.test_case "merger drop accounting" `Quick test_merger_event_drop_accounting;
    Alcotest.test_case "multiport immediate" `Quick test_multiport_immediate;
    Alcotest.test_case "aggregated coalesce+drain" `Quick test_aggregated_coalesce_and_drain;
    Alcotest.test_case "aggregated conservation" `Quick test_aggregated_conservation;
    Alcotest.test_case "aggregated staleness bounded" `Quick
      test_aggregated_staleness_bounded_when_idle;
    Alcotest.test_case "aggregated costs 3 arrays" `Quick test_aggregated_costs_three_arrays;
    QCheck_alcotest.to_alcotest qcheck_aggregated_matches_multiport;
  ]
