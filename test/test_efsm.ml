(* Unit and regression tests for the per-flow EFSM extern: transition
   semantics (first match, parallel updates, saturation), table
   management (LRU capacity eviction, timeout sweeps and the
   eviction-vs-in-flight race), the OPP contention model, and the
   metrics/exporter surface. *)

module Efsm = Pisa.Efsm
module Sim_time = Eventsim.Sim_time
module Scheduler = Eventsim.Scheduler

let tr ?(guard = Efsm.Always) ?(actions = []) from_state next_state =
  { Efsm.from_state; guard; next_state; actions }

let act reg update = { Efsm.reg; update }

(* --- transition semantics --- *)

let test_first_match_wins () =
  (* Two transitions from state 0 both match; the first in list order
     must fire. *)
  let e =
    Efsm.create ~name:"t" ~entries:4 ~nregs:1
      ~transitions:
        [
          tr ~guard:(Efsm.Cmp (Efsm.Ge, Efsm.Input, Efsm.Const 10)) 0 2;
          tr 0 1 ~actions:[ act 0 (Efsm.Set (Efsm.Const 7)) ];
        ]
      ()
  in
  let o = Efsm.step e ~now:0 ~key:1 ~input:50 in
  Alcotest.(check bool) "fired" true o.Efsm.fired;
  Alcotest.(check bool) "inserted" true o.Efsm.inserted;
  Alcotest.(check int) "first match took state 2" 2 o.Efsm.state;
  Alcotest.(check (option (array int)) "second transition's action did not run")
    (Some [| 0 |]) (Efsm.regs_of e ~key:1);
  let o2 = Efsm.step e ~now:0 ~key:2 ~input:3 in
  Alcotest.(check int) "guard miss falls through" 1 o2.Efsm.state

let test_parallel_update_swaps () =
  (* r0 = r1; r1 = r0 must swap: RHSs read pre-transition values. *)
  let e =
    Efsm.create ~name:"swap" ~entries:2 ~nregs:2
      ~transitions:
        [
          tr ~guard:(Efsm.Cmp (Efsm.Eq, Efsm.Input, Efsm.Const 0)) 0 0
            ~actions:[ act 0 (Efsm.Set (Efsm.Const 3)); act 1 (Efsm.Set (Efsm.Const 9)) ];
          tr 0 0 ~actions:[ act 0 (Efsm.Set (Efsm.Reg 1)); act 1 (Efsm.Set (Efsm.Reg 0)) ];
        ]
      ()
  in
  ignore (Efsm.step e ~now:0 ~key:5 ~input:0 : Efsm.outcome);
  ignore (Efsm.step e ~now:0 ~key:5 ~input:1 : Efsm.outcome);
  Alcotest.(check (option (array int)) "swapped") (Some [| 9; 3 |]) (Efsm.regs_of e ~key:5)

let test_guard_never_fires () =
  (* A table whose only guard can never hold: every step is a guard
     miss, state never moves, no actions run — but the flow is still
     tracked (inserted, occupancy 1). *)
  let e =
    Efsm.create ~name:"never" ~entries:4 ~nregs:1
      ~transitions:[ tr ~guard:(Efsm.Cmp (Efsm.Lt, Efsm.Input, Efsm.Const 0)) 0 1 ]
      ()
  in
  for i = 1 to 5 do
    let o = Efsm.step e ~now:i ~key:9 ~input:i in
    Alcotest.(check bool) "never fires" false o.Efsm.fired;
    Alcotest.(check int) "state pinned at 0" 0 o.Efsm.state
  done;
  Alcotest.(check int) "all misses" 5 (Efsm.guard_misses e);
  Alcotest.(check int) "no firings" 0 (Efsm.fired e);
  Alcotest.(check int) "flow still tracked" 1 (Efsm.occupancy e)

let test_self_loop_saturates () =
  (* A saturating self-loop on an 8-bit register must clamp at 255 and
     stay there no matter how many more steps arrive; Sat_sub floors
     at 0 symmetrically. *)
  let e =
    Efsm.create ~name:"sat" ~entries:2 ~nregs:2 ~width:8
      ~transitions:
        [
          tr ~guard:(Efsm.Cmp (Efsm.Eq, Efsm.Input, Efsm.Const 1)) 0 0
            ~actions:[ act 0 (Efsm.Sat_add (Efsm.Reg 0, Efsm.Const 10)) ];
          tr 0 0 ~actions:[ act 1 (Efsm.Sat_sub (Efsm.Reg 1, Efsm.Const 10)) ];
        ]
      ()
  in
  for i = 1 to 40 do
    ignore (Efsm.step e ~now:i ~key:1 ~input:1 : Efsm.outcome)
  done;
  ignore (Efsm.step e ~now:41 ~key:1 ~input:0 : Efsm.outcome);
  Alcotest.(check (option (array int)) "clamped at 2^8-1, floored at 0")
    (Some [| 255; 0 |])
    (Efsm.regs_of e ~key:1)

let test_wrapping_add () =
  let e =
    Efsm.create ~name:"wrap" ~entries:2 ~nregs:1 ~width:8
      ~transitions:[ tr 0 0 ~actions:[ act 0 (Efsm.Add (Efsm.Reg 0, Efsm.Const 200)) ] ]
      ()
  in
  ignore (Efsm.step e ~now:0 ~key:1 ~input:0 : Efsm.outcome);
  ignore (Efsm.step e ~now:1 ~key:1 ~input:0 : Efsm.outcome);
  Alcotest.(check (option (array int)) "400 mod 256") (Some [| 144 |]) (Efsm.regs_of e ~key:1)

(* --- table management --- *)

let test_capacity_overflow_lru () =
  (* entries=2: A then B fill the table; touching A makes B the LRU,
     so inserting C evicts B. A's registers survive untouched. *)
  let e =
    Efsm.create ~name:"lru" ~entries:2 ~nregs:1
      ~transitions:[ tr 0 0 ~actions:[ act 0 (Efsm.Add (Efsm.Reg 0, Efsm.Const 1)) ] ]
      ()
  in
  ignore (Efsm.step e ~now:10 ~key:100 ~input:0 : Efsm.outcome);
  ignore (Efsm.step e ~now:20 ~key:200 ~input:0 : Efsm.outcome);
  ignore (Efsm.step e ~now:30 ~key:100 ~input:0 : Efsm.outcome);
  let o = Efsm.step e ~now:40 ~key:300 ~input:0 in
  Alcotest.(check bool) "C inserted" true o.Efsm.inserted;
  Alcotest.(check int) "one capacity eviction" 1 (Efsm.evictions_capacity e);
  Alcotest.(check (option int) "B gone" None (Efsm.state_of e ~key:200));
  Alcotest.(check (option (array int)) "A survived with its count")
    (Some [| 2 |]) (Efsm.regs_of e ~key:100);
  Alcotest.(check int) "full" 2 (Efsm.occupancy e);
  (* The evicted flow's slot starts fresh if it returns. *)
  ignore (Efsm.step e ~now:50 ~key:200 ~input:0 : Efsm.outcome);
  Alcotest.(check (option (array int)) "B reinserted fresh")
    (Some [| 1 |]) (Efsm.regs_of e ~key:200)

let test_timeout_eviction_race () =
  (* The regression this pins: a sweep at time T must evict flows idle
     since T - timeout, but a flow stepped AT T (the in-flight
     transition racing the eviction timer) counts as refreshed and
     survives. *)
  let timeout = Sim_time.us 100 in
  let e =
    Efsm.create ~name:"race" ~entries:8 ~nregs:1 ~timeout
      ~transitions:[ tr 0 0 ~actions:[ act 0 (Efsm.Add (Efsm.Reg 0, Efsm.Const 1)) ] ]
      ()
  in
  ignore (Efsm.step e ~now:0 ~key:1 ~input:0 : Efsm.outcome);
  ignore (Efsm.step e ~now:(Sim_time.us 40) ~key:2 ~input:0 : Efsm.outcome);
  (* Key 3 is stepped at the sweep's own timestamp. *)
  ignore (Efsm.step e ~now:(Sim_time.us 100) ~key:3 ~input:0 : Efsm.outcome);
  let evicted = Efsm.sweep e ~now:(Sim_time.us 100) in
  Alcotest.(check int) "only the idle-since-0 flow evicted" 1 evicted;
  Alcotest.(check (option int) "key 1 gone" None (Efsm.state_of e ~key:1));
  Alcotest.(check bool) "key 2 (idle 60us < timeout) survives" true
    (Efsm.state_of e ~key:2 <> None);
  Alcotest.(check bool) "key 3 (stepped at sweep time) survives" true
    (Efsm.state_of e ~key:3 <> None);
  Alcotest.(check int) "counted" 1 (Efsm.evictions_timeout e);
  (* A later sweep with nothing idle evicts nothing. *)
  Alcotest.(check int) "idle sweep" 0 (Efsm.sweep e ~now:(Sim_time.us 120))

let test_sweep_without_timeout_is_noop () =
  let e = Efsm.create ~name:"nt" ~entries:2 ~nregs:1 ~transitions:[ tr 0 0 ] () in
  ignore (Efsm.step e ~now:0 ~key:1 ~input:0 : Efsm.outcome);
  Alcotest.(check int) "no timeout, no eviction" 0 (Efsm.sweep e ~now:(Sim_time.ms 1000))

let test_attach_sweeper () =
  let sched = Scheduler.create () in
  let e =
    Efsm.create ~name:"sw" ~entries:4 ~nregs:1 ~timeout:(Sim_time.us 50)
      ~transitions:[ tr 0 0 ]
      ()
  in
  Efsm.attach_sweeper e ~sched ~period:(Sim_time.us 50);
  Scheduler.post sched ~at:(Sim_time.us 1) (fun () ->
      ignore (Efsm.step e ~now:(Sim_time.us 1) ~key:7 ~input:0 : Efsm.outcome));
  Scheduler.run ~until:(Sim_time.us 200) sched;
  Alcotest.(check int) "idle flow swept out" 0 (Efsm.occupancy e);
  Alcotest.(check bool) "sweeps ran" true (Efsm.sweeps e >= 2)

(* --- broadcast (step_all) --- *)

let test_step_all_broadcast () =
  (* A window reset: every tracked flow sees the broadcast input and
     resets r0; states in the throttled state (1) release to 0. *)
  let e =
    Efsm.create ~name:"bc" ~entries:8 ~nregs:1
      ~transitions:
        [
          tr ~guard:(Efsm.Cmp (Efsm.Eq, Efsm.Input, Efsm.Const 99)) 0 0
            ~actions:[ act 0 (Efsm.Set (Efsm.Const 0)) ];
          tr ~guard:(Efsm.Cmp (Efsm.Eq, Efsm.Input, Efsm.Const 99)) 1 0
            ~actions:[ act 0 (Efsm.Set (Efsm.Const 0)) ];
          tr 0 1 ~actions:[ act 0 (Efsm.Add (Efsm.Reg 0, Efsm.Input)) ];
        ]
      ()
  in
  ignore (Efsm.step e ~now:0 ~key:1 ~input:5 : Efsm.outcome);
  ignore (Efsm.step e ~now:0 ~key:2 ~input:7 : Efsm.outcome);
  Alcotest.(check (option int) "throttled" (Some 1) (Efsm.state_of e ~key:1));
  Efsm.step_all e ~input:99;
  Alcotest.(check (option int) "released" (Some 0) (Efsm.state_of e ~key:1));
  Alcotest.(check (option (array int)) "reset") (Some [| 0 |]) (Efsm.regs_of e ~key:2);
  Alcotest.(check int) "both flows still tracked" 2 (Efsm.occupancy e)

(* --- contention model --- *)

let test_stall_accounting () =
  let cycle = ref 0 in
  let e =
    Efsm.create ~clock:(fun () -> !cycle) ~rmw_latency:4 ~name:"st" ~entries:8 ~nregs:1
      ~transitions:[ tr 0 0 ]
      ()
  in
  (* Fresh insert never stalls. *)
  let o = Efsm.step e ~now:0 ~key:1 ~input:0 in
  Alcotest.(check bool) "insert does not stall" false o.Efsm.stalled;
  (* Same flow within the window: stall. *)
  cycle := 3;
  let o = Efsm.step e ~now:1 ~key:1 ~input:0 in
  Alcotest.(check bool) "hit inside rmw window stalls" true o.Efsm.stalled;
  (* A different flow in the same window does not contend. *)
  let o = Efsm.step e ~now:1 ~key:2 ~input:0 in
  Alcotest.(check bool) "other flow unaffected" false o.Efsm.stalled;
  (* Same flow after the window has passed: clean. *)
  cycle := 8;
  let o = Efsm.step e ~now:2 ~key:1 ~input:0 in
  Alcotest.(check bool) "hit outside window is clean" false o.Efsm.stalled;
  Alcotest.(check int) "one stall total" 1 (Efsm.stalls e)

let test_single_hit_never_stalls () =
  (* Every packet its own flow — the uniform single-hit workload of
     E24. The contention model must stay exactly silent even with all
     arrivals in the same cycle. *)
  let e =
    Efsm.create ~clock:(fun () -> 0) ~rmw_latency:16 ~name:"u" ~entries:256 ~nregs:1
      ~transitions:[ tr 0 0 ]
      ()
  in
  for k = 1 to 200 do
    ignore (Efsm.step e ~now:k ~key:k ~input:0 : Efsm.outcome)
  done;
  Alcotest.(check int) "zero stalls" 0 (Efsm.stalls e)

(* --- validation, metrics, digest --- *)

let test_create_validates () =
  let rejects what f =
    match f () with
    | (_ : Efsm.t) -> Alcotest.fail ("expected Invalid_argument: " ^ what)
    | exception Invalid_argument _ -> ()
  in
  rejects "zero entries" (fun () ->
      Efsm.create ~name:"x" ~entries:0 ~nregs:1 ~transitions:[] ());
  rejects "state beyond state_bits" (fun () ->
      Efsm.create ~name:"x" ~entries:4 ~nregs:1 ~transitions:[ tr 0 256 ] ());
  rejects "register out of range" (fun () ->
      Efsm.create ~name:"x" ~entries:4 ~nregs:1
        ~transitions:[ tr 0 0 ~actions:[ act 3 (Efsm.Set (Efsm.Const 0)) ] ]
        ());
  rejects "zero timeout" (fun () ->
      Efsm.create ~name:"x" ~entries:4 ~nregs:1 ~timeout:0 ~transitions:[ tr 0 0 ] ());
  rejects "negative timeout" (fun () ->
      Efsm.create ~name:"x" ~entries:4 ~nregs:1 ~timeout:(-Sim_time.us 5)
        ~transitions:[ tr 0 0 ] ())

let test_sweep_releases_slots () =
  (* Regression: evicted slots must rejoin the free list. Before the
     fix, a sweep left the table logically empty but the free list
     drained, so the next insert burned a capacity eviction on a live
     flow — and once every slot had been swept, eviction scanned only
     invalid slots and crashed. *)
  let timeout = Sim_time.us 10 in
  let e =
    Efsm.create ~name:"free" ~entries:4 ~nregs:1 ~timeout
      ~transitions:[ tr 0 0 ~actions:[ act 0 (Efsm.Add (Efsm.Reg 0, Efsm.Const 1)) ] ]
      ()
  in
  for k = 1 to 4 do
    ignore (Efsm.step e ~now:0 ~key:k ~input:0 : Efsm.outcome)
  done;
  Alcotest.(check int) "table full" 4 (Efsm.occupancy e);
  Alcotest.(check int) "all idle flows swept" 4 (Efsm.sweep e ~now:(Sim_time.us 20));
  Alcotest.(check int) "empty after sweep" 0 (Efsm.occupancy e);
  (* Refill to capacity: swept slots are free again, so no LRU
     eviction may fire (pre-fix this evicted live flows, or crashed). *)
  for k = 11 to 14 do
    let o = Efsm.step e ~now:(Sim_time.us 21) ~key:k ~input:0 in
    Alcotest.(check bool) "reinserted into a freed slot" true o.Efsm.inserted
  done;
  Alcotest.(check int) "full again" 4 (Efsm.occupancy e);
  Alcotest.(check int) "no capacity evictions" 0 (Efsm.evictions_capacity e);
  Alcotest.(check int) "four timeout evictions" 4 (Efsm.evictions_timeout e);
  (* All four refilled flows are live with fresh registers. *)
  for k = 11 to 14 do
    Alcotest.(check (option (array int)))
      (Printf.sprintf "key %d fresh" k)
      (Some [| 1 |])
      (Efsm.regs_of e ~key:k)
  done

let test_partial_sweep_then_overflow () =
  (* A partial sweep frees some slots; subsequent inserts must consume
     the freed slots before evicting anyone. *)
  let timeout = Sim_time.us 10 in
  let e =
    Efsm.create ~name:"partial" ~entries:4 ~nregs:1 ~timeout ~transitions:[ tr 0 0 ] ()
  in
  ignore (Efsm.step e ~now:0 ~key:1 ~input:0 : Efsm.outcome);
  ignore (Efsm.step e ~now:0 ~key:2 ~input:0 : Efsm.outcome);
  ignore (Efsm.step e ~now:(Sim_time.us 15) ~key:3 ~input:0 : Efsm.outcome);
  ignore (Efsm.step e ~now:(Sim_time.us 15) ~key:4 ~input:0 : Efsm.outcome);
  Alcotest.(check int) "two idle flows swept" 2 (Efsm.sweep e ~now:(Sim_time.us 20));
  ignore (Efsm.step e ~now:(Sim_time.us 21) ~key:5 ~input:0 : Efsm.outcome);
  ignore (Efsm.step e ~now:(Sim_time.us 22) ~key:6 ~input:0 : Efsm.outcome);
  Alcotest.(check int) "freed slots reused, no eviction" 0 (Efsm.evictions_capacity e);
  Alcotest.(check bool) "survivors intact" true
    (Efsm.state_of e ~key:3 <> None && Efsm.state_of e ~key:4 <> None);
  (* One more insert genuinely overflows now. *)
  ignore (Efsm.step e ~now:(Sim_time.us 23) ~key:7 ~input:0 : Efsm.outcome);
  Alcotest.(check int) "then LRU kicks in" 1 (Efsm.evictions_capacity e)

let test_alloc_exporter_and_stats () =
  let alloc = Pisa.Register_alloc.create () in
  let e =
    Efsm.create ~alloc ~name:"exp" ~entries:4 ~nregs:2
      ~transitions:[ tr 0 0 ~actions:[ act 0 (Efsm.Add (Efsm.Reg 0, Efsm.Const 1)) ] ]
      ()
  in
  ignore (Efsm.step e ~now:0 ~key:1 ~input:0 : Efsm.outcome);
  match Pisa.Register_alloc.stats_exporters alloc with
  | [ (name, stats) ] ->
      Alcotest.(check string) "registered under its name" "exp" name;
      let s = stats () in
      Alcotest.(check (option int) "steps series" (Some 1) (List.assoc_opt "pisa.efsm.steps" s));
      Alcotest.(check bool) "state digest series" true
        (List.mem_assoc "pisa.efsm.state_hash" s)
  | l -> Alcotest.fail (Printf.sprintf "expected one exporter, got %d" (List.length l))

let test_state_hash_tracks_evolution () =
  let mk () =
    Efsm.create ~name:"h" ~entries:8 ~nregs:1
      ~transitions:[ tr 0 1 ~actions:[ act 0 (Efsm.Set (Efsm.Input)) ] ]
      ()
  in
  let a = mk () and b = mk () in
  let h0 = Efsm.state_hash a in
  ignore (Efsm.step a ~now:0 ~key:42 ~input:7 : Efsm.outcome);
  ignore (Efsm.step b ~now:0 ~key:42 ~input:7 : Efsm.outcome);
  Alcotest.(check bool) "hash moved" true (Efsm.state_hash a <> h0);
  Alcotest.(check int) "identical evolutions agree" (Efsm.state_hash a) (Efsm.state_hash b);
  ignore (Efsm.step b ~now:1 ~key:43 ~input:9 : Efsm.outcome);
  Alcotest.(check bool) "divergent evolutions differ" true
    (Efsm.state_hash a <> Efsm.state_hash b)

let suite =
  [
    Alcotest.test_case "first match wins" `Quick test_first_match_wins;
    Alcotest.test_case "parallel update swaps" `Quick test_parallel_update_swaps;
    Alcotest.test_case "guard never fires" `Quick test_guard_never_fires;
    Alcotest.test_case "self-loop saturates" `Quick test_self_loop_saturates;
    Alcotest.test_case "wrapping add" `Quick test_wrapping_add;
    Alcotest.test_case "capacity overflow LRU" `Quick test_capacity_overflow_lru;
    Alcotest.test_case "timeout eviction vs in-flight race" `Quick test_timeout_eviction_race;
    Alcotest.test_case "sweep without timeout" `Quick test_sweep_without_timeout_is_noop;
    Alcotest.test_case "attached sweeper" `Quick test_attach_sweeper;
    Alcotest.test_case "step_all broadcast" `Quick test_step_all_broadcast;
    Alcotest.test_case "stall accounting" `Quick test_stall_accounting;
    Alcotest.test_case "single-hit never stalls" `Quick test_single_hit_never_stalls;
    Alcotest.test_case "create validates" `Quick test_create_validates;
    Alcotest.test_case "sweep releases slots to the free list" `Quick test_sweep_releases_slots;
    Alcotest.test_case "partial sweep then overflow" `Quick test_partial_sweep_then_overflow;
    Alcotest.test_case "alloc exporter + stats" `Quick test_alloc_exporter_and_stats;
    Alcotest.test_case "state_hash tracks evolution" `Quick test_state_hash_tracks_evolution;
  ]
