(* End-to-end tests of the switch architecture layer. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Packet = Netcore.Packet
module Flow = Netcore.Flow
module Ipv4_addr = Netcore.Ipv4_addr
module Event = Devents.Event
module Arch = Evcore.Arch
module Program = Evcore.Program
module Event_switch = Evcore.Event_switch
module Control_plane = Evcore.Control_plane
module Host = Evcore.Host
module Network = Evcore.Network
module Shared_register = Devents.Shared_register

let mk_packet ?(bytes = 128) ?(src = 1) ?(dst = 2) () =
  let payload_len = max 0 (bytes - 42) in
  Packet.udp_packet
    ~src:(Ipv4_addr.host ~subnet:1 src)
    ~dst:(Ipv4_addr.host ~subnet:1 dst)
    ~src_port:1000 ~dst_port:2000 ~payload_len ()

let make_switch ?(arch = Arch.event_pisa_full) ?(tm_config = Tmgr.Traffic_manager.default_config)
    ?merger_config ~sched program =
  let config = Event_switch.default_config arch in
  let config =
    match merger_config with
    | None -> { config with Event_switch.tm_config = tm_config }
    | Some mc -> { config with Event_switch.tm_config = tm_config; merger_config = mc }
  in
  Event_switch.create ~sched ~config ~program ()

let test_forward_path () =
  let sched = Scheduler.create () in
  let sw = make_switch ~sched (Program.forward_all ~name:"fwd" ~out_port:1) in
  let received = ref [] in
  Event_switch.set_port_tx sw ~port:1 (fun pkt -> received := pkt :: !received);
  for _ = 1 to 10 do
    Event_switch.inject sw ~port:0 (mk_packet ())
  done;
  Scheduler.run sched;
  Alcotest.(check int) "all forwarded" 10 (List.length !received);
  Alcotest.(check int) "ingress fired" 10 (Event_switch.fired sw Event.Ingress_packet);
  Alcotest.(check int) "ingress handled" 10 (Event_switch.handled sw Event.Ingress_packet);
  Alcotest.(check int) "tm enqueued" 10 (Tmgr.Traffic_manager.enqueues (Event_switch.tm sw));
  Alcotest.(check int) "enqueue events fired" 10 (Event_switch.fired sw Event.Buffer_enqueue);
  (* No handler subscribed, so none were delivered. *)
  Alcotest.(check int) "enqueue events unhandled" 0 (Event_switch.handled sw Event.Buffer_enqueue)

let test_pipeline_latency () =
  let sched = Scheduler.create () in
  let sw = make_switch ~sched (Program.forward_all ~name:"fwd" ~out_port:0) in
  let arrival = ref (-1) in
  Event_switch.set_port_tx sw ~port:0 (fun _ -> arrival := Scheduler.now sched);
  let pkt = mk_packet ~bytes:64 () in
  Event_switch.inject sw ~port:0 pkt;
  Scheduler.run sched;
  (* 16-cycle x 5ns pipeline + 64B at 10G serialization = 80ns + 51.2ns *)
  let expected = Sim_time.ns 80 + Sim_time.tx_time ~bytes:64 ~gbps:10. in
  Alcotest.(check int) "egress timestamp" expected !arrival

let test_enqueue_dequeue_state () =
  (* The paper's microburst skeleton: enqueue/dequeue handlers keep
     per-flow buffer occupancy in a shared register; after the buffer
     drains, occupancy must return to zero. *)
  let sched = Scheduler.create () in
  let reg = ref None in
  let program ctx =
    let r = Program.shared_register ctx ~name:"bufSize" ~entries:64 ~width:32 in
    reg := Some r;
    Program.make ~name:"occupancy"
      ~ingress:(fun _ctx pkt ->
        let fid = Netcore.Hashes.fold_range (Flow.hash_addresses (Packet.flow_exn pkt)) 64 in
        pkt.Packet.meta.Packet.flow_id <- fid;
        pkt.Packet.meta.Packet.enq_meta.(0) <- fid;
        pkt.Packet.meta.Packet.deq_meta.(0) <- fid;
        Program.Forward 1)
      ~enqueue:(fun _ctx ev ->
        Shared_register.event_add r Shared_register.Enq_side ev.Event.meta.(0) ev.Event.pkt_len)
      ~dequeue:(fun _ctx ev ->
        Shared_register.event_add r Shared_register.Deq_side ev.Event.meta.(0) (-ev.Event.pkt_len))
      ()
  in
  let sw = make_switch ~sched program in
  Event_switch.set_port_tx sw ~port:1 (fun _ -> ());
  for i = 1 to 50 do
    ignore
      (Scheduler.schedule sched ~at:(i * Sim_time.ns 100) (fun () ->
           Event_switch.inject sw ~port:0 (mk_packet ~bytes:200 ())))
  done;
  Scheduler.run sched;
  let r = Option.get !reg in
  Shared_register.sync r;
  let total = ref 0 in
  for i = 0 to 63 do
    total := !total + Shared_register.read r i
  done;
  Alcotest.(check int) "occupancy returns to zero" 0 !total;
  Alcotest.(check int) "enqueue handled 50" 50 (Event_switch.handled sw Event.Buffer_enqueue);
  Alcotest.(check int) "dequeue handled 50" 50 (Event_switch.handled sw Event.Buffer_dequeue)

let test_overflow_event () =
  let sched = Scheduler.create () in
  let overflows = ref 0 in
  let program _ctx =
    Program.make ~name:"ovf"
      ~ingress:(fun _ctx _pkt -> Program.Forward 0)
      ~overflow:(fun _ctx _ev -> incr overflows)
      ()
  in
  let tm_config =
    { Tmgr.Traffic_manager.default_config with Tmgr.Traffic_manager.buffer_bytes = 1000 }
  in
  let sw = make_switch ~sched ~tm_config program in
  Event_switch.set_port_tx sw ~port:0 (fun _ -> ());
  (* 20 x 500B back-to-back at t=0: pool of 1000B holds only 2. *)
  for _ = 1 to 20 do
    Event_switch.inject sw ~port:0 (mk_packet ~bytes:500 ())
  done;
  Scheduler.run sched;
  Alcotest.(check bool) "overflow events delivered" true (!overflows > 0);
  Alcotest.(check int) "tm drops match events" !overflows
    (Tmgr.Traffic_manager.drops (Event_switch.tm sw))

let test_timer_events () =
  let sched = Scheduler.create () in
  let fired = ref 0 in
  let program ctx =
    ignore (ctx.Program.add_timer ~period:(Sim_time.us 10));
    Program.make ~name:"timer"
      ~ingress:(fun _ctx _pkt -> Program.Drop)
      ~timer:(fun _ctx _ev -> incr fired)
      ()
  in
  let sw = make_switch ~sched program in
  ignore sw;
  Scheduler.run ~until:(Sim_time.ms 1) sched;
  Alcotest.(check int) "100 timer firings in 1ms" 100 !fired

let test_timer_unsupported_on_baseline () =
  let sched = Scheduler.create () in
  let program ctx =
    ignore (ctx.Program.add_timer ~period:(Sim_time.us 10));
    Program.make ~name:"timer" ~ingress:(fun _ctx _pkt -> Program.Drop) ()
  in
  Alcotest.check_raises "baseline has no timers"
    (Program.Unsupported "baseline-psa has no timers") (fun () ->
      ignore (make_switch ~arch:Arch.baseline_psa ~sched program))

let test_baseline_masks_buffer_events () =
  (* Same program as the event-driven one, installed on a baseline
     architecture: buffer events fire in hardware but never reach the
     program. *)
  let sched = Scheduler.create () in
  let got = ref 0 in
  let program _ctx =
    Program.make ~name:"mask"
      ~ingress:(fun _ctx _pkt -> Program.Forward 1)
      ~enqueue:(fun _ctx _ev -> incr got)
      ()
  in
  let sw = make_switch ~arch:Arch.baseline_psa ~sched program in
  Event_switch.set_port_tx sw ~port:1 (fun _ -> ());
  for _ = 1 to 5 do
    Event_switch.inject sw ~port:0 (mk_packet ())
  done;
  Scheduler.run sched;
  Alcotest.(check int) "events fired in hw" 5 (Event_switch.fired sw Event.Buffer_enqueue);
  Alcotest.(check int) "program never saw them" 0 !got

let test_packet_generator () =
  let sched = Scheduler.create () in
  let program ctx =
    ctx.Program.configure_pktgen ~period:(Sim_time.us 10) ~count:7
      ~template:(fun i -> mk_packet ~src:(100 + i) ())
      ();
    Program.make ~name:"gen" ~ingress:(fun _ctx _pkt -> Program.Forward 2) ()
  in
  let sw = make_switch ~sched program in
  let out = ref 0 in
  Event_switch.set_port_tx sw ~port:2 (fun _ -> incr out);
  Scheduler.run ~until:(Sim_time.ms 1) sched;
  Alcotest.(check int) "generated packets forwarded" 7 !out;
  Alcotest.(check int) "generated events fired" 7 (Event_switch.fired sw Event.Generated_packet);
  Alcotest.(check int) "handled as generated" 7 (Event_switch.handled sw Event.Generated_packet)

let test_link_status_event () =
  let sched = Scheduler.create () in
  let changes = ref [] in
  let program _ctx =
    Program.make ~name:"link"
      ~ingress:(fun _ctx _pkt -> Program.Drop)
      ~link_change:(fun _ctx (ev : Event.link_event) -> changes := ev.Event.up :: !changes)
      ()
  in
  let sw = make_switch ~sched program in
  ignore (Scheduler.schedule sched ~at:(Sim_time.us 1) (fun () ->
      Event_switch.link_status sw ~port:2 ~up:false));
  ignore (Scheduler.schedule sched ~at:(Sim_time.us 2) (fun () ->
      Event_switch.link_status sw ~port:2 ~up:true));
  (* A duplicate "up" must not fire another event. *)
  ignore (Scheduler.schedule sched ~at:(Sim_time.us 3) (fun () ->
      Event_switch.link_status sw ~port:2 ~up:true));
  Scheduler.run sched;
  Alcotest.(check (list bool)) "down then up" [ false; true ] (List.rev !changes)

let test_control_and_user_events () =
  let sched = Scheduler.create () in
  let control = ref 0 and user = ref (-1) in
  let program _ctx =
    Program.make ~name:"ctl"
      ~ingress:(fun ctx _pkt ->
        ctx.Program.emit_user_event ~tag:3 ~data:99;
        Program.Drop)
      ~control:(fun _ctx (ev : Event.control_event) -> control := ev.Event.opcode)
      ~user:(fun _ctx (ev : Event.user_event) -> user := ev.Event.data)
      ()
  in
  let sw = make_switch ~sched program in
  Event_switch.control_event sw ~opcode:7 ~arg:1;
  Event_switch.inject sw ~port:0 (mk_packet ());
  Scheduler.run sched;
  Alcotest.(check int) "control delivered" 7 !control;
  Alcotest.(check int) "user event delivered" 99 !user

let test_recirculation () =
  let sched = Scheduler.create () in
  let program _ctx =
    Program.make ~name:"recirc"
      ~ingress:(fun _ctx _pkt -> Program.Recirculate)
      ~recirculated:(fun _ctx _pkt -> Program.Forward 1)
      ()
  in
  let sw = make_switch ~sched program in
  let out = ref 0 in
  Event_switch.set_port_tx sw ~port:1 (fun _ -> incr out);
  Event_switch.inject sw ~port:0 (mk_packet ());
  Scheduler.run sched;
  Alcotest.(check int) "recirculated then forwarded" 1 !out;
  Alcotest.(check int) "recirculations counted" 1 (Event_switch.recirculations sw);
  Alcotest.(check int) "handled as recirculated" 1
    (Event_switch.handled sw Event.Recirculated_packet)

let test_recirculation_unsupported () =
  let sched = Scheduler.create () in
  let program _ctx =
    Program.make ~name:"recirc" ~ingress:(fun _ctx _pkt -> Program.Recirculate) ()
  in
  let sw = make_switch ~arch:Arch.sume_event_switch ~sched program in
  Event_switch.inject sw ~port:0 (mk_packet ());
  Scheduler.run sched;
  Alcotest.(check int) "counted unsupported" 1 (Event_switch.unsupported_actions sw)

let test_multicast () =
  let sched = Scheduler.create () in
  let program _ctx =
    Program.make ~name:"mc" ~ingress:(fun _ctx _pkt -> Program.Multicast [ 1; 2; 3 ]) ()
  in
  let sw = make_switch ~sched program in
  let out = Array.make 4 0 in
  for p = 1 to 3 do
    Event_switch.set_port_tx sw ~port:p (fun _ -> out.(p) <- out.(p) + 1)
  done;
  Event_switch.inject sw ~port:0 (mk_packet ());
  Scheduler.run sched;
  Alcotest.(check (list int)) "one copy per port" [ 1; 1; 1 ] [ out.(1); out.(2); out.(3) ]

let test_egress_handler_psa () =
  let sched = Scheduler.create () in
  let program _ctx =
    Program.make ~name:"egress-drop"
      ~ingress:(fun _ctx _pkt -> Program.Forward 1)
      ~egress:(fun _ctx ~port:_ pkt ->
        if pkt.Packet.payload_len > 100 then None else Some pkt)
      ()
  in
  let sw = make_switch ~arch:Arch.baseline_psa ~sched program in
  let out = ref 0 in
  Event_switch.set_port_tx sw ~port:1 (fun _ -> incr out);
  Event_switch.inject sw ~port:0 (mk_packet ~bytes:80 ());
  Event_switch.inject sw ~port:0 (mk_packet ~bytes:500 ());
  Scheduler.run sched;
  Alcotest.(check int) "small passed, big dropped at egress" 1 !out;
  Alcotest.(check int) "egress drop counted" 1
    (Tmgr.Traffic_manager.egress_drops (Event_switch.tm sw))

let test_cp_injection () =
  let sched = Scheduler.create () in
  let rng = Stats.Rng.create ~seed:1 in
  let cp = Control_plane.create ~sched ~rng () in
  let program _ctx =
    Program.make ~name:"fwd" ~ingress:(fun _ctx _pkt -> Program.Forward 1) ()
  in
  let sw = make_switch ~arch:Arch.baseline_psa ~sched program in
  let out = ref 0 in
  Event_switch.set_port_tx sw ~port:1 (fun _ -> incr out);
  Control_plane.submit cp (fun () -> Event_switch.inject_from_control_plane sw (mk_packet ()));
  Scheduler.run sched;
  Alcotest.(check int) "cp-injected forwarded" 1 !out;
  Alcotest.(check int) "counted" 1 (Event_switch.cp_injections sw);
  Alcotest.(check bool) "paid latency" true (Scheduler.now sched >= Sim_time.us 200)

let test_control_plane_rate_limit () =
  let sched = Scheduler.create () in
  let rng = Stats.Rng.create ~seed:1 in
  let cp = Control_plane.create ~sched ~op_rate_per_sec:1000. ~jitter:0 ~rng () in
  let times = ref [] in
  for _ = 1 to 5 do
    Control_plane.submit cp (fun () -> times := Scheduler.now sched :: !times)
  done;
  Scheduler.run sched;
  let times = List.rev !times in
  let rec gaps = function a :: (b :: _ as rest) -> (b - a) :: gaps rest | [ _ ] | [] -> [] in
  List.iter
    (fun g -> Alcotest.(check bool) "gap >= 1ms at 1000 ops/s" true (g >= Sim_time.ms 1))
    (gaps times);
  Alcotest.(check int) "all ops ran" 5 (Control_plane.ops cp)

let test_notifications () =
  let sched = Scheduler.create () in
  let program _ctx =
    Program.make ~name:"notify"
      ~ingress:(fun ctx _pkt ->
        ctx.Program.notify_monitor "hello";
        Program.Drop)
      ()
  in
  let sw = make_switch ~sched program in
  let seen = ref 0 in
  Event_switch.on_notification sw (fun ~time:_ msg ->
      if msg = "hello" then incr seen);
  Event_switch.inject sw ~port:0 (mk_packet ());
  Scheduler.run sched;
  Alcotest.(check int) "callback" 1 !seen;
  Alcotest.(check int) "count" 1 (Event_switch.notification_count sw)

let test_host_network_roundtrip () =
  let sched = Scheduler.create () in
  let network = Network.create ~sched in
  let program _ctx =
    Program.make ~name:"fwd01"
      ~ingress:(fun _ctx pkt ->
        (* Port 0 <-> port 1 crossover. *)
        if pkt.Packet.meta.Packet.ingress_port = 0 then Program.Forward 1 else Program.Forward 0)
      ()
  in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let sw = Event_switch.create ~sched ~config ~program () in
  let h0 = Host.create ~sched ~id:0 () and h1 = Host.create ~sched ~id:1 () in
  ignore (Network.connect_host network ~host:h0 ~switch:(sw, 0) ());
  ignore (Network.connect_host network ~host:h1 ~switch:(sw, 1) ());
  Host.set_receiver h1 (fun h pkt ->
      (* Bounce one reply back. *)
      if Host.received h = 1 then
        Host.send h (mk_packet ~src:2 ~dst:1 ~bytes:(Packet.len pkt) ()));
  Host.send h0 (mk_packet ~src:1 ~dst:2 ());
  Scheduler.run sched;
  Alcotest.(check int) "h1 received" 1 (Host.received h1);
  Alcotest.(check int) "h0 got the bounce" 1 (Host.received h0)

let test_link_failure_loses_packets_and_notifies () =
  let sched = Scheduler.create () in
  let network = Network.create ~sched in
  let down_seen = ref 0 in
  let program _ctx =
    Program.make ~name:"fwd"
      ~ingress:(fun _ctx _pkt -> Program.Forward 1)
      ~link_change:(fun _ctx (ev : Event.link_event) -> if not ev.Event.up then incr down_seen)
      ()
  in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let sw_a = Event_switch.create ~sched ~id:0 ~config ~program () in
  let sw_b = Event_switch.create ~sched ~id:1 ~config ~program () in
  let link = Network.connect_switches network ~a:(sw_a, 1) ~b:(sw_b, 1) () in
  Event_switch.set_port_tx sw_b ~port:1 (fun _ -> ());
  ignore (Scheduler.schedule sched ~at:(Sim_time.us 5) (fun () -> Tmgr.Link.fail link));
  (* A packet sent after the failure must be lost. *)
  ignore
    (Scheduler.schedule sched ~at:(Sim_time.us 6) (fun () ->
         Event_switch.inject sw_a ~port:0 (mk_packet ())));
  Scheduler.run sched;
  Alcotest.(check int) "both switches saw link-down" 2 !down_seen;
  Alcotest.(check bool) "packet lost on dead link" true (Tmgr.Link.lost link >= 1)

let test_empty_carriers_for_events () =
  (* Timer events with no traffic ride empty carriers. *)
  let sched = Scheduler.create () in
  let program ctx =
    ignore (ctx.Program.add_timer ~period:(Sim_time.us 1));
    Program.make ~name:"t" ~ingress:(fun _ctx _pkt -> Program.Drop)
      ~timer:(fun _ctx _ev -> ())
      ()
  in
  let sw = make_switch ~sched program in
  Scheduler.run ~until:(Sim_time.us 100) sched;
  let merger = Event_switch.merger sw in
  Alcotest.(check int) "each timer event rode an empty carrier" 100
    (Devents.Event_merger.empty_carriers merger);
  Alcotest.(check int) "pipeline saw empty carriers" 100
    (Pisa.Pipeline.empty_carriers (Event_switch.pipeline sw))

(* --- edge cases and failure injection --- *)

let test_unrouted_ports_counted () =
  let sched = Scheduler.create () in
  (* Forward to an unwired port and to an out-of-range port. *)
  let program _ctx =
    Program.make ~name:"bad-routes"
      ~ingress:(fun _ctx pkt ->
        if pkt.Packet.meta.Packet.ingress_port = 0 then Program.Forward 2 (* unwired *)
        else Program.Forward 99 (* out of range *))
      ()
  in
  let sw = make_switch ~sched program in
  Event_switch.inject sw ~port:0 (mk_packet ());
  Event_switch.inject sw ~port:1 (mk_packet ());
  Scheduler.run sched;
  (* The unwired port discards at transmit time; the invalid port is
     rejected at decision time: both count as unrouted. *)
  Alcotest.(check int) "both counted unrouted" 2 (Event_switch.unrouted sw)

let test_inject_bad_port_raises () =
  let sched = Scheduler.create () in
  let sw = make_switch ~sched (Program.forward_all ~name:"fwd" ~out_port:0) in
  Alcotest.check_raises "bad port" (Invalid_argument "Event_switch.inject: bad port")
    (fun () -> Event_switch.inject sw ~port:7 (mk_packet ()))

let test_merger_packet_queue_overflow () =
  let sched = Scheduler.create () in
  let merger_config =
    { Devents.Event_merger.default_config with Devents.Event_merger.packet_queue_capacity = 4 }
  in
  let sw = make_switch ~sched ~merger_config (Program.forward_all ~name:"fwd" ~out_port:1) in
  (* 10 packets at the same instant: only 4 fit the input queue plus
     the ones admitted as cycles pass. *)
  for _ = 1 to 10 do
    Event_switch.inject sw ~port:0 (mk_packet ())
  done;
  Scheduler.run sched;
  Alcotest.(check bool) "input overflow counted" true
    (Devents.Event_merger.packet_drops (Event_switch.merger sw) > 0)

let test_user_events_masked_on_sume () =
  (* The SUME prototype has no user events: emitting one fires it in
     hardware but never delivers it. *)
  let sched = Scheduler.create () in
  let got = ref 0 in
  let program _ctx =
    Program.make ~name:"user"
      ~ingress:(fun ctx _pkt ->
        ctx.Program.emit_user_event ~tag:1 ~data:1;
        Program.Drop)
      ~user:(fun _ctx _ev -> incr got)
      ()
  in
  let sw = make_switch ~arch:Arch.sume_event_switch ~sched program in
  Event_switch.inject sw ~port:0 (mk_packet ());
  Scheduler.run sched;
  Alcotest.(check int) "fired" 1 (Event_switch.fired sw Event.User_event);
  Alcotest.(check int) "masked" 0 !got

let test_pifo_switch_end_to_end () =
  (* A PIFO-scheduled switch: while a long packet serialises, a later
     high-priority (low rank) packet overtakes an earlier low-priority
     one. *)
  let sched = Scheduler.create () in
  let program _ctx =
    Program.make ~name:"rank"
      ~ingress:(fun _ctx pkt ->
        pkt.Packet.meta.Packet.priority <- Packet.len pkt (* shorter = more urgent *);
        Program.Forward 1)
      ()
  in
  let tm_config =
    { Tmgr.Traffic_manager.default_config with Tmgr.Traffic_manager.policy = Tmgr.Traffic_manager.Pifo_sched }
  in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let config = { config with Event_switch.tm_config } in
  let sw = Event_switch.create ~sched ~config ~program () in
  let order = ref [] in
  Event_switch.set_port_tx sw ~port:1 (fun pkt -> order := Packet.len pkt :: !order);
  Event_switch.inject sw ~port:0 (mk_packet ~bytes:1500 ());
  Event_switch.inject sw ~port:0 (mk_packet ~bytes:1000 ());
  Event_switch.inject sw ~port:0 (mk_packet ~bytes:100 ());
  Scheduler.run sched;
  Alcotest.(check (list int)) "short packet overtakes" [ 1500; 100; 1000 ] (List.rev !order)

let test_cp_notify_path () =
  let sched = Scheduler.create () in
  let rng = Stats.Rng.create ~seed:9 in
  let cp = Control_plane.create ~sched ~rng () in
  let got_at = ref 0 in
  Control_plane.notify cp (fun () -> got_at := Scheduler.now sched);
  Scheduler.run sched;
  Alcotest.(check int) "one-way latency paid" (Sim_time.us 200) !got_at;
  Alcotest.(check int) "notification counted" 1 (Control_plane.notifications cp)

let test_scheduler_negative_delay_raises () =
  let sched = Scheduler.create () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Scheduler.schedule_after: negative delay")
    (fun () -> ignore (Scheduler.schedule_after sched ~delay:(-1) (fun () -> ())))

let test_pktgen_zero_period_raises () =
  let sched = Scheduler.create () in
  let pg = Devents.Packet_gen.create ~sched ~sink:(fun _ -> ()) () in
  Alcotest.check_raises "zero period"
    (Invalid_argument "Packet_gen.configure: period must be positive") (fun () ->
      Devents.Packet_gen.configure pg ~period:0 ~template:(fun _ -> mk_packet ()) ())

let test_multicast_with_invalid_member () =
  (* One bad port in a multicast set: the others still get a copy. *)
  let sched = Scheduler.create () in
  let program _ctx =
    Program.make ~name:"mc" ~ingress:(fun _ctx _pkt -> Program.Multicast [ 1; 42; 2 ]) ()
  in
  let sw = make_switch ~sched program in
  let got = ref 0 in
  Event_switch.set_port_tx sw ~port:1 (fun _ -> incr got);
  Event_switch.set_port_tx sw ~port:2 (fun _ -> incr got);
  Event_switch.inject sw ~port:0 (mk_packet ());
  Scheduler.run sched;
  Alcotest.(check int) "two valid copies" 2 !got;
  Alcotest.(check int) "bad member counted" 1 (Event_switch.unrouted sw)

let test_duplicate_port_raises () =
  (* Regression: wiring the same switch port twice used to silently
     overwrite the first link's transmit side. *)
  let sched = Scheduler.create () in
  let network = Network.create ~sched in
  let mk () = make_switch ~sched (Program.forward_all ~name:"fwd" ~out_port:1) in
  let sw_a = mk () and sw_b = mk () and sw_c = mk () in
  ignore (Network.connect_switches network ~a:(sw_a, 1) ~b:(sw_b, 1) ());
  Alcotest.check_raises "switch port rewired"
    (Invalid_argument "Network.connect_switches: switch 0 port 1 is already connected")
    (fun () -> ignore (Network.connect_switches network ~a:(sw_a, 1) ~b:(sw_c, 1) ()));
  Alcotest.check_raises "b side rewired"
    (Invalid_argument "Network.connect_switches: switch 0 port 1 is already connected")
    (fun () -> ignore (Network.connect_switches network ~a:(sw_c, 1) ~b:(sw_b, 1) ()));
  let host = Host.create ~sched ~id:0 () in
  Alcotest.check_raises "host onto a taken port"
    (Invalid_argument "Network.connect_host: switch 0 port 1 is already connected")
    (fun () -> ignore (Network.connect_host network ~host ~switch:(sw_b, 1) ()));
  (* A rejected wiring must not half-claim its [a] side: after the
     a-c failure above, port 2 of [sw_c] is untouched and a fresh pair
     of ports still connects. *)
  ignore (Network.connect_switches network ~a:(sw_a, 2) ~b:(sw_c, 2) ());
  (* Same port number on a different switch is distinct even with
     colliding ids (all default to 0 here). *)
  ignore (Network.connect_host network ~host ~switch:(sw_c, 0) ())

let test_connect_rollback_on_failure () =
  (* If claiming the [b] side fails, the [a] side is rolled back and
     remains connectable. *)
  let sched = Scheduler.create () in
  let network = Network.create ~sched in
  let mk () = make_switch ~sched (Program.forward_all ~name:"fwd" ~out_port:1) in
  let sw_a = mk () and sw_b = mk () in
  ignore (Network.connect_switches network ~a:(sw_b, 3) ~b:(sw_a, 3) ());
  (match Network.connect_switches network ~a:(sw_a, 1) ~b:(sw_b, 3) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on the b side");
  ignore (Network.connect_switches network ~a:(sw_a, 1) ~b:(sw_b, 1) ())

let qcheck_switch_conservation =
  (* End-to-end: injected = transmitted + program drops + TM drops +
     egress drops + unrouted + merger input drops, once drained. *)
  QCheck.Test.make ~name:"switch conserves packets end to end" ~count:40
    QCheck.(pair (int_bound 1_000_000) (int_range 1 100))
    (fun (seed, n) ->
      let sched = Scheduler.create () in
      let rng = Stats.Rng.create ~seed in
      let program _ctx =
        Program.make ~name:"mix"
          ~ingress:(fun _ctx pkt ->
            match pkt.Packet.uid mod 4 with
            | 0 -> Program.Drop
            | 1 -> Program.Forward 1
            | 2 -> Program.Forward 2 (* unwired: discarded at tx *)
            | _ -> Program.Forward 0)
          ()
      in
      let tm_config =
        { Tmgr.Traffic_manager.default_config with Tmgr.Traffic_manager.buffer_bytes = 10_000 }
      in
      let sw = make_switch ~sched ~tm_config program in
      let received = ref 0 in
      Event_switch.set_port_tx sw ~port:0 (fun _ -> incr received);
      Event_switch.set_port_tx sw ~port:1 (fun _ -> incr received);
      for i = 0 to n - 1 do
        ignore
          (Scheduler.schedule sched
             ~at:(i * Sim_time.ns (30 + Stats.Rng.int rng 300))
             (fun () ->
               Event_switch.inject sw ~port:(Stats.Rng.int rng 4)
                 (mk_packet ~bytes:(64 + Stats.Rng.int rng 900) ())))
      done;
      Scheduler.run sched;
      let tm = Event_switch.tm sw in
      n
      = !received + Event_switch.unrouted sw + Event_switch.program_drops sw
        + Tmgr.Traffic_manager.drops tm
        + Devents.Event_merger.packet_drops (Event_switch.merger sw))

let suite =
  [
    Alcotest.test_case "forward path" `Quick test_forward_path;
    Alcotest.test_case "pipeline latency" `Quick test_pipeline_latency;
    Alcotest.test_case "enqueue/dequeue shared state" `Quick test_enqueue_dequeue_state;
    Alcotest.test_case "overflow events" `Quick test_overflow_event;
    Alcotest.test_case "timer events" `Quick test_timer_events;
    Alcotest.test_case "timers unsupported on baseline" `Quick test_timer_unsupported_on_baseline;
    Alcotest.test_case "baseline masks buffer events" `Quick test_baseline_masks_buffer_events;
    Alcotest.test_case "packet generator" `Quick test_packet_generator;
    Alcotest.test_case "link status events" `Quick test_link_status_event;
    Alcotest.test_case "control + user events" `Quick test_control_and_user_events;
    Alcotest.test_case "recirculation" `Quick test_recirculation;
    Alcotest.test_case "recirculation unsupported" `Quick test_recirculation_unsupported;
    Alcotest.test_case "multicast" `Quick test_multicast;
    Alcotest.test_case "PSA egress handler" `Quick test_egress_handler_psa;
    Alcotest.test_case "control-plane injection" `Quick test_cp_injection;
    Alcotest.test_case "control-plane rate limit" `Quick test_control_plane_rate_limit;
    Alcotest.test_case "notifications" `Quick test_notifications;
    Alcotest.test_case "host/network roundtrip" `Quick test_host_network_roundtrip;
    Alcotest.test_case "link failure" `Quick test_link_failure_loses_packets_and_notifies;
    Alcotest.test_case "empty carriers" `Quick test_empty_carriers_for_events;
    Alcotest.test_case "unrouted ports counted" `Quick test_unrouted_ports_counted;
    Alcotest.test_case "inject bad port raises" `Quick test_inject_bad_port_raises;
    Alcotest.test_case "merger packet overflow" `Quick test_merger_packet_queue_overflow;
    Alcotest.test_case "user events masked on SUME" `Quick test_user_events_masked_on_sume;
    Alcotest.test_case "PIFO switch end-to-end" `Quick test_pifo_switch_end_to_end;
    Alcotest.test_case "control-plane notify" `Quick test_cp_notify_path;
    Alcotest.test_case "negative delay raises" `Quick test_scheduler_negative_delay_raises;
    Alcotest.test_case "pktgen zero period raises" `Quick test_pktgen_zero_period_raises;
    Alcotest.test_case "multicast with invalid member" `Quick test_multicast_with_invalid_member;
    Alcotest.test_case "duplicate port raises" `Quick test_duplicate_port_raises;
    Alcotest.test_case "connect rollback on failure" `Quick test_connect_rollback_on_failure;
    QCheck_alcotest.to_alcotest qcheck_switch_conservation;
  ]
