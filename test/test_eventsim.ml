(* Tests for the discrete-event simulation engine. *)

module Sim_time = Eventsim.Sim_time
module Scheduler = Eventsim.Scheduler
module Event_heap = Eventsim.Event_heap
module Timing_wheel = Eventsim.Timing_wheel
module Ladder_queue = Eventsim.Ladder_queue
module Sched_backend = Eventsim.Sched_backend
module Trace = Eventsim.Trace

let test_time_units () =
  Alcotest.(check int) "ns" 1_000 (Sim_time.ns 1);
  Alcotest.(check int) "us" 1_000_000 (Sim_time.us 1);
  Alcotest.(check int) "ms" 1_000_000_000 (Sim_time.ms 1);
  Alcotest.(check int) "sec" 1_000_000_000_000 (Sim_time.sec 1);
  Alcotest.(check (float 1e-9)) "to_ns" 1.5 (Sim_time.to_ns 1_500)

let test_tx_time () =
  (* 64B at 10 Gb/s = 51.2 ns *)
  Alcotest.(check int) "64B@10G" (Sim_time.of_ns_float 51.2) (Sim_time.tx_time ~bytes:64 ~gbps:10.);
  (* 1500B at 1 Gb/s = 12 us *)
  Alcotest.(check int) "1500B@1G" (Sim_time.us 12) (Sim_time.tx_time ~bytes:1500 ~gbps:1.)

let test_cycles () =
  Alcotest.(check int) "cycles" 3 (Sim_time.cycles (Sim_time.ns 16) ~cycle:(Sim_time.ns 5))

let test_heap_ordering () =
  let h = Event_heap.create () in
  Event_heap.push h ~time:30 "c";
  Event_heap.push h ~time:10 "a";
  Event_heap.push h ~time:20 "b";
  Alcotest.(check (option int)) "peek" (Some 10) (Event_heap.peek_time h);
  let order = List.init 3 (fun _ -> match Event_heap.pop h with Some (_, x) -> x | None -> "?") in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] order;
  Alcotest.(check bool) "empty" true (Event_heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Event_heap.create () in
  List.iter (fun x -> Event_heap.push h ~time:5 x) [ 1; 2; 3; 4; 5 ];
  let order = List.init 5 (fun _ -> match Event_heap.pop h with Some (_, x) -> x | None -> -1) in
  Alcotest.(check (list int)) "fifo among equal times" [ 1; 2; 3; 4; 5 ] order

let test_heap_releases_payloads () =
  (* Regression: popped slots (and grow-spare slots) used to keep the
     old entry, pinning payloads until overwritten. A popped payload
     with no outside reference must be collectable immediately. *)
  let h = Event_heap.create () in
  let weak = Weak.create 1 in
  (* Push enough to force at least one grow, interleaved with pops so
     vacated slots exist above [len]. *)
  for i = 0 to 40 do
    Event_heap.push h ~time:i (Bytes.create 64)
  done;
  let tracked = Bytes.create 64 in
  Weak.set weak 0 (Some tracked);
  Event_heap.push h ~time:1000 tracked;
  while not (Event_heap.is_empty h) do
    ignore (Event_heap.pop h)
  done;
  Gc.full_major ();
  Alcotest.(check bool) "popped payload collected" false (Weak.check weak 0)

let test_heap_grow_no_pin () =
  (* The slots grow leaves above [len] must not all alias the pushed
     entry: push one element into a fresh heap (capacity jumps to 16),
     pop it, and check the payload is collectable. *)
  let h = Event_heap.create () in
  let weak = Weak.create 1 in
  let payload = Bytes.create 64 in
  Weak.set weak 0 (Some payload);
  Event_heap.push h ~time:1 payload;
  ignore (Event_heap.pop h);
  Gc.full_major ();
  Alcotest.(check bool) "grow spare slots hold no payload" false (Weak.check weak 0)

let qcheck_heap_sorted =
  QCheck.Test.make ~name:"heap pops in nondecreasing time order" ~count:200
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let h = Event_heap.create () in
      List.iter (fun time -> Event_heap.push h ~time ()) times;
      let rec drain last =
        match Event_heap.pop h with
        | None -> true
        | Some (time, ()) -> time >= last && drain time
      in
      drain min_int)

let test_wheel_ordering () =
  let w = Timing_wheel.create () in
  Timing_wheel.push w ~time:30 "c";
  Timing_wheel.push w ~time:10 "a";
  Timing_wheel.push w ~time:20 "b";
  Alcotest.(check (option int)) "peek" (Some 10) (Timing_wheel.peek_time w);
  let order =
    List.init 3 (fun _ -> match Timing_wheel.pop w with Some (_, x) -> x | None -> "?")
  in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] order;
  Alcotest.(check bool) "empty" true (Timing_wheel.is_empty w)

let test_wheel_fifo_ties () =
  let w = Timing_wheel.create () in
  List.iter (fun x -> Timing_wheel.push w ~time:5 x) [ 1; 2; 3; 4; 5 ];
  let order =
    List.init 5 (fun _ -> match Timing_wheel.pop w with Some (_, x) -> x | None -> -1)
  in
  Alcotest.(check (list int)) "fifo among equal times" [ 1; 2; 3; 4; 5 ] order

let test_wheel_spans_levels () =
  (* Times chosen to land on every wheel level and in the overflow heap
     (beyond the 2^32 ps window), pushed out of order. *)
  let times =
    [ 3; 700; 100_000; 40_000_000; 4_000_000_000; (1 lsl 33) + 5; (1 lsl 45) + 1 ]
  in
  let w = Timing_wheel.create () in
  List.iteri (fun i time -> Timing_wheel.push w ~time i) (List.rev times);
  Alcotest.(check int) "length counts overflow" (List.length times) (Timing_wheel.length w);
  let popped = ref [] in
  let rec drain () =
    match Timing_wheel.pop w with
    | Some (time, _) ->
        popped := time :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "global order across levels and overflow" times
    (List.rev !popped)

let test_wheel_overflow_fifo () =
  (* Same-time events in the overflow must still fire in push order once
     the wheel reaches their page. *)
  let w = Timing_wheel.create () in
  let far = (1 lsl 34) + 17 in
  List.iter (fun x -> Timing_wheel.push w ~time:far x) [ 1; 2; 3 ];
  Timing_wheel.push w ~time:5 0;
  let order =
    List.init 4 (fun _ -> match Timing_wheel.pop w with Some (_, x) -> x | None -> -1)
  in
  Alcotest.(check (list int)) "overflow keeps FIFO ties" [ 0; 1; 2; 3 ] order

let test_wheel_past_push_raises () =
  let w = Timing_wheel.create () in
  Timing_wheel.push w ~time:100 ();
  ignore (Timing_wheel.pop w);
  Alcotest.(check int) "position advanced" 100 (Timing_wheel.position w);
  Alcotest.check_raises "behind position"
    (Invalid_argument "Timing_wheel.push: time=50 is before wheel position 100")
    (fun () -> Timing_wheel.push w ~time:50 ())

let test_wheel_releases_payloads () =
  (* Recycled nodes must not pin the last payload that passed through
     them — same discipline as the heap's null-entry regression. *)
  let w = Timing_wheel.create () in
  let weak = Weak.create 1 in
  let tracked = Bytes.create 64 in
  Weak.set weak 0 (Some tracked);
  Timing_wheel.push w ~time:7 tracked;
  Timing_wheel.push w ~time:(1 lsl 40) (Bytes.create 64);
  ignore (Timing_wheel.pop w);
  ignore (Timing_wheel.pop w);
  Gc.full_major ();
  Alcotest.(check bool) "popped payload collected" false (Weak.check weak 0)

let test_wheel_drain_reentry () =
  (* drain_upto runs same-instant pushes made by the callback in the
     same batch, and leaves beyond-limit pushes queued. *)
  let w = Timing_wheel.create () in
  let log = ref [] in
  Timing_wheel.push w ~time:10 `First;
  Timing_wheel.push w ~time:10 `Second;
  Timing_wheel.drain_upto w ~limit:50 (fun ~time x ->
      match x with
      | `First ->
          log := (time, "first") :: !log;
          Timing_wheel.push w ~time `Nested;
          Timing_wheel.push w ~time:200 `Late
      | `Second -> log := (time, "second") :: !log
      | `Nested -> log := (time, "nested") :: !log
      | `Late -> log := (time, "late") :: !log);
  Alcotest.(check (list (pair int string)))
    "same-instant reentry order"
    [ (10, "first"); (10, "second"); (10, "nested") ]
    (List.rev !log);
  Alcotest.(check (option int)) "beyond-limit event kept" (Some 200)
    (Timing_wheel.peek_time w)

let test_ladder_ordering () =
  let l = Ladder_queue.create () in
  Ladder_queue.push l ~time:30 "c";
  Ladder_queue.push l ~time:10 "a";
  Ladder_queue.push l ~time:20 "b";
  Alcotest.(check (option int)) "peek" (Some 10) (Ladder_queue.peek_time l);
  let order =
    List.init 3 (fun _ -> match Ladder_queue.pop l with Some (_, x) -> x | None -> "?")
  in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] order;
  Alcotest.(check bool) "empty" true (Ladder_queue.is_empty l)

let test_ladder_fifo_ties () =
  let l = Ladder_queue.create () in
  List.iter (fun x -> Ladder_queue.push l ~time:5 x) [ 1; 2; 3; 4; 5 ];
  let order =
    List.init 5 (fun _ -> match Ladder_queue.pop l with Some (_, x) -> x | None -> -1)
  in
  Alcotest.(check (list int)) "fifo among equal times" [ 1; 2; 3; 4; 5 ] order

let test_ladder_spans_rungs () =
  (* Times spread over ten orders of magnitude so the first pop spreads
     the top bag across several progressively finer rungs; order must
     still be exact. *)
  let times = [ 3; 300; 30_000; 3_000_000; 300_000_000; 1 lsl 35; (1 lsl 35) + 1 ] in
  let l = Ladder_queue.create () in
  List.iteri (fun i time -> Ladder_queue.push l ~time i) (List.rev times);
  Alcotest.(check int) "length" (List.length times) (Ladder_queue.length l);
  List.iteri
    (fun expect_i expect_t ->
      match Ladder_queue.pop l with
      | Some (t, i) ->
          Alcotest.(check int) "time order" expect_t t;
          Alcotest.(check int) "payload" (List.length times - 1 - expect_i) i
      | None -> Alcotest.fail "queue emptied early")
    times

let test_ladder_past_push_raises () =
  let l = Ladder_queue.create () in
  Ladder_queue.push l ~time:100 ();
  ignore (Ladder_queue.pop l);
  Alcotest.(check int) "position advanced" 100 (Ladder_queue.position l);
  Alcotest.check_raises "past push"
    (Invalid_argument "Ladder_queue.push: time=50 is before ladder position 100")
    (fun () -> Ladder_queue.push l ~time:50 ())

let test_ladder_releases_payloads () =
  (* Free-listed nodes must not pin their old payload after the pop. *)
  let l = Ladder_queue.create () in
  let weak = Weak.create 1 in
  let tracked = Bytes.create 64 in
  Weak.set weak 0 (Some tracked);
  Ladder_queue.push l ~time:7 tracked;
  Ladder_queue.push l ~time:(1 lsl 40) (Bytes.create 64);
  ignore (Ladder_queue.pop l);
  ignore (Ladder_queue.pop l);
  Gc.full_major ();
  Alcotest.(check bool) "popped payload collected" false (Weak.check weak 0)

let test_ladder_drain_reentry () =
  (* Same-instant events pushed from inside the drain callback fire in
     the same drain, after their same-time predecessors. *)
  let log = ref [] in
  let l = Ladder_queue.create () in
  Ladder_queue.push l ~time:10 `First;
  Ladder_queue.push l ~time:10 `Second;
  Ladder_queue.drain_upto l ~limit:50 (fun ~time x ->
      log := (time, x) :: !log;
      if x = `First then begin
        Ladder_queue.push l ~time `Nested;
        Ladder_queue.push l ~time:200 `Late
      end);
  Alcotest.(check int) "drained three" 3 (List.length !log);
  Alcotest.(check bool) "order"
    true
    (List.rev !log = [ (10, `First); (10, `Second); (10, `Nested) ]);
  Alcotest.(check (option int)) "late event still queued" (Some 200) (Ladder_queue.peek_time l)

let test_next_time_take_agree () =
  (* next_time/take is the allocation-free peek/pop pair the scheduler
     hot path uses; it must agree with peek_time/pop on all three
     backends, report -1 on empty, and raise on an empty take. *)
  let h = Event_heap.create () and w = Timing_wheel.create () and l = Ladder_queue.create () in
  Alcotest.(check int) "heap empty" (-1) (Event_heap.next_time h);
  Alcotest.(check int) "wheel empty" (-1) (Timing_wheel.next_time w);
  Alcotest.(check int) "ladder empty" (-1) (Ladder_queue.next_time l);
  List.iter
    (fun (time, x) ->
      Event_heap.push h ~time x;
      Timing_wheel.push w ~time x;
      Ladder_queue.push l ~time x)
    [ (20, "b"); (10, "a"); (10, "a2"); (30, "c") ];
  let drain name next take =
    let order =
      List.init 4 (fun _ ->
          let tm = next () in
          Alcotest.(check bool) (name ^ " next_time nonnegative") true (tm >= 0);
          take tm)
    in
    Alcotest.(check (list string)) (name ^ " take order") [ "a"; "a2"; "b"; "c" ] order;
    Alcotest.(check int) (name ^ " drained") (-1) (next ())
  in
  drain "heap" (fun () -> Event_heap.next_time h) (fun _ -> Event_heap.take h);
  drain "wheel"
    (fun () -> Timing_wheel.next_time w)
    (fun time -> Timing_wheel.take w ~time);
  drain "ladder" (fun () -> Ladder_queue.next_time l) (fun _ -> Ladder_queue.take l);
  Alcotest.check_raises "heap empty take"
    (Invalid_argument "Event_heap.take: empty heap") (fun () -> ignore (Event_heap.take h));
  Alcotest.check_raises "wheel empty take"
    (Invalid_argument "Timing_wheel.take: empty wheel") (fun () ->
      ignore (Timing_wheel.take w ~time:(Timing_wheel.next_time w)));
  Alcotest.check_raises "ladder empty take"
    (Invalid_argument "Ladder_queue.take: empty queue") (fun () -> ignore (Ladder_queue.take l))

(* Property: the wheel agrees with the heap (the reference) on every
   pop under random interleavings of pushes and pops, including FIFO
   order among time ties and times spread far enough to exercise all
   levels and the overflow. *)
let qcheck_wheel_matches_heap =
  QCheck.Test.make ~name:"wheel pops exactly match heap (order and ties)" ~count:300
    QCheck.(pair small_int (int_bound 300))
    (fun (seed, nops) ->
      let rng = Stats.Rng.create ~seed in
      let h = Event_heap.create () in
      let w = Timing_wheel.create () in
      let seq = ref 0 in
      let floor = ref 0 in
      let ok = ref true in
      for _ = 1 to nops do
        if Stats.Rng.int rng 3 < 2 then begin
          (* Mix of near (dense, tie-heavy), mid (cascading) and far
             (overflow) horizons, always >= the popped floor. *)
          let delta =
            match Stats.Rng.int rng 4 with
            | 0 -> Stats.Rng.int rng 4
            | 1 -> Stats.Rng.int rng 1000
            | 2 -> Stats.Rng.int rng 100_000_000
            | _ -> (1 lsl 33) + Stats.Rng.int rng 1000
          in
          let time = !floor + delta in
          Event_heap.push h ~time !seq;
          Timing_wheel.push w ~time !seq;
          incr seq
        end
        else begin
          (match (Event_heap.pop h, Timing_wheel.pop w) with
          | Some (ht, hx), Some (wt, wx) ->
              if ht <> wt || hx <> wx then ok := false;
              floor := max !floor ht
          | None, None -> ()
          | _ -> ok := false);
          if Event_heap.length h <> Timing_wheel.length w then ok := false
        end
      done;
      (* Drain both to the end. *)
      let continue = ref true in
      while !ok && !continue do
        match (Event_heap.pop h, Timing_wheel.pop w) with
        | Some (ht, hx), Some (wt, wx) -> if ht <> wt || hx <> wx then ok := false
        | None, None -> continue := false
        | _ -> ok := false
      done;
      !ok)

(* Same property against the ladder queue: its adaptive rung spreading
   must reproduce the heap's exact (time, seq) pop sequence, ties
   included. *)
let qcheck_ladder_matches_heap =
  QCheck.Test.make ~name:"ladder pops exactly match heap (order and ties)" ~count:300
    QCheck.(pair small_int (int_bound 300))
    (fun (seed, nops) ->
      let rng = Stats.Rng.create ~seed in
      let h = Event_heap.create () in
      let l = Ladder_queue.create () in
      let seq = ref 0 in
      let floor = ref 0 in
      let ok = ref true in
      for _ = 1 to nops do
        if Stats.Rng.int rng 3 < 2 then begin
          let delta =
            match Stats.Rng.int rng 4 with
            | 0 -> Stats.Rng.int rng 4
            | 1 -> Stats.Rng.int rng 1000
            | 2 -> Stats.Rng.int rng 100_000_000
            | _ -> (1 lsl 33) + Stats.Rng.int rng 1000
          in
          let time = !floor + delta in
          Event_heap.push h ~time !seq;
          Ladder_queue.push l ~time !seq;
          incr seq
        end
        else begin
          (match (Event_heap.pop h, Ladder_queue.pop l) with
          | Some (ht, hx), Some (lt, lx) ->
              if ht <> lt || hx <> lx then ok := false;
              floor := max !floor ht
          | None, None -> ()
          | _ -> ok := false);
          if Event_heap.length h <> Ladder_queue.length l then ok := false
        end
      done;
      let continue = ref true in
      while !ok && !continue do
        match (Event_heap.pop h, Ladder_queue.pop l) with
        | Some (ht, hx), Some (lt, lx) -> if ht <> lt || hx <> lx then ok := false
        | None, None -> continue := false
        | _ -> ok := false
      done;
      !ok)

(* Satellite: backend parity at the scheduler level. A random program
   of schedule / post / every / cancel, replayed against a Heap-backed
   and a Wheel-backed scheduler, must fire the same (time, id) sequence
   and agree on the pending/executed counters throughout. *)
let qcheck_backend_parity =
  QCheck.Test.make ~name:"scheduler backends fire identically (heap vs wheel vs ladder)"
    ~count:150
    QCheck.(pair small_int (int_bound 80))
    (fun (seed, n) ->
      let replay backend =
        let rng = Stats.Rng.create ~seed in
        let sched = Scheduler.create ~backend () in
        let fired = ref [] in
        let handles = ref [] in
        for i = 0 to n - 1 do
          let record id () = fired := (Scheduler.now sched, id) :: !fired in
          (match Stats.Rng.int rng 4 with
          | 0 ->
              let at = Stats.Rng.int rng 12 in
              handles := Scheduler.schedule sched ~at (record i) :: !handles
          | 1 ->
              let at = Stats.Rng.int rng 12 in
              Scheduler.post sched ~at (record i)
          | 2 ->
              let period = 1 + Stats.Rng.int rng 5 in
              handles := Scheduler.every sched ~period (record i) :: !handles
          | _ ->
              if !handles <> [] then
                Scheduler.cancel
                  (List.nth !handles (Stats.Rng.int rng (List.length !handles))));
          ignore (Stats.Rng.int rng 2)
        done;
        let pending_before = Scheduler.pending sched in
        Scheduler.run ~until:60 sched;
        List.iter Scheduler.cancel !handles;
        (List.rev !fired, pending_before, Scheduler.executed sched, Scheduler.now sched)
      in
      let heap = replay Sched_backend.Heap in
      heap = replay Sched_backend.Wheel && heap = replay Sched_backend.Ladder)

let test_post_pool_reuse () =
  (* post/post_after recycle their cells; a post made from inside a
     posted callback (the self-rescheduling pattern) must be safe and
     keep counters exact. *)
  let sched = Scheduler.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 5 then Scheduler.post_after sched ~delay:10 tick
  in
  Scheduler.post sched ~at:0 tick;
  Scheduler.post sched ~at:0 (fun () -> incr count);
  Scheduler.run sched;
  (* tick at 0 then rescheduled at 10/20/30 (stopping at 5 counting the
     same-instant anonymous post, which runs second). *)
  Alcotest.(check int) "all firings ran" 5 !count;
  Alcotest.(check int) "executed counter" 5 (Scheduler.executed sched);
  Alcotest.(check int) "nothing pending" 0 (Scheduler.pending sched);
  Alcotest.check_raises "past post raises"
    (Invalid_argument "Scheduler.post: at=1 is before now=30") (fun () ->
      Scheduler.post sched ~at:1 (fun () -> ()))

(* Satellite: the event hot path — post into a warm scheduler, step it —
   must be allocation-free on every backend. Cells come from the
   scheduler pool, wheel/ladder nodes from their free lists, the heap
   stores events in its parallel SoA arrays, and step peeks/takes
   without building options or tuples, so a steady-state cycle touches
   the minor heap not at all. *)
let test_scheduler_zero_alloc backend () =
  let sched = Scheduler.create ~backend () in
  let cb () = () in
  let cycle n =
    for _ = 1 to n do
      Scheduler.post sched ~at:(Scheduler.now sched + 1) cb;
      ignore (Scheduler.step sched : bool)
    done
  in
  (* Warm the cell pool and the backend's node free list. *)
  cycle 256;
  let iters = 10_000 in
  let w0 = Gc.minor_words () in
  cycle iters;
  let delta = Gc.minor_words () -. w0 in
  (* The [Gc.minor_words] floats themselves cost a few boxed words;
     anything beyond that means a per-event allocation crept in. *)
  Alcotest.(check bool)
    (Printf.sprintf "%s: %d post/step cycles allocated %.0f minor words"
       (Sched_backend.to_string backend) iters delta)
    true (delta < 64.)

let test_wheel_run_until_then_schedule () =
  (* Regression for the base/clock invariant: [run ~until] moves the
     clock past the last event without moving the wheel position, so a
     later schedule at [now] must still be accepted and fire — including
     across the 2^32 ps overflow boundary. *)
  let sched = Scheduler.create ~backend:Sched_backend.Wheel () in
  let log = ref [] in
  Scheduler.post sched ~at:10 (fun () -> log := 10 :: !log);
  Scheduler.run ~until:(5 * (1 lsl 32)) sched;
  Alcotest.(check int) "clock at until" (5 * (1 lsl 32)) (Scheduler.now sched);
  Scheduler.post sched ~at:(Scheduler.now sched) (fun () ->
      log := Scheduler.now sched :: !log);
  Scheduler.post_after sched ~delay:7 (fun () -> log := Scheduler.now sched :: !log);
  Scheduler.run sched;
  Alcotest.(check (list int))
    "events across the gap fire"
    [ 10; 5 * (1 lsl 32); (5 * (1 lsl 32)) + 7 ]
    (List.rev !log)

let test_zero_event_run_records_no_wall () =
  (* Satellite: a [run ~until] that dispatches nothing must not observe
     a wall/sim sample (it would only measure Sys.time granularity). *)
  let module M = Obs.Metrics in
  let sched = Scheduler.create () in
  let reg = M.create () in
  Scheduler.set_metrics sched reg;
  Scheduler.run ~until:(Sim_time.ms 1) sched;
  (match M.find_value reg "scheduler.wall_s_per_sim_s" with
  | Some (M.Summary_v { count; _ }) ->
      Alcotest.(check int) "no samples from empty run" 0 count
  | _ -> Alcotest.fail "wall summary not registered");
  (* A run that does dispatch work records exactly one sample. *)
  Scheduler.post sched ~at:(Sim_time.ms 2) (fun () -> ());
  Scheduler.run ~until:(Sim_time.ms 3) sched;
  match M.find_value reg "scheduler.wall_s_per_sim_s" with
  | Some (M.Summary_v { count; _ }) ->
      Alcotest.(check int) "one sample from real run" 1 count
  | _ -> Alcotest.fail "wall summary not registered"

(* Property: under any random interleaving of pushes and pops, every
   pop returns exactly what a reference model says — the minimum-time
   element of the current contents, breaking time ties by insertion
   (schedule) order.  The interleaving is driven by a seeded Stats.Rng
   so failures replay exactly. *)
let qcheck_heap_interleaved =
  QCheck.Test.make ~name:"heap interleaved push/pop: min-time, FIFO on ties" ~count:300
    QCheck.(pair small_int (int_bound 200))
    (fun (seed, nops) ->
      let rng = Stats.Rng.create ~seed in
      let h = Event_heap.create () in
      let seq = ref 0 in
      (* Reference model: the multiset of live (time, seq) pairs. *)
      let model = ref [] in
      let ok = ref true in
      let check_pop () =
        let expected =
          match List.sort compare !model with [] -> None | min :: _ -> Some min
        in
        let got = Event_heap.pop h in
        (match (got, expected) with
        | Some (t, s), Some (et, es) when t = et && s = es ->
            model := List.filter (( <> ) (et, es)) !model
        | None, None -> ()
        | _ -> ok := false);
        (match got with
        | Some (t, _) ->
            if Event_heap.peek_time h <> None
               && Option.get (Event_heap.peek_time h) < t
            then ok := false
        | None -> ())
      in
      for _ = 1 to nops do
        if Stats.Rng.int rng 3 < 2 then begin
          (* Few distinct times so ties are common. *)
          let time = Stats.Rng.int rng 8 in
          Event_heap.push h ~time !seq;
          model := (time, !seq) :: !model;
          incr seq
        end
        else check_pop ()
      done;
      (* Drain the rest: the model must agree to the end. *)
      while !ok && (not (Event_heap.is_empty h) || !model <> []) do
        check_pop ()
      done;
      !ok)

(* Property: under random interleavings of schedule/cancel against the
   scheduler, cancelled callbacks never run, live callbacks run in
   non-decreasing time with FIFO ties, and [pending] counts exactly the
   live (non-cancelled) events. *)
let qcheck_scheduler_interleaved =
  QCheck.Test.make ~name:"scheduler schedule/cancel: cancelled never run, order kept"
    ~count:200
    QCheck.(pair small_int (int_bound 60))
    (fun (seed, n) ->
      let rng = Stats.Rng.create ~seed in
      let sched = Scheduler.create () in
      let ran = ref [] in
      let handles = ref [] in
      let cancelled = ref [] in
      for i = 0 to n - 1 do
        let at = Stats.Rng.int rng 10 in
        let h = Scheduler.schedule sched ~at (fun () -> ran := (at, i) :: !ran) in
        handles := (h, i) :: !handles;
        (* Cancel a random earlier-or-current handle about a third of
           the time (double-cancel included on purpose). *)
        if Stats.Rng.int rng 3 = 0 then begin
          let victims = !handles in
          let vh, vi = List.nth victims (Stats.Rng.int rng (List.length victims)) in
          Scheduler.cancel vh;
          if not (List.mem vi !cancelled) then cancelled := vi :: !cancelled
        end
      done;
      let live = n - List.length !cancelled in
      let pending_ok = Scheduler.pending sched = live in
      Scheduler.run sched;
      let ran = List.rev !ran in
      let none_cancelled_ran =
        List.for_all (fun (_, i) -> not (List.mem i !cancelled)) ran
      in
      let all_live_ran = List.length ran = live in
      let rec ordered = function
        | (t1, i1) :: ((t2, i2) :: _ as rest) ->
            (t1 < t2 || (t1 = t2 && i1 < i2)) && ordered rest
        | _ -> true
      in
      pending_ok && none_cancelled_ran && all_live_ran && ordered ran
      && Scheduler.pending sched = 0)

let test_pending_excludes_cancelled () =
  let sched = Scheduler.create () in
  let handles =
    List.init 5 (fun i -> Scheduler.schedule sched ~at:(10 * (i + 1)) (fun () -> ()))
  in
  Alcotest.(check int) "all pending" 5 (Scheduler.pending sched);
  Scheduler.cancel (List.nth handles 1);
  Scheduler.cancel (List.nth handles 3);
  Alcotest.(check int) "cancelled excluded" 3 (Scheduler.pending sched);
  (* Cancelling twice must not double-count. *)
  Scheduler.cancel (List.nth handles 1);
  Alcotest.(check int) "double cancel is idempotent" 3 (Scheduler.pending sched);
  Scheduler.run sched;
  Alcotest.(check int) "drained" 0 (Scheduler.pending sched);
  Alcotest.(check int) "only live ones executed" 3 (Scheduler.executed sched)

let test_scheduler_order () =
  let sched = Scheduler.create () in
  let log = ref [] in
  ignore (Scheduler.schedule sched ~at:20 (fun () -> log := "b" :: !log));
  ignore (Scheduler.schedule sched ~at:10 (fun () -> log := "a" :: !log));
  ignore (Scheduler.schedule sched ~at:30 (fun () -> log := "c" :: !log));
  Scheduler.run sched;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 30 (Scheduler.now sched)

let test_scheduler_cancel () =
  let sched = Scheduler.create () in
  let ran = ref false in
  let h = Scheduler.schedule sched ~at:10 (fun () -> ran := true) in
  Scheduler.cancel h;
  Scheduler.run sched;
  Alcotest.(check bool) "cancelled did not run" false !ran

let test_scheduler_past_raises () =
  let sched = Scheduler.create () in
  ignore (Scheduler.schedule sched ~at:100 (fun () -> ()));
  Scheduler.run sched;
  Alcotest.check_raises "past" (Invalid_argument "Scheduler.schedule: at=50 is before now=100")
    (fun () -> ignore (Scheduler.schedule sched ~at:50 (fun () -> ())))

let test_every_past_start_raises () =
  (* Regression: [every ?start] used to bypass the past-guard that
     [schedule] enforces, silently corrupting the clock. *)
  let sched = Scheduler.create () in
  ignore (Scheduler.schedule sched ~at:100 (fun () -> ()));
  Scheduler.run sched;
  Alcotest.check_raises "stale start"
    (Invalid_argument "Scheduler.every: start=50 is before now=100") (fun () ->
      ignore (Scheduler.every sched ~start:50 ~period:10 (fun () -> ())));
  (* start = now is fine, like schedule at now. *)
  let fired = ref 0 in
  ignore (Scheduler.every sched ~start:100 ~period:10 (fun () -> incr fired));
  Scheduler.run ~until:130 sched;
  Alcotest.(check int) "start=now fires" 4 !fired

let test_scheduler_same_instant_reentry () =
  (* A callback scheduling at the current instant runs in the same
     drain, after currently queued same-time events. *)
  let sched = Scheduler.create () in
  let log = ref [] in
  ignore
    (Scheduler.schedule sched ~at:10 (fun () ->
         log := "first" :: !log;
         ignore (Scheduler.schedule sched ~at:10 (fun () -> log := "nested" :: !log))));
  ignore (Scheduler.schedule sched ~at:10 (fun () -> log := "second" :: !log));
  Scheduler.run sched;
  Alcotest.(check (list string)) "reentry order" [ "first"; "second"; "nested" ] (List.rev !log)

let test_scheduler_until () =
  let sched = Scheduler.create () in
  let count = ref 0 in
  ignore (Scheduler.every sched ~period:10 (fun () -> incr count));
  Scheduler.run ~until:100 sched;
  Alcotest.(check int) "10 periodic firings in 100" 10 !count;
  Alcotest.(check int) "clock advanced to until" 100 (Scheduler.now sched)

let test_periodic_cancel_stops () =
  let sched = Scheduler.create () in
  let count = ref 0 in
  let h = Scheduler.every sched ~period:10 (fun () -> incr count) in
  ignore
    (Scheduler.schedule sched ~at:35 (fun () -> Scheduler.cancel h));
  Scheduler.run ~until:200 sched;
  Alcotest.(check int) "three firings before cancel at 35" 3 !count

let test_periodic_start () =
  let sched = Scheduler.create () in
  let times = ref [] in
  ignore
    (Scheduler.every sched ~start:5 ~period:10 (fun () ->
         times := Scheduler.now sched :: !times));
  Scheduler.run ~until:40 sched;
  Alcotest.(check (list int)) "start offset" [ 5; 15; 25; 35 ] (List.rev !times)

let test_executed_counter () =
  let sched = Scheduler.create () in
  for i = 1 to 5 do
    ignore (Scheduler.schedule sched ~at:(i * 10) (fun () -> ()))
  done;
  Scheduler.run sched;
  Alcotest.(check int) "executed" 5 (Scheduler.executed sched)

let test_trace_bounds () =
  let tr = Trace.create ~limit:3 () in
  Trace.enable tr;
  for i = 1 to 5 do
    Trace.record tr ~time:i (Printf.sprintf "ev%d" i)
  done;
  Alcotest.(check int) "count includes dropped" 5 (Trace.count tr);
  Alcotest.(check int) "kept only limit" 3 (List.length (Trace.records tr));
  Alcotest.(check (option (pair int string)))
    "find" (Some (4, "ev4")) (Trace.find tr ~pattern:"ev4")

let test_trace_disabled () =
  let tr = Trace.create () in
  Trace.record tr ~time:1 "ignored";
  Alcotest.(check int) "disabled records nothing" 0 (Trace.count tr)

let suite =
  [
    Alcotest.test_case "time units" `Quick test_time_units;
    Alcotest.test_case "tx_time" `Quick test_tx_time;
    Alcotest.test_case "cycles" `Quick test_cycles;
    Alcotest.test_case "heap ordering" `Quick test_heap_ordering;
    Alcotest.test_case "heap FIFO ties" `Quick test_heap_fifo_ties;
    Alcotest.test_case "heap releases payloads" `Quick test_heap_releases_payloads;
    Alcotest.test_case "heap grow pins nothing" `Quick test_heap_grow_no_pin;
    Alcotest.test_case "wheel ordering" `Quick test_wheel_ordering;
    Alcotest.test_case "wheel FIFO ties" `Quick test_wheel_fifo_ties;
    Alcotest.test_case "wheel spans levels and overflow" `Quick test_wheel_spans_levels;
    Alcotest.test_case "wheel overflow FIFO" `Quick test_wheel_overflow_fifo;
    Alcotest.test_case "wheel rejects past pushes" `Quick test_wheel_past_push_raises;
    Alcotest.test_case "wheel releases payloads" `Quick test_wheel_releases_payloads;
    Alcotest.test_case "wheel drain reentry" `Quick test_wheel_drain_reentry;
    Alcotest.test_case "ladder ordering" `Quick test_ladder_ordering;
    Alcotest.test_case "ladder FIFO ties" `Quick test_ladder_fifo_ties;
    Alcotest.test_case "ladder spans rungs" `Quick test_ladder_spans_rungs;
    Alcotest.test_case "ladder rejects past pushes" `Quick test_ladder_past_push_raises;
    Alcotest.test_case "ladder releases payloads" `Quick test_ladder_releases_payloads;
    Alcotest.test_case "ladder drain reentry" `Quick test_ladder_drain_reentry;
    Alcotest.test_case "next_time/take agree across backends" `Quick
      test_next_time_take_agree;
    QCheck_alcotest.to_alcotest qcheck_wheel_matches_heap;
    QCheck_alcotest.to_alcotest qcheck_ladder_matches_heap;
    QCheck_alcotest.to_alcotest qcheck_backend_parity;
    Alcotest.test_case "post pool reuse" `Quick test_post_pool_reuse;
    Alcotest.test_case "zero-alloc post/step (heap)" `Quick
      (test_scheduler_zero_alloc Sched_backend.Heap);
    Alcotest.test_case "zero-alloc post/step (wheel)" `Quick
      (test_scheduler_zero_alloc Sched_backend.Wheel);
    Alcotest.test_case "zero-alloc post/step (ladder)" `Quick
      (test_scheduler_zero_alloc Sched_backend.Ladder);
    Alcotest.test_case "wheel run-until then schedule" `Quick
      test_wheel_run_until_then_schedule;
    Alcotest.test_case "zero-event run records no wall sample" `Quick
      test_zero_event_run_records_no_wall;
    QCheck_alcotest.to_alcotest qcheck_heap_sorted;
    QCheck_alcotest.to_alcotest qcheck_heap_interleaved;
    QCheck_alcotest.to_alcotest qcheck_scheduler_interleaved;
    Alcotest.test_case "pending excludes cancelled" `Quick test_pending_excludes_cancelled;
    Alcotest.test_case "scheduler order" `Quick test_scheduler_order;
    Alcotest.test_case "scheduler cancel" `Quick test_scheduler_cancel;
    Alcotest.test_case "scheduling in the past raises" `Quick test_scheduler_past_raises;
    Alcotest.test_case "every with stale start raises" `Quick test_every_past_start_raises;
    Alcotest.test_case "same-instant reentry" `Quick test_scheduler_same_instant_reentry;
    Alcotest.test_case "run until" `Quick test_scheduler_until;
    Alcotest.test_case "periodic cancel" `Quick test_periodic_cancel_stops;
    Alcotest.test_case "periodic start offset" `Quick test_periodic_start;
    Alcotest.test_case "executed counter" `Quick test_executed_counter;
    Alcotest.test_case "trace bounds" `Quick test_trace_bounds;
    Alcotest.test_case "trace disabled" `Quick test_trace_disabled;
  ]
