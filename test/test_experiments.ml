(* Smoke + invariant tests for the experiment registry.

   Each experiment's [run] is exercised (cheap ones directly; the full
   set is covered by the bench harness), and the registry's structure
   is validated so the CLI and bench never drift apart. *)

let test_registry_complete () =
  let names = Experiments.Registry.names () in
  Alcotest.(check bool) "at least 21 experiments" true (List.length names >= 21);
  List.iter
    (fun required ->
      if not (List.mem required names) then Alcotest.failf "missing experiment %s" required)
    [
      "table1"; "table2"; "table3"; "fig4-linerate"; "fig3-staleness"; "microburst"; "cms-reset";
      "hula"; "liveness"; "flowrate"; "aqm"; "frr"; "policer"; "netcache"; "tofino-emulation";
      "int-telemetry"; "ablations"; "migration"; "p4-equivalence"; "wfq"; "ecn"; "chaos";
      "resilience";
    ]

let test_registry_names_unique () =
  let names = Experiments.Registry.names () in
  let sorted = List.sort_uniq String.compare names in
  Alcotest.(check int) "no duplicate names" (List.length names) (List.length sorted)

let test_registry_find () =
  (match Experiments.Registry.find "table3" with
  | Some e -> Alcotest.(check string) "id" "E3" e.Experiments.Registry.experiment_id
  | None -> Alcotest.fail "table3 not found");
  Alcotest.(check bool) "unknown is None" true (Experiments.Registry.find "nope" = None)

let test_e3_reproduces_table3 () =
  let r = Experiments.E03_table3.run () in
  List.iter
    (fun (name, expected) ->
      Alcotest.(check (float 1e-9)) name expected
        (List.assoc name r.Experiments.E03_table3.increases))
    [ ("Lookup Tables", 0.5); ("Flip Flops", 0.4); ("Block RAM", 2.0) ]

let test_e6_shape () =
  let r = Experiments.E06_microburst.run () in
  let ed = r.Experiments.E06_microburst.event_driven in
  let sn = r.Experiments.E06_microburst.snappy in
  Alcotest.(check bool) "state reduction at least 4x" true
    (sn.Experiments.E06_microburst.state_bits >= 4 * ed.Experiments.E06_microburst.state_bits);
  Alcotest.(check (list int)) "event-driven finds exactly the culprits"
    r.Experiments.E06_microburst.culprit_slots ed.Experiments.E06_microburst.detected_slots

let test_e9_shape () =
  let r = Experiments.E09_liveness.run () in
  match
    ( r.Experiments.E09_liveness.event_driven.Experiments.E09_liveness.detection_latency_ns,
      r.Experiments.E09_liveness.cp_driven.Experiments.E09_liveness.detection_latency_ns )
  with
  | Some ed, Some cp -> Alcotest.(check bool) "event-driven 3x faster" true (ed *. 3. <= cp)
  | _ -> Alcotest.fail "a variant failed to detect the failure"

let test_e13_shape () =
  let r = Experiments.E13_policer.run () in
  match r.Experiments.E13_policer.points with
  | [ extern_m; t10; _; t1000 ] ->
      Alcotest.(check bool) "extern enforces CIR" true
        (extern_m.Experiments.E13_policer.error_vs_cir < 0.05);
      Alcotest.(check bool) "fine timer matches" true
        (t10.Experiments.E13_policer.error_vs_cir < 0.05);
      Alcotest.(check bool) "coarse refill starves" true
        (t1000.Experiments.E13_policer.error_vs_cir > 0.2)
  | _ -> Alcotest.fail "expected 4 points"

let test_e22_shape () =
  let r = Experiments.E22_resilience.run () in
  Alcotest.(check bool) "E22 acceptance claims hold" true (Experiments.E22_resilience.passes r);
  let q = Experiments.E22_resilience.find_leg r "quarantine" in
  Alcotest.(check bool) "invariant checker actually swept" true
    (q.Experiments.E22_resilience.invariant_passes > 0);
  let d = Experiments.E22_resilience.find_leg r "drop-event" in
  Alcotest.(check bool) "drop-event completes without trips" true
    (d.Experiments.E22_resilience.completed && d.Experiments.E22_resilience.trips = 0)

let suite =
  [
    Alcotest.test_case "registry complete" `Quick test_registry_complete;
    Alcotest.test_case "registry unique" `Quick test_registry_names_unique;
    Alcotest.test_case "registry find" `Quick test_registry_find;
    Alcotest.test_case "E3 reproduces Table 3" `Quick test_e3_reproduces_table3;
    Alcotest.test_case "E6 shape claims" `Quick test_e6_shape;
    Alcotest.test_case "E9 shape claims" `Quick test_e9_shape;
    Alcotest.test_case "E13 shape claims" `Quick test_e13_shape;
    Alcotest.test_case "E22 shape claims" `Quick test_e22_shape;
  ]
