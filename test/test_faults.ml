(* Tests for the fault-injection subsystem: each fault process in
   isolation, plus the engine's accounting. *)

module Sim_time = Eventsim.Sim_time
module Scheduler = Eventsim.Scheduler
module Link = Tmgr.Link
module Packet = Netcore.Packet
module Schedule = Faults.Schedule
module Perturb = Faults.Perturb

let mk_pkt ?(bytes = 100) () =
  Packet.udp_packet
    ~src:(Netcore.Ipv4_addr.of_string "10.0.0.1")
    ~dst:(Netcore.Ipv4_addr.of_string "10.0.0.2")
    ~src_port:1 ~dst_port:2
    ~payload_len:(max 0 (bytes - 42))
    ()

let occurrences ?(seed = 1) ~stop plan =
  let sched = Scheduler.create () in
  let rng = Stats.Rng.create ~seed in
  let times = ref [] in
  Schedule.drive ~sched ~rng ~stop plan (fun () ->
      times := Scheduler.now sched :: !times);
  Scheduler.run sched;
  List.rev !times

(* --- schedules --- *)

let test_schedule_trace () =
  let times =
    occurrences ~stop:(Sim_time.us 100)
      (Schedule.Trace [ Sim_time.us 30; Sim_time.us 10; Sim_time.us 10; Sim_time.us 200 ])
  in
  (* Sorted, deduplicated, beyond-stop occurrence dropped. *)
  Alcotest.(check (list int)) "trace times" [ Sim_time.us 10; Sim_time.us 30 ] times

let test_schedule_periodic () =
  let times =
    occurrences ~stop:(Sim_time.us 100)
      (Schedule.Periodic { start = Sim_time.us 10; period = Sim_time.us 30; jitter = 0 })
  in
  Alcotest.(check (list int))
    "exact arithmetic times"
    [ Sim_time.us 10; Sim_time.us 40; Sim_time.us 70 ]
    times;
  let p = Schedule.periodic (Sim_time.us 25) in
  Alcotest.(check (list int))
    "periodic helper starts after one period"
    [ Sim_time.us 25; Sim_time.us 50; Sim_time.us 75 ]
    (occurrences ~stop:(Sim_time.us 100) p)

let test_schedule_jitter_deterministic () =
  let plan =
    Schedule.Periodic
      { start = Sim_time.us 5; period = Sim_time.us 20; jitter = Sim_time.us 10 }
  in
  let a = occurrences ~seed:9 ~stop:(Sim_time.ms 1) plan in
  let b = occurrences ~seed:9 ~stop:(Sim_time.ms 1) plan in
  Alcotest.(check (list int)) "same seed, same jittered timeline" a b;
  List.iteri
    (fun i t ->
      if i > 0 then
        let gap = t - List.nth a (i - 1) in
        Alcotest.(check bool)
          "gap within [period, period+jitter]" true
          (gap >= Sim_time.us 20 && gap <= Sim_time.us 30))
    a

let test_schedule_poisson_deterministic () =
  let plan = Schedule.Poisson { start = Sim_time.us 10; rate_per_sec = 1e6 } in
  let a = occurrences ~seed:3 ~stop:(Sim_time.ms 1) plan in
  let b = occurrences ~seed:3 ~stop:(Sim_time.ms 1) plan in
  let c = occurrences ~seed:4 ~stop:(Sim_time.ms 1) plan in
  Alcotest.(check (list int)) "same seed, same timeline" a b;
  Alcotest.(check bool) "different seed, different timeline" true (a <> c);
  Alcotest.(check bool) "a useful number of occurrences" true (List.length a > 100);
  List.iter
    (fun t ->
      Alcotest.(check bool) "within [start, stop)" true
        (t >= Sim_time.us 10 && t < Sim_time.ms 1))
    a

(* --- perturbations --- *)

let mk_link sched got =
  let ep = { Link.deliver = (fun _ -> incr got); notify_status = (fun ~up:_ -> ()) } in
  Link.create ~sched ~delay:(Sim_time.us 1) ~a:ep ~b:ep ()

let test_perturb_none () =
  let sched = Scheduler.create () in
  let got = ref 0 in
  let link = mk_link sched got in
  Perturb.attach ~rng:(Stats.Rng.create ~seed:1) Perturb.none link;
  for _ = 1 to 50 do
    Link.send link ~from_a:true (mk_pkt ())
  done;
  Scheduler.run sched;
  Alcotest.(check int) "all delivered" 50 !got;
  Alcotest.(check int) "no drops" 0 (Link.perturb_drops link);
  Alcotest.(check int) "no dups" 0 (Link.perturb_dups link);
  Alcotest.(check int) "no delays" 0 (Link.perturb_delays link)

let test_perturb_bands () =
  (* drop_p = 1: every packet dropped. *)
  let sched = Scheduler.create () in
  let got = ref 0 in
  let link = mk_link sched got in
  let all_drop = { Perturb.none with Perturb.drop_p = 1. } in
  Perturb.attach ~rng:(Stats.Rng.create ~seed:1) all_drop link;
  for _ = 1 to 20 do
    Link.send link ~from_a:true (mk_pkt ())
  done;
  Scheduler.run sched;
  Alcotest.(check int) "nothing delivered" 0 !got;
  Alcotest.(check int) "all dropped" 20 (Link.perturb_drops link);
  Alcotest.(check int) "drops are also link losses" 20 (Link.lost link)

let test_perturb_statistics () =
  (* With a lossy config over many packets every verdict class shows
     up, and the verdict stream is seed-deterministic. *)
  let run seed =
    let sched = Scheduler.create () in
    let got = ref 0 in
    let link = mk_link sched got in
    let verdicts = ref [] in
    let tag = function
      | Link.Deliver -> 'k'
      | Link.Drop -> 'x'
      | Link.Delay _ -> 'd'
      | Link.Duplicate _ -> '2'
    in
    Perturb.attach ~rng:(Stats.Rng.create ~seed)
      ~on_decision:(fun v -> verdicts := tag v :: !verdicts)
      (Perturb.lossy ~drop_p:0.1 ~dup_p:0.1 ~delay_p:0.1 ~max_extra_delay:(Sim_time.us 2) ())
      link;
    for _ = 1 to 400 do
      Link.send link ~from_a:true (mk_pkt ())
    done;
    Scheduler.run sched;
    (List.rev !verdicts, !got, Link.perturb_drops link, Link.perturb_dups link)
  in
  let v1, got, drops, dups = run 11 in
  let v2, _, _, _ = run 11 in
  Alcotest.(check (list char)) "verdicts deterministic" v1 v2;
  let count c = List.length (List.filter (Char.equal c) v1) in
  Alcotest.(check bool) "every class occurred" true
    (count 'k' > 0 && count 'x' > 0 && count 'd' > 0 && count '2' > 0);
  Alcotest.(check int) "drops match verdicts" (count 'x') drops;
  Alcotest.(check bool) "dup copies at least one per verdict" true (dups >= count '2');
  Alcotest.(check int) "conservation: delivered = sent - drops + dup copies"
    (400 - drops + dups) got

let test_perturb_check_config () =
  let sched = Scheduler.create () in
  let link = mk_link sched (ref 0) in
  Alcotest.check_raises "probabilities must sum <= 1"
    (Invalid_argument "Faults.Perturb: probabilities must be >= 0 and sum to <= 1")
    (fun () ->
      Perturb.attach ~rng:(Stats.Rng.create ~seed:1)
        (Perturb.lossy ~drop_p:0.5 ~dup_p:0.5 ~delay_p:0.5 ())
        link)

(* --- flapper --- *)

let test_flapper () =
  let sched = Scheduler.create () in
  let got = ref 0 in
  let link = mk_link sched got in
  let flaps = ref [] in
  Faults.Flapper.attach ~sched ~rng:(Stats.Rng.create ~seed:1)
    ~stop:(Sim_time.us 500)
    ~plan:(Schedule.Trace [ Sim_time.us 100; Sim_time.us 120 ])
    ~down_for:(Sim_time.us 50)
    ~on_flap:(fun ~effective -> flaps := effective :: !flaps)
    link;
  (* Probe the link state around the outage window. *)
  let probe = ref [] in
  List.iter
    (fun at ->
      ignore
        (Scheduler.schedule sched ~at (fun () -> probe := Link.is_up link :: !probe)))
    [ Sim_time.us 90; Sim_time.us 110; Sim_time.us 140; Sim_time.us 160 ];
  Scheduler.run sched;
  (* Occurrence at 120 lands inside the 100..150 outage: absorbed. *)
  Alcotest.(check (list bool)) "first flap effective, second absorbed" [ true; false ]
    (List.rev !flaps);
  Alcotest.(check (list bool)) "up, down (outage), down, up" [ true; false; false; true ]
    (List.rev !probe);
  Alcotest.(check bool) "link ends the run up" true (Link.is_up link)

(* --- burst --- *)

let test_burst () =
  let sched = Scheduler.create () in
  let injected = ref [] in
  Faults.Burst.attach ~sched ~rng:(Stats.Rng.create ~seed:1)
    ~stop:(Sim_time.us 500)
    ~plan:(Schedule.Trace [ Sim_time.us 100 ])
    ~pkts_per_burst:5 ~pkt_bytes:1000 ~rate_gbps:10.
    ~template:(fun i -> mk_pkt ~bytes:(100 + i) ())
    ~inject:(fun pkt -> injected := (Scheduler.now sched, Packet.len pkt) :: !injected)
    ();
  Scheduler.run sched;
  let injected = List.rev !injected in
  Alcotest.(check int) "train length" 5 (List.length injected);
  let gap = Sim_time.tx_time ~bytes:1000 ~gbps:10. in
  List.iteri
    (fun i (at, len) ->
      Alcotest.(check int) "line-rate spacing" (Sim_time.us 100 + (i * gap)) at;
      Alcotest.(check int) "template index" (100 + i) len)
    injected

(* --- churn --- *)

let test_churn () =
  let sched = Scheduler.create () in
  let counts = Hashtbl.create 4 in
  let bump name () =
    Hashtbl.replace counts name (1 + Option.value ~default:0 (Hashtbl.find_opt counts name))
  in
  let ops = [| ("a", bump "a"); ("b", bump "b"); ("c", bump "c") |] in
  let named = ref 0 in
  Faults.Churn.attach ~sched ~rng:(Stats.Rng.create ~seed:5)
    ~stop:(Sim_time.ms 1)
    ~plan:(Schedule.Periodic { start = Sim_time.us 10; period = Sim_time.us 10; jitter = 0 })
    ~ops
    ~on_op:(fun _ -> incr named)
    ();
  Scheduler.run sched;
  let total = Hashtbl.fold (fun _ n acc -> acc + n) counts 0 in
  Alcotest.(check int) "one op per occurrence" 99 total;
  Alcotest.(check int) "on_op saw each" 99 !named;
  Alcotest.(check bool) "uniform pick reaches every op" true (Hashtbl.length counts = 3)

(* --- engine --- *)

let test_engine_accounting () =
  let sched = Scheduler.create () in
  let got = ref 0 in
  let link = mk_link sched got in
  let engine = Faults.Engine.create ~sched ~seed:42 ~stop:(Sim_time.us 400) () in
  Faults.Engine.add_link_flaps engine ~name:"flap"
    ~plan:(Schedule.Trace [ Sim_time.us 50; Sim_time.us 60 ])
    ~down_for:(Sim_time.us 30) link;
  Faults.Engine.add_churn engine ~name:"churn"
    ~plan:(Schedule.Trace [ Sim_time.us 10; Sim_time.us 20 ])
    ~ops:[| ("noop", fun () -> ()) |];
  Scheduler.run sched;
  let stats = Faults.Engine.stats engine in
  Alcotest.(check (list string)) "classes sorted" [ "churn"; "flap" ] (List.map fst stats);
  let flap = List.assoc "flap" stats in
  Alcotest.(check int) "flap injected" 1 flap.Faults.Engine.injected;
  Alcotest.(check int) "flap absorbed" 1 flap.Faults.Engine.absorbed;
  let churn = List.assoc "churn" stats in
  Alcotest.(check int) "churn injected" 2 churn.Faults.Engine.injected;
  Alcotest.(check int) "engine total" 3 (Faults.Engine.total_injected engine);
  (* Metrics export is deterministic and labelled by fault class. *)
  let m = Obs.Metrics.create () in
  Faults.Engine.export_metrics engine m;
  Alcotest.(check (option bool)) "injected series exported" (Some true)
    (Option.map
       (function Obs.Metrics.Counter_v 1 -> true | _ -> false)
       (Obs.Metrics.find_value m ~labels:[ ("fault", "flap") ] "faults.injected"))

let test_engine_handler_fault_absorbed_when_quarantined () =
  (* A handler-fault occurrence that finds its target already
     quarantined cannot take effect: it must land in the engine's
     [absorbed] channel, like a flap inside an outage. *)
  let sched = Scheduler.create () in
  let sup =
    Resil.Supervisor.create ~sched
      ~config:
        {
          (Resil.Supervisor.default_config ()) with
          Resil.Supervisor.policy = Resil.Policy.Quarantine;
          base_backoff = Sim_time.us 200;
          backoff_jitter = 0;
        }
      ~seed:7 ()
  in
  let key = Resil.Supervisor.register sup ~name:"h" () in
  let engine = Faults.Engine.create ~sched ~seed:42 ~stop:(Sim_time.us 400) () in
  Faults.Engine.add_handler_crash engine ~name:"hcrash"
    ~plan:(Schedule.Trace [ Sim_time.us 10; Sim_time.us 30; Sim_time.us 50 ])
    key;
  (* Invoke the guarded handler just after the first arming: it crashes
     and quarantines the key for 200us, so the two later occurrences
     find it inactive. *)
  ignore
    (Scheduler.schedule sched ~at:(Sim_time.us 15) (fun () ->
         ignore (Resil.Supervisor.protect sup key (fun () -> ()))));
  Scheduler.run sched;
  let c = List.assoc "hcrash" (Faults.Engine.stats engine) in
  Alcotest.(check int) "first arming injected" 1 c.Faults.Engine.injected;
  Alcotest.(check int) "quarantined occurrences absorbed" 2 c.Faults.Engine.absorbed;
  Alcotest.(check int) "exactly one crash delivered" 1 (Resil.Supervisor.crashes sup);
  Alcotest.(check int) "one backoff recovery" 1 (Resil.Supervisor.recoveries sup)

let suite =
  [
    Alcotest.test_case "schedule trace" `Quick test_schedule_trace;
    Alcotest.test_case "schedule periodic" `Quick test_schedule_periodic;
    Alcotest.test_case "schedule jitter deterministic" `Quick test_schedule_jitter_deterministic;
    Alcotest.test_case "schedule poisson deterministic" `Quick test_schedule_poisson_deterministic;
    Alcotest.test_case "perturb none" `Quick test_perturb_none;
    Alcotest.test_case "perturb bands" `Quick test_perturb_bands;
    Alcotest.test_case "perturb statistics" `Quick test_perturb_statistics;
    Alcotest.test_case "perturb config check" `Quick test_perturb_check_config;
    Alcotest.test_case "flapper" `Quick test_flapper;
    Alcotest.test_case "burst" `Quick test_burst;
    Alcotest.test_case "churn" `Quick test_churn;
    Alcotest.test_case "engine accounting" `Quick test_engine_accounting;
    Alcotest.test_case "handler fault absorbed when quarantined" `Quick
      test_engine_handler_fault_absorbed_when_quarantined;
  ]
