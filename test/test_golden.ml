(* Golden conformance: the canonical sequential/heap digests of the
   golden scenarios (seeds 42 and 7, recorded in test/golden/ by
   gen_golden.ml) must be reproduced byte-for-byte by every other
   backend and shard count — the tentpole guarantee pinned to files
   under review, so a silent behaviour change in any layer (scheduler
   backends, switch pipeline, parsim barrier, adaptive horizon) fails
   loudly.

   Every golden file holds "label hex" digest lines: E23 pins its
   merged trace and merged metrics (MD5), E24-E26 pin their app legs,
   and E27 pins the order-independent arrival digest of a k=16
   fat-tree streaming run whose full trace would be unreasonable to
   commit. *)

module E23 = Experiments.E23_scale
module Sched_backend = Eventsim.Sched_backend

let read_digest_golden file =
  let path = Filename.concat "golden" file in
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> (
        match String.index_opt line ' ' with
        | Some i ->
            go
              ((String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
              :: acc)
        | None -> go acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let check_digests ~name ~seed ~count golden got =
  Alcotest.(check int) "golden digest count" count (List.length golden);
  List.iter
    (fun (label, want) ->
      match List.assoc_opt label got with
      | Some hex ->
          Alcotest.(check string) (Printf.sprintf "%s seed %d: %s" name seed label) want hex
      | None -> Alcotest.failf "%s seed %d: digest %s missing" name seed label)
    golden

let variants =
  [
    ("sequential-heap", Sched_backend.Heap, 1);
    ("sequential-wheel", Sched_backend.Wheel, 1);
    ("sequential-ladder", Sched_backend.Ladder, 1);
    ("2-shard-heap", Sched_backend.Heap, 2);
    ("2-shard-wheel", Sched_backend.Wheel, 2);
    ("2-shard-ladder", Sched_backend.Ladder, 2);
    ("4-shard-heap", Sched_backend.Heap, 4);
    ("4-shard-wheel", Sched_backend.Wheel, 4);
    ("4-shard-ladder", Sched_backend.Ladder, 4);
  ]

let test_variant ~seed (name, backend, shards) () =
  let golden = read_digest_golden (E23.golden_file seed) in
  let got = E23.golden_digests ~backend ~shards ~seed () in
  check_digests ~name ~seed ~count:2 golden got

(* The sharded runs must also agree on the merged metrics snapshot —
   the trace digest pins arrivals, this pins the counters. *)
let test_metrics_conformance ~seed () =
  let run ~backend ~shards = Parsim.run (E23.golden_scenario ~shards ~backend ~seed ()) (E23.topo ()) in
  let seq = run ~backend:Sched_backend.Heap ~shards:1 in
  List.iter
    (fun shards ->
      let r = run ~backend:Sched_backend.Wheel ~shards in
      Alcotest.(check bool) "cross-shard messages flowed" true (r.Parsim.cross_sent > 0);
      Alcotest.(check string)
        (Printf.sprintf "metrics json, %d shards, seed %d" shards seed)
        seq.Parsim.metrics_json r.Parsim.metrics_json)
    [ 2; 4 ]

(* E24: the stateful (EFSM) apps — one trace digest and one metrics
   digest per app, the latter embedding each switch's
   pisa.efsm.state_hash, so every variant must reproduce the
   sequential/heap run's entire flow-state evolution. *)

module E24 = Experiments.E24_efsm

let test_e24_variant ~seed (name, backend, shards) () =
  let golden = read_digest_golden (E24.golden_file seed) in
  let got = E24.golden_digests ~backend ~shards ~seed () in
  check_digests ~name ~seed ~count:4 golden got

(* E25: the CEP detector apps — three legs per seed (syn flood, burst
   forensics, chaos), so the compiled pattern automata, their window
   ticks and their recovery path are all pinned. *)

module E25 = Experiments.E25_cep

let test_e25_variant ~seed (name, backend, shards) () =
  let golden = read_digest_golden (E25.golden_file seed) in
  let got = E25.golden_digests ~backend ~shards ~seed () in
  check_digests ~name ~seed ~count:6 golden got

(* E26: the consistent-update protocol — clean storm + chaos legs; the
   metrics digest embeds the mixed-version counters (must stay zero)
   and the control-op conservation books. *)

module E26 = Experiments.E26_netupd

let test_e26_variant ~seed (name, backend, shards) () =
  let golden = read_digest_golden (E26.golden_file seed) in
  let got = E26.golden_digests ~backend ~shards ~seed () in
  check_digests ~name ~seed ~count:4 golden got

(* E27: datacenter scale. The golden files pin the ORDER-INDEPENDENT
   arrival digest (plus merged metrics) of a k=16 fat tree under a
   ~15k-flow streaming Zipf mix — a population whose raw trace is too
   large to commit. A reduced variant matrix (one backend per shard
   count) keeps the suite's wall time in check; the cross-product of
   backends is already covered by E23-E26 on the same engine. *)

module E27 = Experiments.E27_dcscale

let e27_variants =
  [
    ("sequential-heap", Sched_backend.Heap, 1);
    ("2-shard-heap", Sched_backend.Heap, 2);
    ("4-shard-wheel", Sched_backend.Wheel, 4);
    ("8-shard-ladder", Sched_backend.Ladder, 8);
  ]

let test_e27_variant ~seed (name, backend, shards) () =
  let golden = read_digest_golden (E27.golden_file seed) in
  let got = E27.golden_digests ~backend ~shards ~seed () in
  check_digests ~name ~seed ~count:2 golden got

(* The digest guarantee rests on no entity seeing two arrivals on one
   picosecond; assert the pinned scenarios actually run tie-free. *)
let test_e27_tie_free ~seed () =
  let r =
    Parsim.run (E27.scenario ~shards:1 ~seed ~knobs:E27.golden_knobs ()) (E27.topo ())
  in
  Alcotest.(check int)
    (Printf.sprintf "same-instant arrivals, seed %d" seed)
    0 r.Parsim.tie_arrivals

let suite =
  List.concat_map
    (fun seed ->
      List.map
        (fun ((name, _, _) as v) ->
          Alcotest.test_case
            (Printf.sprintf "%s reproduces golden (seed %d)" name seed)
            `Quick (test_variant ~seed v))
        variants
      @ [
          Alcotest.test_case
            (Printf.sprintf "merged metrics conform (seed %d)" seed)
            `Quick (test_metrics_conformance ~seed);
        ])
    E23.golden_seeds
  @ List.concat_map
      (fun seed ->
        List.map
          (fun ((name, _, _) as v) ->
            Alcotest.test_case
              (Printf.sprintf "efsm apps: %s reproduces golden (seed %d)" name seed)
              `Quick (test_e24_variant ~seed v))
          variants)
      E24.golden_seeds
  @ List.concat_map
      (fun seed ->
        List.map
          (fun ((name, _, _) as v) ->
            Alcotest.test_case
              (Printf.sprintf "cep apps: %s reproduces golden (seed %d)" name seed)
              `Quick (test_e25_variant ~seed v))
          variants)
      E25.golden_seeds
  @ List.concat_map
      (fun seed ->
        List.map
          (fun ((name, _, _) as v) ->
            Alcotest.test_case
              (Printf.sprintf "netupd: %s reproduces golden (seed %d)" name seed)
              `Quick (test_e26_variant ~seed v))
          variants)
      E26.golden_seeds
  @ List.concat_map
      (fun seed ->
        List.map
          (fun ((name, _, _) as v) ->
            Alcotest.test_case
              (Printf.sprintf "dcscale: %s reproduces golden (seed %d)" name seed)
              `Quick (test_e27_variant ~seed v))
          e27_variants
        @ [
            Alcotest.test_case
              (Printf.sprintf "dcscale: golden scenario tie-free (seed %d)" seed)
              `Quick (test_e27_tie_free ~seed);
          ])
      E27.golden_seeds
