(* Golden-trace conformance: the canonical sequential/heap traces of
   the E23 golden scenario (seeds 42 and 7, recorded in test/golden/ by
   gen_golden.ml) must be reproduced byte-for-byte by the wheel
   backend and by sharded runs at 1, 2 and 4 shards — the tentpole
   guarantee pinned to files under review, so a silent behaviour change
   in any layer (scheduler backends, switch pipeline, parsim barrier)
   fails loudly. *)

module E23 = Experiments.E23_scale
module Sched_backend = Eventsim.Sched_backend

let read_golden seed =
  let path = Filename.concat "golden" (E23.golden_file seed) in
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let run_variant ~seed ~backend ~shards =
  let cfg = E23.golden_scenario ~shards ~backend ~seed () in
  Parsim.run cfg (E23.topo ())

let variants =
  [
    ("sequential-heap", Sched_backend.Heap, 1);
    ("sequential-wheel", Sched_backend.Wheel, 1);
    ("sequential-ladder", Sched_backend.Ladder, 1);
    ("2-shard-heap", Sched_backend.Heap, 2);
    ("2-shard-wheel", Sched_backend.Wheel, 2);
    ("2-shard-ladder", Sched_backend.Ladder, 2);
    ("4-shard-heap", Sched_backend.Heap, 4);
    ("4-shard-wheel", Sched_backend.Wheel, 4);
    ("4-shard-ladder", Sched_backend.Ladder, 4);
  ]

let test_variant ~seed (name, backend, shards) () =
  let golden = read_golden seed in
  Alcotest.(check bool) "golden trace non-empty" true (golden <> []);
  let r = run_variant ~seed ~backend ~shards in
  if shards > 1 then
    Alcotest.(check bool) "cross-shard messages flowed" true (r.Parsim.cross_sent > 0);
  (* Compare line counts first for a readable failure, then the exact
     lines. *)
  Alcotest.(check int)
    (Printf.sprintf "%s seed %d: trace length" name seed)
    (List.length golden) (List.length r.Parsim.trace);
  List.iteri
    (fun i (want, got) ->
      if want <> got then
        Alcotest.failf "%s seed %d: line %d diverges\n  golden: %s\n  got:    %s" name seed
          (i + 1) want got)
    (List.combine golden r.Parsim.trace)

(* The sharded runs must also agree on the merged metrics snapshot —
   the trace files pin arrivals, this pins the counters. *)
let test_metrics_conformance ~seed () =
  let seq = run_variant ~seed ~backend:Sched_backend.Heap ~shards:1 in
  List.iter
    (fun shards ->
      let r = run_variant ~seed ~backend:Sched_backend.Wheel ~shards in
      Alcotest.(check string)
        (Printf.sprintf "metrics json, %d shards, seed %d" shards seed)
        seq.Parsim.metrics_json r.Parsim.metrics_json)
    [ 2; 4 ]

(* E24: the stateful (EFSM) apps. The golden files hold digests rather
   than raw traces — one trace digest and one metrics digest per app,
   the latter embedding each switch's pisa.efsm.state_hash — so every
   variant must reproduce the sequential/heap run's entire flow-state
   evolution, not just its arrivals. *)

module E24 = Experiments.E24_efsm

let read_e24_golden seed =
  let path = Filename.concat "golden" (E24.golden_file seed) in
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> (
        match String.index_opt line ' ' with
        | Some i ->
            go
              ((String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
              :: acc)
        | None -> go acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_e24_variant ~seed (name, backend, shards) () =
  let golden = read_e24_golden seed in
  Alcotest.(check int) "golden digest count" 4 (List.length golden);
  let got = E24.golden_digests ~backend ~shards ~seed () in
  List.iter
    (fun (label, want) ->
      match List.assoc_opt label got with
      | Some hex ->
          Alcotest.(check string) (Printf.sprintf "%s seed %d: %s" name seed label) want hex
      | None -> Alcotest.failf "%s seed %d: digest %s missing" name seed label)
    golden

(* E25: the CEP detector apps. Same digest-file scheme as E24, with
   three legs per seed — syn flood, burst forensics, and the chaos leg
   (crash injection + quarantine + shedding) — so the compiled pattern
   automata, their window ticks and their recovery path are all pinned
   across backends and shard counts. *)

module E25 = Experiments.E25_cep

let read_e25_golden seed =
  let path = Filename.concat "golden" (E25.golden_file seed) in
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> (
        match String.index_opt line ' ' with
        | Some i ->
            go
              ((String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
              :: acc)
        | None -> go acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_e25_variant ~seed (name, backend, shards) () =
  let golden = read_e25_golden seed in
  Alcotest.(check int) "golden digest count" 6 (List.length golden);
  let got = E25.golden_digests ~backend ~shards ~seed () in
  List.iter
    (fun (label, want) ->
      match List.assoc_opt label got with
      | Some hex ->
          Alcotest.(check string) (Printf.sprintf "%s seed %d: %s" name seed label) want hex
      | None -> Alcotest.failf "%s seed %d: digest %s missing" name seed label)
    golden

(* E26: the consistent-update protocol. Two legs per seed — the clean
   update storm and the chaos leg (op loss + CP crash injection + link
   flaps) — each pinned by a trace digest and a metrics digest; the
   metrics digest embeds the mixed-version counters (must stay zero)
   and the control-op conservation books, so both the safety invariant
   and the retry/rollback schedules are pinned across backends and
   shard counts. *)

module E26 = Experiments.E26_netupd

let read_e26_golden seed =
  let path = Filename.concat "golden" (E26.golden_file seed) in
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> (
        match String.index_opt line ' ' with
        | Some i ->
            go
              ((String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
              :: acc)
        | None -> go acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_e26_variant ~seed (name, backend, shards) () =
  let golden = read_e26_golden seed in
  Alcotest.(check int) "golden digest count" 4 (List.length golden);
  let got = E26.golden_digests ~backend ~shards ~seed () in
  List.iter
    (fun (label, want) ->
      match List.assoc_opt label got with
      | Some hex ->
          Alcotest.(check string) (Printf.sprintf "%s seed %d: %s" name seed label) want hex
      | None -> Alcotest.failf "%s seed %d: digest %s missing" name seed label)
    golden

let suite =
  List.concat_map
    (fun seed ->
      List.map
        (fun ((name, _, _) as v) ->
          Alcotest.test_case
            (Printf.sprintf "%s reproduces golden (seed %d)" name seed)
            `Quick (test_variant ~seed v))
        variants
      @ [
          Alcotest.test_case
            (Printf.sprintf "merged metrics conform (seed %d)" seed)
            `Quick (test_metrics_conformance ~seed);
        ])
    E23.golden_seeds
  @ List.concat_map
      (fun seed ->
        List.map
          (fun ((name, _, _) as v) ->
            Alcotest.test_case
              (Printf.sprintf "efsm apps: %s reproduces golden (seed %d)" name seed)
              `Quick (test_e24_variant ~seed v))
          variants)
      E24.golden_seeds
  @ List.concat_map
      (fun seed ->
        List.map
          (fun ((name, _, _) as v) ->
            Alcotest.test_case
              (Printf.sprintf "cep apps: %s reproduces golden (seed %d)" name seed)
              `Quick (test_e25_variant ~seed v))
          variants)
      E25.golden_seeds
  @ List.concat_map
      (fun seed ->
        List.map
          (fun ((name, _, _) as v) ->
            Alcotest.test_case
              (Printf.sprintf "netupd: %s reproduces golden (seed %d)" name seed)
              `Quick (test_e26_variant ~seed v))
          variants)
      E26.golden_seeds
