let () =
  Alcotest.run "evpp"
    [
      ("stats", Test_stats.suite);
      ("obs", Test_obs.suite);
      ("eventsim", Test_eventsim.suite);
      ("determinism", Test_determinism.suite);
      ("netcore", Test_netcore.suite);
      ("pisa", Test_pisa.suite);
      ("devents", Test_devents.suite);
      ("consistency", Test_consistency.suite);
      ("tmgr", Test_tmgr.suite);
      ("faults", Test_faults.suite);
      ("resil", Test_resil.suite);
      ("evcore", Test_evcore.suite);
      ("apps", Test_apps.suite);
      ("workloads", Test_workloads.suite);
      ("resmodel", Test_resmodel.suite);
      ("experiments", Test_experiments.suite);
      ("p4dsl", Test_p4dsl.suite);
    ]
