(* CI runs the whole suite once per queue backend: EVPP_SCHED_BACKEND
   steers the process-wide default, which every scheduler created
   without an explicit [~backend] (experiments, chaos, parsim shards)
   picks up. Tests that pin a backend explicitly are unaffected. *)
let () =
  match Sys.getenv_opt "EVPP_SCHED_BACKEND" with
  | None -> ()
  | Some s -> (
      match Eventsim.Sched_backend.of_string s with
      | Some b -> Eventsim.Sched_backend.default := b
      | None -> invalid_arg ("unknown EVPP_SCHED_BACKEND: " ^ s))

let () =
  Alcotest.run "evpp"
    [
      ("stats", Test_stats.suite);
      ("obs", Test_obs.suite);
      ("eventsim", Test_eventsim.suite);
      ("determinism", Test_determinism.suite);
      ("netcore", Test_netcore.suite);
      ("pisa", Test_pisa.suite);
      ("efsm", Test_efsm.suite);
      ("cep", Test_cep.suite);
      ("devents", Test_devents.suite);
      ("consistency", Test_consistency.suite);
      ("tmgr", Test_tmgr.suite);
      ("faults", Test_faults.suite);
      ("resil", Test_resil.suite);
      ("evcore", Test_evcore.suite);
      ("apps", Test_apps.suite);
      ("workloads", Test_workloads.suite);
      ("resmodel", Test_resmodel.suite);
      ("experiments", Test_experiments.suite);
      ("p4dsl", Test_p4dsl.suite);
      ("parsim", Test_parsim.suite);
      ("netupd", Test_netupd.suite);
      ("golden", Test_golden.suite);
    ]
