(* Tests for packets, headers, serialization and hashing. *)

module Mac_addr = Netcore.Mac_addr
module Ipv4_addr = Netcore.Ipv4_addr
module Ethernet = Netcore.Ethernet
module Ipv4 = Netcore.Ipv4
module Udp = Netcore.Udp
module Tcp = Netcore.Tcp
module Packet = Netcore.Packet
module Packet_arena = Netcore.Packet_arena
module Frame = Netcore.Frame
module Flow = Netcore.Flow
module Hashes = Netcore.Hashes
module Cursor = Netcore.Cursor

let test_mac_roundtrip () =
  let s = "02:00:00:00:12:34" in
  Alcotest.(check string) "roundtrip" s (Mac_addr.to_string (Mac_addr.of_string s));
  Alcotest.(check string) "broadcast" "ff:ff:ff:ff:ff:ff" (Mac_addr.to_string Mac_addr.broadcast)

let test_mac_invalid () =
  Alcotest.check_raises "bad syntax" (Invalid_argument "Mac_addr.of_string: nonsense")
    (fun () -> ignore (Mac_addr.of_string "nonsense"))

let test_ipv4_addr () =
  let a = Ipv4_addr.of_string "10.1.2.3" in
  Alcotest.(check string) "roundtrip" "10.1.2.3" (Ipv4_addr.to_string a);
  Alcotest.(check bool) "prefix match" true
    (Ipv4_addr.in_prefix a ~prefix:(Ipv4_addr.of_string "10.1.0.0") ~len:16);
  Alcotest.(check bool) "prefix mismatch" false
    (Ipv4_addr.in_prefix a ~prefix:(Ipv4_addr.of_string "10.2.0.0") ~len:16);
  Alcotest.(check bool) "len 0 matches all" true
    (Ipv4_addr.in_prefix a ~prefix:(Ipv4_addr.of_string "0.0.0.0") ~len:0)

let test_ipv4_checksum_zero () =
  (* Writing then summing over the header must give 0 (valid). *)
  let ip =
    Ipv4.make ~proto:Ipv4.proto_udp ~src:(Ipv4_addr.of_string "1.2.3.4")
      ~dst:(Ipv4_addr.of_string "5.6.7.8") ~payload_len:100 ()
  in
  let w = Cursor.writer Ipv4.size in
  Ipv4.write w ip;
  Alcotest.(check int) "checksum verifies" 0
    (Ipv4.checksum (Cursor.contents w) ~off:0 ~len:Ipv4.size)

let test_ipv4_corrupt_detected () =
  let ip =
    Ipv4.make ~proto:Ipv4.proto_udp ~src:(Ipv4_addr.of_string "1.2.3.4")
      ~dst:(Ipv4_addr.of_string "5.6.7.8") ~payload_len:0 ()
  in
  let w = Cursor.writer Ipv4.size in
  Ipv4.write w ip;
  let buf = Cursor.contents w in
  Bytes.set_uint8 buf 8 (Bytes.get_uint8 buf 8 lxor 0xff);
  Alcotest.check_raises "bad checksum" (Failure "Ipv4.read: bad checksum") (fun () ->
      ignore (Ipv4.read (Cursor.reader buf)))

let test_ttl () =
  let ip =
    Ipv4.make ~ttl:2 ~proto:6 ~src:(Ipv4_addr.of_string "1.1.1.1")
      ~dst:(Ipv4_addr.of_string "2.2.2.2") ~payload_len:0 ()
  in
  (match Ipv4.decrement_ttl ip with
  | Some ip' -> Alcotest.(check int) "ttl decremented" 1 ip'.Ipv4.ttl
  | None -> Alcotest.fail "should survive");
  let ip1 =
    Ipv4.make ~ttl:1 ~proto:6 ~src:(Ipv4_addr.of_string "1.1.1.1")
      ~dst:(Ipv4_addr.of_string "2.2.2.2") ~payload_len:0 ()
  in
  Alcotest.(check bool) "ttl 1 dies" true (Ipv4.decrement_ttl ip1 = None)

let test_frame_roundtrip_udp () =
  let pkt =
    Packet.udp_packet
      ~src:(Ipv4_addr.of_string "10.0.0.1")
      ~dst:(Ipv4_addr.of_string "10.0.0.2")
      ~src_port:1234 ~dst_port:80 ~payload_len:100 ()
  in
  let buf = Frame.to_bytes pkt in
  Alcotest.(check int) "wire length" (Packet.len pkt) (Bytes.length buf);
  let parsed = Frame.of_bytes buf in
  Alcotest.(check bool) "headers preserved" true (Frame.roundtrip_equal pkt parsed)

let test_frame_roundtrip_tcp () =
  let ip =
    Ipv4.make ~proto:Ipv4.proto_tcp ~src:(Ipv4_addr.of_string "1.2.3.4")
      ~dst:(Ipv4_addr.of_string "4.3.2.1") ~payload_len:(Tcp.size + 50) ()
  in
  let tcp = Tcp.make ~src_port:5555 ~dst_port:80 ~seq:1000 ~flags:Tcp.flag_syn () in
  let eth =
    Ethernet.make ~dst:(Mac_addr.host 1) ~src:(Mac_addr.host 2)
      ~ethertype:Ethernet.ethertype_ipv4
  in
  let pkt = Packet.create ~ip ~l4:(Packet.Tcp tcp) ~payload_len:50 ~eth () in
  let parsed = Frame.of_bytes (Frame.to_bytes pkt) in
  Alcotest.(check bool) "tcp roundtrip" true (Frame.roundtrip_equal pkt parsed)

let qcheck_frame_roundtrip =
  QCheck.Test.make ~name:"frame serialize/parse roundtrips" ~count:200
    QCheck.(quad (int_bound 0xffff) (int_bound 0xffff) (int_bound 1000) (int_bound 0xffffff))
    (fun (sport, dport, payload, addr) ->
      let pkt =
        Packet.udp_packet
          ~src:(Ipv4_addr.of_int (0x0a000000 lor addr))
          ~dst:(Ipv4_addr.of_int (0x0b000000 lor (addr lxor 0x1234)))
          ~src_port:sport ~dst_port:dport ~payload_len:payload ()
      in
      Frame.roundtrip_equal pkt (Frame.of_bytes (Frame.to_bytes pkt)))

let test_truncated_frame () =
  let pkt =
    Packet.udp_packet
      ~src:(Ipv4_addr.of_string "10.0.0.1")
      ~dst:(Ipv4_addr.of_string "10.0.0.2")
      ~src_port:1 ~dst_port:2 ~payload_len:0 ()
  in
  let buf = Frame.to_bytes pkt in
  let short = Bytes.sub buf 0 20 in
  Alcotest.check_raises "truncated" Cursor.Truncated (fun () -> ignore (Frame.of_bytes short))

let test_flow_of_packet () =
  let pkt =
    Packet.udp_packet
      ~src:(Ipv4_addr.of_string "10.0.0.1")
      ~dst:(Ipv4_addr.of_string "10.0.0.2")
      ~src_port:1234 ~dst_port:80 ~payload_len:10 ()
  in
  match Packet.flow pkt with
  | None -> Alcotest.fail "expected a flow"
  | Some f ->
      Alcotest.(check int) "src port" 1234 f.Flow.src_port;
      Alcotest.(check int) "proto" Ipv4.proto_udp f.Flow.proto

let test_flow_hash_stability () =
  let f1 =
    Flow.make ~src:(Ipv4_addr.of_string "1.1.1.1") ~dst:(Ipv4_addr.of_string "2.2.2.2")
      ~src_port:10 ~dst_port:20 ()
  in
  let f2 =
    Flow.make ~src:(Ipv4_addr.of_string "1.1.1.1") ~dst:(Ipv4_addr.of_string "2.2.2.2")
      ~src_port:10 ~dst_port:20 ()
  in
  Alcotest.(check int) "equal flows hash equal" (Flow.hash f1) (Flow.hash f2);
  let f3 = Flow.make ~src:(Ipv4_addr.of_string "1.1.1.1") ~dst:(Ipv4_addr.of_string "2.2.2.3") () in
  Alcotest.(check bool) "different flows differ" true (Flow.hash f1 <> Flow.hash f3)

let test_crc32_vector () =
  (* Standard test vector: crc32("123456789") = 0xCBF43926 *)
  Alcotest.(check int) "known vector" 0xCBF43926 (Hashes.crc32 (Bytes.of_string "123456789"))

let test_salted_hashes_differ () =
  let key = 123456 in
  let h0 = Hashes.salted ~salt:0 key and h1 = Hashes.salted ~salt:1 key in
  Alcotest.(check bool) "salts give distinct functions" true (h0 <> h1);
  Alcotest.(check int) "deterministic" h0 (Hashes.salted ~salt:0 key)

let qcheck_fold_range =
  QCheck.Test.make ~name:"fold_range lands in [0,n)" ~count:500
    QCheck.(pair int (int_range 1 10_000))
    (fun (h, n) ->
      let v = Hashes.fold_range h n in
      v >= 0 && v < n)

let test_clone_for_forward () =
  let pkt =
    Packet.udp_packet
      ~src:(Ipv4_addr.of_string "10.0.0.1")
      ~dst:(Ipv4_addr.of_string "10.0.0.2")
      ~src_port:1 ~dst_port:2 ~payload_len:64 ()
  in
  pkt.Packet.meta.Packet.flow_id <- 77;
  pkt.Packet.meta.Packet.enq_meta.(0) <- 5;
  let copy = Packet.clone_for_forward pkt in
  Alcotest.(check bool) "fresh uid" true (copy.Packet.uid <> pkt.Packet.uid);
  Alcotest.(check int) "meta copied" 77 copy.Packet.meta.Packet.flow_id;
  Alcotest.(check int) "enq_meta copied" 5 copy.Packet.meta.Packet.enq_meta.(0);
  copy.Packet.meta.Packet.flow_id <- 1;
  Alcotest.(check int) "copies are independent" 77 pkt.Packet.meta.Packet.flow_id

let test_packet_len () =
  let pkt =
    Packet.udp_packet
      ~src:(Ipv4_addr.of_string "10.0.0.1")
      ~dst:(Ipv4_addr.of_string "10.0.0.2")
      ~src_port:1 ~dst_port:2 ~payload_len:58 ()
  in
  (* 14 + 20 + 8 + 58 = 100 *)
  Alcotest.(check int) "wire length" 100 (Packet.len pkt)

let arena_src = Ipv4_addr.of_string "10.0.0.1"
let arena_dst = Ipv4_addr.of_string "10.0.0.2"

let arena_acquire arena =
  Packet_arena.acquire_udp arena ~src:arena_src ~dst:arena_dst ~src_port:1234
    ~dst_port:80 ~payload_len:58 ()

let test_arena_recycles () =
  let arena = Packet_arena.create ~initial:2 () in
  let p1 = arena_acquire arena in
  let uid1 = p1.Packet.uid in
  p1.Packet.meta.Packet.flow_id <- 99;
  p1.Packet.meta.Packet.enq_meta.(0) <- 7;
  Alcotest.(check int) "live" 1 (Packet_arena.live arena);
  Alcotest.(check int) "created" 1 (Packet_arena.created arena);
  Packet_arena.release arena p1;
  Alcotest.(check int) "pooled after release" 1 (Packet_arena.pooled arena);
  let p2 = arena_acquire arena in
  Alcotest.(check bool) "same physical record reused" true (p1 == p2);
  Alcotest.(check int) "reused counter" 1 (Packet_arena.reused arena);
  Alcotest.(check bool) "fresh uid" true (p2.Packet.uid <> uid1);
  Alcotest.(check int) "meta cleared" 0 p2.Packet.meta.Packet.flow_id;
  Alcotest.(check int) "enq_meta cleared" 0 p2.Packet.meta.Packet.enq_meta.(0);
  (* Headers are refilled in place: the recycled packet must look
     exactly like a freshly built one on the wire. *)
  let fresh = arena_acquire (Packet_arena.create ()) in
  Alcotest.(check int) "wire length matches fresh" (Packet.len fresh) (Packet.len p2);
  Alcotest.(check bytes) "serialization matches fresh" (Frame.to_bytes fresh)
    (Frame.to_bytes p2)

let test_arena_release_nil_raises () =
  let arena = Packet_arena.create () in
  Alcotest.check_raises "nil release"
    (Invalid_argument "Packet_arena.release: nil packet") (fun () ->
      Packet_arena.release arena Packet.nil)

(* Satellite: a steady-state acquire/release cycle through a warm arena
   must not touch the minor heap — header records are refilled in
   place and the packet comes off the free stack. *)
let test_arena_zero_alloc () =
  let arena = Packet_arena.create () in
  let cycle n =
    for _ = 1 to n do
      let p = arena_acquire arena in
      Packet_arena.release arena p
    done
  in
  cycle 64;
  let iters = 10_000 in
  let w0 = Gc.minor_words () in
  cycle iters;
  let delta = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "%d acquire/release cycles allocated %.0f minor words" iters delta)
    true (delta < 64.)

let suite =
  [
    Alcotest.test_case "mac roundtrip" `Quick test_mac_roundtrip;
    Alcotest.test_case "mac invalid" `Quick test_mac_invalid;
    Alcotest.test_case "ipv4 addr" `Quick test_ipv4_addr;
    Alcotest.test_case "ipv4 checksum" `Quick test_ipv4_checksum_zero;
    Alcotest.test_case "ipv4 corruption detected" `Quick test_ipv4_corrupt_detected;
    Alcotest.test_case "ttl" `Quick test_ttl;
    Alcotest.test_case "frame roundtrip udp" `Quick test_frame_roundtrip_udp;
    Alcotest.test_case "frame roundtrip tcp" `Quick test_frame_roundtrip_tcp;
    QCheck_alcotest.to_alcotest qcheck_frame_roundtrip;
    Alcotest.test_case "truncated frame" `Quick test_truncated_frame;
    Alcotest.test_case "flow of packet" `Quick test_flow_of_packet;
    Alcotest.test_case "flow hash stability" `Quick test_flow_hash_stability;
    Alcotest.test_case "crc32 vector" `Quick test_crc32_vector;
    Alcotest.test_case "salted hashes" `Quick test_salted_hashes_differ;
    QCheck_alcotest.to_alcotest qcheck_fold_range;
    Alcotest.test_case "clone for forward" `Quick test_clone_for_forward;
    Alcotest.test_case "packet length" `Quick test_packet_len;
    Alcotest.test_case "arena recycles packets" `Quick test_arena_recycles;
    Alcotest.test_case "arena rejects nil release" `Quick test_arena_release_nil_raises;
    Alcotest.test_case "arena zero-alloc steady state" `Quick test_arena_zero_alloc;
  ]
