(* The consistent-update layer: versioned policies, the per-switch
   versioned table + agent, the two-phase commit engine's retry /
   abort / rollback paths, and the controller on top. The QCheck
   property at the end is the E26 determinism claim in miniature: the
   same seed must yield byte-identical retry schedules and the same
   final committed version across scheduler backends and shard
   counts. *)

open Alcotest
module Sim_time = Eventsim.Sim_time
module Scheduler = Eventsim.Scheduler
module Sched_backend = Eventsim.Sched_backend
module Packet = Netcore.Packet
module Ipv4_addr = Netcore.Ipv4_addr
module Policy = Netupd.Policy
module Table = Netupd.Table
module Agent = Netupd.Agent
module Commit = Netupd.Commit
module Controller = Netupd.Controller

(* --- Policy --------------------------------------------------------- *)

let n = 8

(* Walk the ring under [p]'s port semantics from [sw] toward [dst];
   return the links crossed (ring link l = the edge between l and
   l+1 mod n). *)
let walk p ~sw ~dst =
  let links = ref [] in
  let cur = ref sw in
  let hops = ref 0 in
  while !cur <> dst && !hops < n do
    (match Policy.lookup p ~switch:!cur ~key:dst with
    | Some 1 ->
        links := !cur :: !links;
        cur := (!cur + 1) mod n
    | Some 2 ->
        links := ((!cur + n - 1) mod n) :: !links;
        cur := (!cur + n - 1) mod n
    | _ -> hops := n);
    incr hops
  done;
  (!cur = dst, List.rev !links)

let test_ring_uniform () =
  let p = Policy.ring_uniform ~switches:n ~name:"cw" () in
  check bool "delivers" true (Policy.ring_delivers p);
  for sw = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if dst <> sw then
        check (option int)
          (Printf.sprintf "sw%d->%d goes clockwise" sw dst)
          (Some 1)
          (Policy.lookup p ~switch:sw ~key:dst)
    done
  done

let test_ring_threshold () =
  let p = Policy.ring_threshold ~switches:n ~ccw_at:5 ~name:"split5" () in
  check bool "delivers" true (Policy.ring_delivers p);
  (* Distance 4 clockwise stays clockwise; distance 5+ flips. *)
  check (option int) "sw0->4 cw" (Some 1) (Policy.lookup p ~switch:0 ~key:4);
  check (option int) "sw0->5 ccw" (Some 2) (Policy.lookup p ~switch:0 ~key:5);
  check (option int) "sw3->0 ccw (cw dist 5)" (Some 2) (Policy.lookup p ~switch:3 ~key:0);
  (* ccw_at = switches degenerates to the uniform policy. *)
  let u = Policy.ring_threshold ~switches:n ~ccw_at:n ~name:"u" () in
  for sw = 0 to n - 1 do
    for dst = 0 to n - 1 do
      check (option int) "degenerate threshold = uniform"
        (Policy.lookup (Policy.ring_uniform ~switches:n ~name:"cw" ()) ~switch:sw ~key:dst)
        (Policy.lookup u ~switch:sw ~key:dst)
    done
  done

let test_ring_avoiding () =
  for link = 0 to n - 1 do
    let p = Policy.ring_avoiding ~switches:n ~link ~name:"avoid" () in
    check bool (Printf.sprintf "avoid-l%d delivers" link) true (Policy.ring_delivers p);
    for sw = 0 to n - 1 do
      for dst = 0 to n - 1 do
        if dst <> sw then begin
          let ok, links = walk p ~sw ~dst in
          check bool (Printf.sprintf "l%d: sw%d->%d reaches" link sw dst) true ok;
          check bool
            (Printf.sprintf "l%d: sw%d->%d avoids the dead link" link sw dst)
            false (List.mem link links)
        end
      done
    done
  done

let test_cw_crosses () =
  (* The clockwise arc 6 -> 1 crosses links 6, 7, 0 and nothing else. *)
  List.iter
    (fun l ->
      check bool (Printf.sprintf "6->1 vs l%d" l) (List.mem l [ 6; 7; 0 ])
        (Policy.cw_crosses ~switches:n ~sw:6 ~dst:1 l))
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let test_ring_delivers_rejects_blackhole () =
  (* A policy with no rules anywhere black-holes everything. *)
  let p = Policy.make ~name:"empty" (Array.make n []) in
  check bool "black hole detected" false (Policy.ring_delivers p);
  (* A two-switch mutual loop for key 0 never reaches switch 0 from 2. *)
  let tables =
    Array.init n (fun sw ->
        List.filter_map
          (fun dst ->
            if dst = sw then None
            else if sw = 2 && dst = 0 then Some { Policy.key = dst; port = 1 }
            else if sw = 3 && dst = 0 then Some { Policy.key = dst; port = 2 }
            else Some { Policy.key = dst; port = 1 })
          (List.init n Fun.id))
  in
  check bool "loop detected" false (Policy.ring_delivers (Policy.make ~name:"loop" tables))

(* --- Table ---------------------------------------------------------- *)

let test_table () =
  let t = Table.create ~keys:4 () in
  check (list int) "empty" [] (Table.versions t);
  check int "miss is -1" (-1) (Table.lookup t ~version:3 ~key:0);
  Table.install t ~version:3 [ { Policy.key = 0; port = 1 }; { Policy.key = 2; port = 2 } ];
  Table.install t ~version:1 [ { Policy.key = 0; port = 2 } ];
  check (list int) "versions ascend" [ 1; 3 ] (Table.versions t);
  check bool "has 3" true (Table.has t 3);
  check int "v3 k0" 1 (Table.lookup t ~version:3 ~key:0);
  check int "v3 k1 unruled" (-1) (Table.lookup t ~version:3 ~key:1);
  check int "v1 k0" 2 (Table.lookup t ~version:1 ~key:0);
  (* Idempotent overwrite: re-install replaces the version's rules. *)
  Table.install t ~version:3 [ { Policy.key = 1; port = 2 } ];
  check int "overwritten k0 gone" (-1) (Table.lookup t ~version:3 ~key:0);
  check int "overwritten k1 present" 2 (Table.lookup t ~version:3 ~key:1);
  Table.uninstall t ~version:3;
  Table.uninstall t ~version:3 (* idempotent *);
  check (list int) "v3 removed" [ 1 ] (Table.versions t);
  check int "installs counted" 3 (Table.installs t);
  check int "uninstalls counted (no-op excluded)" 1 (Table.uninstalls t)

(* --- Agent ---------------------------------------------------------- *)

let mk_packet ~ingress_port ~version =
  let pkt =
    Packet.udp_packet
      ~src:(Ipv4_addr.of_octets 10 0 0 1)
      ~dst:(Ipv4_addr.of_octets 10 0 0 2)
      ~src_port:1000 ~dst_port:2000 ~payload_len:64 ()
  in
  pkt.Packet.meta.Packet.ingress_port <- ingress_port;
  pkt.Packet.meta.Packet.version <- version;
  pkt

let test_agent_stamping () =
  let a = Agent.create ~switch:0 ~keys:4 ~edge_port:(fun p -> p = 0) () in
  Table.install (Agent.table a) ~version:5 [ { Policy.key = 3; port = 1 } ];
  Table.install (Agent.table a) ~version:6 [ { Policy.key = 3; port = 2 } ];
  Agent.set_ingress_version a 5;
  (* Edge arrival: stamped with the live ingress version. *)
  let pkt = mk_packet ~ingress_port:0 ~version:0 in
  check int "edge forwards under v5" 1 (Agent.decide a pkt ~key:3);
  check int "packet stamped" 5 pkt.Packet.meta.Packet.version;
  check int "stamped counter" 1 (Agent.stamped a);
  (* Fabric arrival mid-update: the carried version wins even though
     the ingress register has moved on. *)
  Agent.set_ingress_version a 6;
  let pkt = mk_packet ~ingress_port:1 ~version:5 in
  check int "fabric keeps carried v5" 1 (Agent.decide a pkt ~key:3);
  check int "no re-stamp" 5 pkt.Packet.meta.Packet.version;
  check int "stamped unchanged" 1 (Agent.stamped a);
  check int "mixed stays zero" 0 (Agent.mixed a);
  check int "forwarded" 2 (Agent.forwarded a)

let test_agent_mixed_and_unroutable () =
  let a = Agent.create ~switch:0 ~keys:4 ~edge_port:(fun p -> p = 0) () in
  Table.install (Agent.table a) ~version:6 [ { Policy.key = 3; port = 2 } ];
  Agent.set_ingress_version a 6;
  (* A packet stamped v5 arrives but v5 was already GC'd here: the
     fallback forwards it under v6 — counted as a mixed-version
     forwarding (the safety violation E26 asserts never happens). *)
  let pkt = mk_packet ~ingress_port:1 ~version:5 in
  check int "fallback port" 2 (Agent.decide a pkt ~key:3);
  check int "mixed" 1 (Agent.mixed a);
  check int "unroutable" 0 (Agent.unroutable a);
  (* No fallback either: drop. *)
  let pkt = mk_packet ~ingress_port:1 ~version:5 in
  check int "drop" (-1) (Agent.decide a pkt ~key:1);
  check int "mixed again" 2 (Agent.mixed a);
  check int "unroutable" 1 (Agent.unroutable a)

(* --- Commit --------------------------------------------------------- *)

(* A bare-scheduler harness around the commit engine: submit and ack
   are 2 us one-way delays, the loss oracle is scripted per (switch,
   action), applies are journaled. *)
type harness = {
  sched : Scheduler.t;
  applies : (int * Commit.action) list ref;
  log : Buffer.t;
  stats : Commit.stats;
  env : Commit.env;
}

let mk_harness ?(lose = fun ~switch:_ ~action:_ ~attempt:_ -> false) () =
  let sched = Scheduler.create ~backend:Sched_backend.Heap () in
  let applies = ref [] in
  let log = Buffer.create 256 in
  let stats = Commit.fresh_stats () in
  let seq = ref 0 in
  let attempts = Hashtbl.create 16 in
  (* The engine logs each phase transition before submitting the
     phase's ops, and exactly one phase is ever active, so the current
     action can be tracked from the log — which lets the scripted loss
     oracle (whose interface is only [switch, now]) key on the action
     and the per-op attempt number. *)
  let current_action = ref Commit.Install in
  let note_phase line =
    let tag = "phase=" in
    let tl = String.length tag and ll = String.length line in
    let rec find i =
      if i + tl > ll then None
      else if String.sub line i tl = tag then Some (String.sub line (i + tl) (ll - i - tl))
      else find (i + 1)
    in
    match find 0 with
    | Some "installing" -> current_action := Commit.Install
    | Some "flipping" -> current_action := Commit.Flip
    | Some "unflipping" -> current_action := Commit.Unflip
    | Some "gc" -> current_action := Commit.Gc_old
    | Some "rb-gc" -> current_action := Commit.Gc_new
    | Some _ | None -> ()
  in
  let env =
    {
      Commit.sched;
      submit =
        (fun ~switch:_ f -> Scheduler.post sched ~at:(Scheduler.now sched + Sim_time.us 2) f);
      ack = (fun ~switch:_ f -> Scheduler.post sched ~at:(Scheduler.now sched + Sim_time.us 2) f);
      lost =
        (fun ~switch ~now:_ ->
          let k = (switch, !current_action) in
          let a = (try Hashtbl.find attempts k with Not_found -> 0) + 1 in
          Hashtbl.replace attempts k a;
          lose ~switch ~action:!current_action ~attempt:a);
      apply = (fun ~switch action -> applies := (switch, action) :: !applies);
      log =
        (fun line ->
          note_phase line;
          Buffer.add_string log line;
          Buffer.add_char log '\n');
      next_seq =
        (fun () ->
          incr seq;
          !seq);
      stats;
    }
  in
  { sched; applies; log; stats; env }

let count_applies h action = List.length (List.filter (fun (_, a) -> a = action) !(h.applies))

let run_commit ?lose ~targets () =
  let h = mk_harness ?lose () in
  let outcome = ref None in
  let _t =
    Commit.start h.env (Commit.default_config ()) ~version:2 ~targets
      ~on_done:(fun o -> outcome := Some o)
  in
  Scheduler.run h.sched;
  (h, !outcome)

let test_commit_happy_path () =
  let h, outcome = run_commit ~targets:[| 0; 1; 2 |] () in
  check bool "committed" true (outcome = Some Commit.Committed);
  (* Three forward phases, three switches, no noise. *)
  check int "attempts" 9 h.stats.Commit.attempts;
  check int "acks" 9 h.stats.Commit.acks;
  check int "retries" 0 h.stats.Commit.retries;
  check int "installs" 3 (count_applies h Commit.Install);
  check int "flips" 3 (count_applies h Commit.Flip);
  check int "gc-old" 3 (count_applies h Commit.Gc_old);
  check int "no rollback actions" 0 (count_applies h Commit.Unflip + count_applies h Commit.Gc_new);
  (* Phase order: every install precedes every flip precedes every GC. *)
  let order = List.rev_map snd !(h.applies) in
  let rank = function Commit.Install -> 0 | Flip -> 1 | Gc_old -> 2 | _ -> 99 in
  let sorted =
    let rec go = function
      | a :: (b :: _ as rest) -> rank a <= rank b && go rest
      | _ -> true
    in
    go order
  in
  check bool "install < flip < gc" true sorted

let test_commit_retry_recovers () =
  (* First install attempt to switch 1 is lost; the retry lands. *)
  let lose ~switch ~action ~attempt = switch = 1 && action = Commit.Install && attempt = 1 in
  let h, outcome = run_commit ~lose ~targets:[| 0; 1; 2 |] () in
  check bool "still committed" true (outcome = Some Commit.Committed);
  check int "one loss" 1 h.stats.Commit.lost;
  check int "one retry" 1 h.stats.Commit.retries;
  check int "attempts = 9 + the retry" 10 h.stats.Commit.attempts;
  check int "books: attempts = lost + acks" h.stats.Commit.attempts
    (h.stats.Commit.lost + h.stats.Commit.acks + h.stats.Commit.dup_acks + h.stats.Commit.late_acks);
  check int "install applied exactly once on sw1" 3 (count_applies h Commit.Install)

let test_commit_abort_from_install () =
  (* Switch 2's install never gets through: bounded retries exhaust,
     the update aborts, and — nothing having flipped — rollback is
     pure gc-new on the *other* switches' installed rules. *)
  let lose ~switch ~action ~attempt:_ = switch = 2 && action = Commit.Install in
  let h, outcome = run_commit ~lose ~targets:[| 0; 1; 2 |] () in
  check bool "rolled back" true (outcome = Some Commit.Rolled_back);
  check int "abandoned" 1 h.stats.Commit.abandoned;
  check int "no flips happened" 0 (count_applies h Commit.Flip);
  check int "no unflips needed" 0 (count_applies h Commit.Unflip);
  check int "installs on the healthy switches" 2 (count_applies h Commit.Install);
  check int "gc-new removes them" 3 (count_applies h Commit.Gc_new);
  check int "gc never skipped" 0 h.stats.Commit.gc_skipped;
  (* 1 + max_retries attempts burned on the dead switch. *)
  let cfg = Commit.default_config () in
  check int "loss budget" (1 + cfg.Commit.max_retries) h.stats.Commit.lost

let test_commit_rollback_from_flip () =
  (* Installs all land; switch 0's flip never does. The rollback must
     unflip the flipped ingresses, then gc the new rules. *)
  let lose ~switch ~action ~attempt:_ = switch = 0 && action = Commit.Flip in
  let h, outcome = run_commit ~lose ~targets:[| 0; 1; 2 |] () in
  check bool "rolled back" true (outcome = Some Commit.Rolled_back);
  check int "installs" 3 (count_applies h Commit.Install);
  check int "unflips" 3 (count_applies h Commit.Unflip);
  check int "gc-new" 3 (count_applies h Commit.Gc_new);
  check int "gc never skipped" 0 h.stats.Commit.gc_skipped;
  check bool "log shows the rollback pivot" true
    (let s = Buffer.contents h.log in
     let contains sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     contains "ROLLBACK from=flipping" && contains "ROLLED_BACK")

let test_commit_unflip_abandon_skips_gc () =
  (* Flip aborts because of switch 0, and then switch 1's unflip is
     also unreachable: the engine abandons it and must NOT gc the new
     rules (switch 1 keeps stamping the new version, so the new tables
     must stay resident network-wide). *)
  let lose ~switch ~action ~attempt:_ =
    (switch = 0 && action = Commit.Flip) || (switch = 1 && action = Commit.Unflip)
  in
  let h, outcome = run_commit ~lose ~targets:[| 0; 1; 2 |] () in
  check bool "rolled back" true (outcome = Some Commit.Rolled_back);
  check int "gc skipped once" 1 h.stats.Commit.gc_skipped;
  check int "no gc-new at all" 0 (count_applies h Commit.Gc_new);
  check int "two abandons (flip + unflip)" 2 h.stats.Commit.abandoned

let test_commit_books_balance_under_noise () =
  (* Random-ish but deterministic loss pattern; whatever the outcome,
     the conservation books must balance once the scheduler drains. *)
  let lose ~switch ~action:_ ~attempt =
    (switch * 7 + attempt * 13) mod 3 = 0 && attempt <= 2
  in
  let h, outcome = run_commit ~lose ~targets:[| 0; 1; 2; 3; 4 |] () in
  check bool "finished" true (outcome <> None);
  check int "attempts = lost + acked (+dup+late)" h.stats.Commit.attempts
    (h.stats.Commit.lost + h.stats.Commit.acks + h.stats.Commit.dup_acks + h.stats.Commit.late_acks);
  check int "applies = acks (lossy channel, reliable device)" h.stats.Commit.acks
    (h.stats.Commit.applied + h.stats.Commit.deduped)

(* --- Controller ----------------------------------------------------- *)

let ring_agents () =
  Array.init n (fun sw ->
      Some (Agent.create ~switch:sw ~keys:n ~edge_port:(fun p -> p = 0) ()))

let mk_controller ?lost ~sched () =
  let agents = ring_agents () in
  let ctrl =
    Controller.create ~sched ~switches:n ~agents
      ~initial:(Policy.with_version (Policy.ring_uniform ~switches:n ~name:"cw" ()) 1)
      ?lost ~seed:4242 ()
  in
  (ctrl, Array.map Option.get agents)

let test_controller_commit () =
  let sched = Scheduler.create ~backend:Sched_backend.Heap () in
  let ctrl, agents = mk_controller ~sched () in
  check int "bootstrap version" 1 (Controller.version ctrl);
  Array.iter
    (fun a ->
      check (list int) "v1 resident" [ 1 ] (Table.versions (Agent.table a));
      check int "ingress at v1" 1 (Agent.ingress_version a))
    agents;
  Scheduler.post sched ~at:(Sim_time.us 10) (fun () ->
      Controller.propose ctrl (Policy.ring_threshold ~switches:n ~ccw_at:5 ~name:"split5" ()));
  Scheduler.run sched;
  check int "committed" 1 (Controller.committed ctrl);
  check int "version advanced" 2 (Controller.version ctrl);
  check (option int) "nothing in flight" None (Controller.in_flight_version ctrl);
  Array.iter
    (fun a ->
      check (list int) "old version GC'd, only v2 left" [ 2 ] (Table.versions (Agent.table a));
      check int "ingress flipped" 2 (Agent.ingress_version a))
    agents;
  check int "mixed stays zero" 0 (Controller.mixed ctrl)

let test_controller_supersede () =
  (* Three proposals in the same instant: the first starts, the second
     parks, the third replaces the parked one. Two updates commit, one
     is superseded, and the final policy is the last proposal's. *)
  let sched = Scheduler.create ~backend:Sched_backend.Heap () in
  let ctrl, _ = mk_controller ~sched () in
  Scheduler.post sched ~at:(Sim_time.us 10) (fun () ->
      Controller.propose ctrl (Policy.ring_threshold ~switches:n ~ccw_at:5 ~name:"a" ());
      Controller.propose ctrl (Policy.ring_threshold ~switches:n ~ccw_at:4 ~name:"b" ());
      Controller.propose ctrl (Policy.ring_threshold ~switches:n ~ccw_at:3 ~name:"c" ()));
  Scheduler.run sched;
  check int "proposals" 3 (Controller.proposals ctrl);
  check int "committed" 2 (Controller.committed ctrl);
  check int "superseded" 1 (Controller.superseded ctrl);
  check string "last proposal wins" "c" (Policy.name (Controller.policy ctrl));
  check int "accounting closes" (Controller.proposals ctrl)
    (Controller.committed ctrl + Controller.rolled_back ctrl + Controller.superseded ctrl)

let test_controller_rollback_restores_old_policy () =
  (* Every op to switch 5 is lost: the install phase aborts and the
     network must end exactly where it started — v1 resident
     everywhere, ingresses at v1, v2's rules gone. *)
  let sched = Scheduler.create ~backend:Sched_backend.Heap () in
  let lost ~switch ~now:_ = switch = 5 in
  let ctrl, agents = mk_controller ~lost ~sched () in
  Scheduler.post sched ~at:(Sim_time.us 10) (fun () ->
      Controller.propose ctrl (Policy.ring_threshold ~switches:n ~ccw_at:5 ~name:"doomed" ()));
  Scheduler.run sched;
  check int "rolled back" 1 (Controller.rolled_back ctrl);
  check int "version unchanged" 1 (Controller.version ctrl);
  Array.iteri
    (fun sw a ->
      check (list int) (Printf.sprintf "sw%d back to v1 only" sw) [ 1 ]
        (Table.versions (Agent.table a));
      check int "ingress still v1" 1 (Agent.ingress_version a))
    agents;
  check int "mixed stays zero" 0 (Controller.mixed ctrl)

(* --- Control-plane metrics (satellites 1 and 2) ---------------------- *)

let test_cp_metrics () =
  let sched = Scheduler.create ~backend:Sched_backend.Heap () in
  let cp =
    Evcore.Control_plane.create ~sched ~latency:(Sim_time.us 4) ~jitter:0
      ~op_rate_per_sec:1e6 ~rng:(Stats.Rng.create ~seed:1) ()
  in
  let ran = ref 0 in
  for _ = 1 to 5 do
    Evcore.Control_plane.submit cp (fun () -> incr ran)
  done;
  check int "pending before run" 5 (Evcore.Control_plane.pending cp);
  Evcore.Control_plane.notify cp (fun () -> ());
  Scheduler.run sched;
  check int "ops ran" 5 !ran;
  check int "cp.ops" 5 (Evcore.Control_plane.ops cp);
  check int "cp.notifications" 1 (Evcore.Control_plane.notifications cp);
  check int "pending drained" 0 (Evcore.Control_plane.pending cp);
  check int "queue HWM" 5 (Evcore.Control_plane.queue_depth_hwm cp);
  let reg = Obs.Metrics.create () in
  Evcore.Control_plane.export_metrics cp reg;
  let read name =
    match Obs.Metrics.find_value reg name with
    | Some (Obs.Metrics.Counter_v v) -> v
    | Some (Obs.Metrics.Gauge_v { last; _ }) -> last
    | _ -> Alcotest.failf "metric %s missing" name
  in
  check int "exported cp.ops" 5 (read "cp.ops");
  check int "exported cp.dropped_ops" 0 (read "cp.dropped_ops");
  check int "exported cp.queue_depth" 5 (read "cp.queue_depth")

let test_cp_dropped_ops () =
  (* A quarantined control channel refuses ops: they are submitted,
     reach their execution time, and are counted dropped — never
     executed, never silently lost. *)
  let sched = Scheduler.create ~backend:Sched_backend.Heap () in
  let sup =
    Resil.Supervisor.create ~sched
      ~config:
        {
          (Resil.Supervisor.default_config ()) with
          Resil.Supervisor.policy = Resil.Policy.Quarantine;
          base_backoff = Sim_time.ms 10;
          max_backoff = Sim_time.ms 10;
        }
      ~seed:7 ()
  in
  let cp =
    Evcore.Control_plane.create ~sched ~latency:(Sim_time.us 4) ~jitter:0
      ~op_rate_per_sec:1e6 ~sup ~rng:(Stats.Rng.create ~seed:1) ()
  in
  let key = Option.get (Resil.Supervisor.find_key sup ~name:"cp.op") in
  Resil.Supervisor.inject_crash key ~n:1;
  let ran = ref 0 in
  for _ = 1 to 3 do
    Evcore.Control_plane.submit cp (fun () -> incr ran)
  done;
  Scheduler.run ~until:(Sim_time.ms 1) sched;
  (* Op 1 crashes (trips the quarantine), ops 2-3 arrive quarantined. *)
  check int "no op completed" 0 !ran;
  check int "cp.ops counts executed only" 0 (Evcore.Control_plane.ops cp);
  check int "cp.dropped_ops" 3 (Evcore.Control_plane.dropped_ops cp)

(* --- QCheck: the E26 determinism property (satellite 3) -------------- *)

module E26 = Experiments.E26_netupd

(* One chaos run of the E26 scenario, truncated to keep the property
   cheap: return every controller replica's schedule digest plus the
   final committed version. *)
let run_digests ~backend ~shards ~seed =
  let until = Sim_time.us 300 in
  let cfg, h = E26.scenario ~leg:E26.Chaos ~shards ~backend ~record_trace:false ~seed ~until () in
  ignore (Parsim.run cfg (E26.topo ()) : Parsim.result);
  let ctrls = List.sort compare h.E26.controllers in
  ( List.map (fun (_, c) -> Controller.schedule_digest c) ctrls,
    List.map (fun (_, c) -> Controller.version c) ctrls )

let qcheck_determinism =
  QCheck.Test.make ~count:4 ~name:"retry schedules identical across backends and shards"
    QCheck.(int_range 0 9999)
    (fun seed ->
      let canon_digests, canon_versions =
        run_digests ~backend:Sched_backend.Heap ~shards:1 ~seed
      in
      let canon = List.hd canon_digests and canon_v = List.hd canon_versions in
      List.iter
        (fun (backend, shards) ->
          let digests, versions = run_digests ~backend ~shards ~seed in
          List.iteri
            (fun i d ->
              if d <> canon then
                QCheck.Test.fail_reportf
                  "seed %d: %s/%d-shard replica %d retry schedule diverges" seed
                  (Sched_backend.to_string backend) shards i)
            digests;
          List.iter
            (fun v ->
              if v <> canon_v then
                QCheck.Test.fail_reportf "seed %d: final version %d <> %d" seed v canon_v)
            versions)
        [
          (Sched_backend.Wheel, 1);
          (Sched_backend.Ladder, 1);
          (Sched_backend.Heap, 2);
          (Sched_backend.Wheel, 2);
        ];
      true)

let suite =
  [
    test_case "ring_uniform is all-clockwise and delivers" `Quick test_ring_uniform;
    test_case "ring_threshold splits at the ccw distance" `Quick test_ring_threshold;
    test_case "ring_avoiding never crosses the dead link" `Quick test_ring_avoiding;
    test_case "cw_crosses identifies the clockwise arc" `Quick test_cw_crosses;
    test_case "ring_delivers rejects black holes and loops" `Quick test_ring_delivers_rejects_blackhole;
    test_case "versioned table: install/overwrite/uninstall" `Quick test_table;
    test_case "agent stamps at the edge, honours carried versions" `Quick test_agent_stamping;
    test_case "agent counts mixed and unroutable packets" `Quick test_agent_mixed_and_unroutable;
    test_case "commit: happy path phases in order" `Quick test_commit_happy_path;
    test_case "commit: a lost op retries and recovers" `Quick test_commit_retry_recovers;
    test_case "commit: install abort rolls back without unflips" `Quick test_commit_abort_from_install;
    test_case "commit: flip abort unflips then collects" `Quick test_commit_rollback_from_flip;
    test_case "commit: abandoned unflip skips the gc (stays safe)" `Quick test_commit_unflip_abandon_skips_gc;
    test_case "commit: conservation books balance under noise" `Quick test_commit_books_balance_under_noise;
    test_case "controller: two-phase commit end to end" `Quick test_controller_commit;
    test_case "controller: storm parks and supersedes" `Quick test_controller_supersede;
    test_case "controller: rollback restores the old policy" `Quick test_controller_rollback_restores_old_policy;
    test_case "control plane: ops/notifications/queue HWM metrics" `Quick test_cp_metrics;
    test_case "control plane: quarantined ops counted as dropped" `Quick test_cp_dropped_ops;
    QCheck_alcotest.to_alcotest qcheck_determinism;
  ]
