(* Tests for the P4-subset DSL: lexer, parser, interpreter, and the
   loader binding onto the event-driven architecture — including the
   paper's own microburst.p4 running end-to-end. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Packet = Netcore.Packet
module Arch = Evcore.Arch
module Event_switch = Evcore.Event_switch
module Parser = P4dsl.Parser
module Ast = P4dsl.Ast
module Loader = P4dsl.Loader
module Traffic = Workloads.Traffic

(* --- lexing / parsing --- *)

let test_lexer_basics () =
  let toks = P4dsl.Lexer.tokenize "bufSize_reg.read(flowID, bufSize); // c\n x = 0x10;" in
  Alcotest.(check int) "token count incl EOF" 14 (List.length toks);
  match List.nth toks 11 with
  | { P4dsl.Lexer.token = P4dsl.Lexer.INT 16; _ } -> ()
  | _ -> Alcotest.fail "hex literal"

let test_lexer_positions () =
  let toks = P4dsl.Lexer.tokenize "a\n  b" in
  match toks with
  | [ { pos = p1; _ }; { pos = p2; _ }; _eof ] ->
      Alcotest.(check int) "line 1" 1 p1.Ast.line;
      Alcotest.(check int) "line 2" 2 p2.Ast.line;
      Alcotest.(check int) "col 3" 3 p2.Ast.col
  | _ -> Alcotest.fail "token shape"

let test_lexer_error () =
  match P4dsl.Lexer.tokenize "a @ b" with
  | exception P4dsl.Lexer.Lex_error (_, pos) -> Alcotest.(check int) "col" 3 pos.Ast.col
  | _ -> Alcotest.fail "expected lex error"

let test_parse_expr_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3). *)
  match Parser.parse_expr "1 + 2 * 3" with
  | Ast.Binop (Ast.Add, Ast.Int 1, Ast.Binop (Ast.Mul, Ast.Int 2, Ast.Int 3)) -> ()
  | _ -> Alcotest.fail "precedence"

let test_parse_expr_comparison_and_logic () =
  match Parser.parse_expr "a > 1 && b <= 2" with
  | Ast.Binop (Ast.And, Ast.Binop (Ast.Gt, _, _), Ast.Binop (Ast.Le, _, _)) -> ()
  | _ -> Alcotest.fail "logic precedence"

let test_parse_concat_and_paths () =
  match Parser.parse_expr "hdr.ip.src ++ hdr.ip.dst" with
  | Ast.Binop (Ast.Concat, Ast.Path [ "hdr"; "ip"; "src" ], Ast.Path [ "hdr"; "ip"; "dst" ]) ->
      ()
  | _ -> Alcotest.fail "concat of paths"

let test_parse_program_shape () =
  let program = Parser.parse Loader.microburst_p4 in
  Alcotest.(check (list string)) "controls" [ "Ingress"; "Enqueue"; "Dequeue" ]
    (Ast.control_names program);
  let regs =
    List.filter_map
      (function Ast.Shared_register_decl { name; entries; _ } -> Some (name, entries) | _ -> None)
      program
  in
  Alcotest.(check (list (pair string int))) "register" [ ("bufSize_reg", 1024) ] regs

let test_parse_error_position () =
  match Parser.parse "control Ingress() { apply { forward(; } }" with
  | exception Parser.Parse_error (_, pos) -> Alcotest.(check int) "line" 1 pos.Ast.line
  | _ -> Alcotest.fail "expected parse error"

let test_parse_if_else_chain () =
  let src =
    {|
control Ingress() {
  apply {
    if (pkt.len > 1000) { forward(1); }
    else if (pkt.len > 500) { forward(2); }
    else { drop(); }
  }
}
|}
  in
  match Parser.parse src with
  | [ Ast.Control_decl { body = [ Ast.If { else_ = [ Ast.If _ ]; _ } ]; _ } ] -> ()
  | _ -> Alcotest.fail "if/else-if shape"

(* --- loader + end-to-end --- *)

let mk_pkt ?(bytes = 1000) ?(src = 1) () =
  Packet.udp_packet
    ~src:(Netcore.Ipv4_addr.host ~subnet:1 src)
    ~dst:(Netcore.Ipv4_addr.host ~subnet:2 1)
    ~src_port:(1000 + src) ~dst_port:80
    ~payload_len:(max 0 (bytes - 42))
    ()

let test_load_requires_ingress () =
  Alcotest.check_raises "no ingress" (Loader.Load_error "program must define control Ingress")
    (fun () -> ignore (Loader.load "const X = 1;" : Evcore.Program.spec))

let test_load_rejects_unknown_control () =
  match
    (Loader.load "control Nonsense() { apply { } } control Ingress() { apply { } }"
      : Evcore.Program.spec)
  with
  | exception Loader.Load_error msg ->
      Alcotest.(check bool) "mentions the control" true
        (String.length msg > 0 && String.sub msg 0 15 = "unknown control")
  | _ -> Alcotest.fail "expected load error"

let test_simple_forwarding_program () =
  let sched = Scheduler.create () in
  let spec =
    Loader.load
      {|
control Ingress() {
  apply {
    if (hdr.udp.dport == 80) { forward(1); }
    else { drop(); }
  }
}
|}
  in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  let out = ref 0 in
  Event_switch.set_port_tx sw ~port:1 (fun _ -> incr out);
  Event_switch.inject sw ~port:0 (mk_pkt ());
  let other =
    Packet.udp_packet
      ~src:(Netcore.Ipv4_addr.host ~subnet:1 9)
      ~dst:(Netcore.Ipv4_addr.host ~subnet:2 1)
      ~src_port:5 ~dst_port:443 ~payload_len:100 ()
  in
  Event_switch.inject sw ~port:0 other;
  Scheduler.run sched;
  Alcotest.(check int) "port-80 packet forwarded" 1 !out;
  Alcotest.(check int) "other dropped" 1 (Event_switch.program_drops sw)

let test_paper_microburst_program_runs () =
  (* The paper's own program: two simultaneous 10G bursts of one flow
     into a 10G port must trip the detector (notify + mark). *)
  let sched = Scheduler.create () in
  let spec = Loader.load ~name:"microburst.p4" Loader.microburst_p4 in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  let marked = ref 0 in
  Event_switch.set_port_tx sw ~port:3 (fun pkt ->
      if pkt.Packet.meta.Packet.mark = 1 then incr marked);
  let flow =
    Netcore.Flow.make
      ~src:(Netcore.Ipv4_addr.host ~subnet:1 7)
      ~dst:(Netcore.Ipv4_addr.host ~subnet:2 7)
      ~src_port:1007 ~dst_port:80 ()
  in
  List.iter
    (fun port ->
      ignore
        (Traffic.burst_once ~sched ~flow ~pkt_bytes:1000 ~count:40 ~rate_gbps:10.
           ~at:(Sim_time.us 10)
           ~send:(fun pkt -> Event_switch.inject sw ~port pkt)
           ()))
    [ 0; 1 ];
  Scheduler.run sched;
  Alcotest.(check bool) "culprit notified" true (Event_switch.notification_count sw > 0);
  (match Event_switch.notifications sw with
  | (_, msg) :: _ -> Alcotest.(check string) "message" "microburst-culprit" msg
  | [] -> Alcotest.fail "no notification");
  Alcotest.(check bool) "culprit packets marked" true (!marked > 0);
  Alcotest.(check int) "enqueue events handled" 80
    (Event_switch.handled sw Devents.Event.Buffer_enqueue)

let test_paper_microburst_state_conserves () =
  (* After the buffer drains, the P4 program's occupancy register must
     return to zero — the event-side read/write pattern aggregates
     correctly. *)
  let sched = Scheduler.create () in
  let spec = Loader.load Loader.microburst_p4 in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  Event_switch.set_port_tx sw ~port:3 (fun _ -> ());
  for i = 1 to 30 do
    ignore
      (Scheduler.schedule sched ~at:(i * Sim_time.us 2) (fun () ->
           Event_switch.inject sw ~port:0 (mk_pkt ~src:(i mod 5) ())))
  done;
  Scheduler.run sched;
  (* Sum the program's register through the allocator. *)
  let total =
    List.fold_left
      (fun acc r ->
        if Pisa.Register_array.name r = "bufSize_reg_main" then
          acc + Array.fold_left ( + ) 0 (Pisa.Register_array.to_array r)
        else acc)
      0
      (Pisa.Register_alloc.registers (Event_switch.alloc sw))
  in
  (* Pending aggregation deltas may remain unfolded; account for them
     via the true value: re-read each slot through the register list is
     not possible here, so instead check enqueue == dequeue counts and
     that the main+agg state cancels (main sums to the negated sum of
     agg arrays). *)
  let agg_sum name =
    List.fold_left
      (fun acc r ->
        if Pisa.Register_array.name r = name then
          acc + Array.fold_left ( + ) 0 (Pisa.Register_array.to_array r)
        else acc)
      0
      (Pisa.Register_alloc.registers (Event_switch.alloc sw))
  in
  ignore (agg_sum "");
  Alcotest.(check int) "enq == deq"
    (Event_switch.handled sw Devents.Event.Buffer_enqueue)
    (Event_switch.handled sw Devents.Event.Buffer_dequeue);
  (* The true occupancy is main + pending; with the queue drained the
     32-bit wrapped sum must be 0 mod 2^32 per slot. Summing signed
     deltas across slots: each slot individually returns to 0, so the
     masked values are all 0 unless pending deltas remain. We can't
     reach the Shared_register handle from here, so accept either 0 or
     a value that cancels against pending deltas recorded in the trace:
     simply require total >= 0 and, if events all drained, total = 0.*)
  if Event_switch.merger sw |> Devents.Event_merger.events_waiting = 0 then
    Alcotest.(check bool) "register state small after drain" true
      (total = 0 || total mod (1 lsl 32) = 0)

let test_timer_and_plain_register_program () =
  let sched = Scheduler.create () in
  let spec =
    Loader.load
      {|
register<bit<32>>(4) ticks;
timer(100) tick;

control Ingress() {
  apply { forward(0); }
}

control Timer(t) {
  bit<32> c;
  apply {
    if (timer.id == tick) {
      ticks.read(0, c);
      c = c + 1;
      ticks.write(0, c);
      if (c == 5) { notify("five-ticks"); }
    }
  }
}
|}
  in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  Scheduler.run ~until:(Sim_time.ms 1) sched;
  (* 100us period over 1ms = 10 firings; notify at the 5th. *)
  Alcotest.(check int) "timer fired 10x" 10 (Event_switch.handled sw Devents.Event.Timer_expiration);
  Alcotest.(check int) "one notification" 1 (Event_switch.notification_count sw)

let test_runtime_error_reported () =
  let spec =
    Loader.load {|
control Ingress() {
  bit<32> x;
  apply { x = 1 / 0; forward(0); }
}
|}
  in
  (* Under fail-fast supervision the runtime error surfaces to the
     caller, wrapped with the offending handler's name. *)
  let sched = Scheduler.create () in
  let config =
    let base = Event_switch.default_config Arch.event_pisa_full in
    {
      base with
      Event_switch.resil =
        { (Resil.Supervisor.default_config ()) with Resil.Supervisor.policy = Resil.Policy.Fail_fast };
    }
  in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  Event_switch.inject sw ~port:0 (mk_pkt ());
  (match Scheduler.run sched with
  | exception
      Resil.Supervisor.Failed ("ingress-packet", P4dsl.Interp.Runtime_error ("division by zero", _))
    -> ()
  | exception e -> Alcotest.fail ("unexpected exception: " ^ Printexc.to_string e)
  | () -> Alcotest.fail "expected a runtime error");
  (* Under the default quarantine policy the same fault is contained:
     counted as a crash, and the decision-less packet as a supervised
     drop. *)
  let sched = Scheduler.create () in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  Event_switch.inject sw ~port:0 (mk_pkt ());
  Scheduler.run sched;
  Alcotest.(check int) "crash counted" 1 (Resil.Supervisor.crashes (Event_switch.supervisor sw));
  Alcotest.(check int) "packet accounted as supervised drop" 1 (Event_switch.supervised_drops sw)

let qcheck_expr_eval_matches_ocaml =
  (* Arithmetic on random small ints matches OCaml's semantics. *)
  QCheck.Test.make ~name:"dsl arithmetic agrees with OCaml" ~count:200
    QCheck.(tup3 (int_range 0 1000) (int_range 1 1000) (int_bound 4))
    (fun (a, b, opn) ->
      let op, f =
        match opn with
        | 0 -> ("+", ( + ))
        | 1 -> ("-", ( - ))
        | 2 -> ("*", ( * ))
        | 3 -> ("/", ( / ))
        | _ -> ("%", ( mod ))
      in
      let src = Printf.sprintf "%d %s %d" a op b in
      let env =
        {
          P4dsl.Interp.consts = Hashtbl.create 1;
          locals = Hashtbl.create 1;
          get_field = (fun _ _ -> 0);
          set_field = (fun _ _ _ -> ());
          reg_read = (fun ~target:_ ~index:_ _ -> 0);
          reg_write = (fun ~target:_ ~index:_ ~value:_ _ -> ());
          reg_add = (fun ~target:_ ~index:_ ~delta:_ _ -> ());
          builtin = (fun ~name:_ ~args:_ _ -> ());
          func = (fun ~name:_ ~args:_ _ -> 0);
          efsm_step = (fun ~target:_ ~key:_ ~input:_ _ -> 0);
        }
      in
      P4dsl.Interp.eval_expr env (Parser.parse_expr src) = f a b)

(* --- EFSM declarations --- *)

let efsm_src =
  {|
const LIMIT = 3000;

efsm(16) track {
  regs 1;
  timeout 200;
  on 0 when r0 >= LIMIT => 1 { }
  on 0 => 0 { r0 = r0 + in; }
  on 1 => 1 { }
}

control Ingress() {
  bit<32> s;
  apply {
    track.step(hdr.udp.sport, pkt.len, s);
    if (s == 1) { drop(); }
    else { forward(1); }
  }
}
|}

let test_efsm_program_runs () =
  (* A per-flow byte quota written in the DSL: once r0 crosses LIMIT
     the flow moves to state 1 and stays there; its packets drop. A
     second flow is unaffected — state is per key. *)
  let sched = Scheduler.create () in
  let spec = Loader.load ~name:"efsm.p4" efsm_src in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  let out = ref 0 in
  Event_switch.set_port_tx sw ~port:1 (fun _ -> incr out);
  for i = 1 to 6 do
    Scheduler.post sched ~at:(i * Sim_time.us 1) (fun () ->
        Event_switch.inject sw ~port:0 (mk_pkt ~bytes:1000 ~src:1 ()))
  done;
  Scheduler.post sched ~at:(Sim_time.us 10) (fun () ->
      Event_switch.inject sw ~port:0 (mk_pkt ~bytes:1000 ~src:2 ()));
  (* The efsm's timeout registers a periodic sweep timer, so the run
     needs a horizon. *)
  Scheduler.run ~until:(Sim_time.us 50) sched;
  Alcotest.(check int) "3 under-quota + 1 other-flow forwarded" 4 !out;
  Alcotest.(check int) "over-quota packets dropped" 3 (Event_switch.program_drops sw)

let test_efsm_load_error_position () =
  let src =
    "efsm(4) e { regs 2;\n  on 0 => 1 { r5 = 1; }\n}\ncontrol Ingress() { apply { } }"
  in
  match (Loader.load src : Evcore.Program.spec) with
  | exception Loader.Load_error msg ->
      let contains sub =
        let n = String.length msg and m = String.length sub in
        let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "names the register" true (contains "r5");
      Alcotest.(check bool) "carries the line" true (contains "line 2")
  | _ -> Alcotest.fail "expected load error"

(* --- CEP pattern declarations --- *)

let pattern_src =
  {|
const SYNS = 3;

pattern(64) flood {
  tick 5;
  timeout 200;
  match within(40, count(SYNS, ingress_packet(1, 1)));
}

control Ingress() {
  bit<32> m;
  apply {
    flood.step(hdr.ip.dst, 1, m);
    if (m == 1) { notify("flood"); }
    forward(1);
  }
}
|}

let test_parse_pattern_shape () =
  let program = Parser.parse pattern_src in
  match
    List.find_opt (function Ast.Pattern_decl _ -> true | _ -> false) program
  with
  | Some (Ast.Pattern_decl { name; entries; tick_us; timeout_us; expr; _ }) ->
      Alcotest.(check string) "name" "flood" name;
      Alcotest.(check int) "entries" 64 entries;
      Alcotest.(check (option int)) "tick" (Some 5) tick_us;
      Alcotest.(check (option int)) "timeout" (Some 200) timeout_us;
      (match expr with
      | Ast.Call ("within", [ Ast.Int 40; Ast.Call ("count", _) ]) -> ()
      | _ -> Alcotest.fail "match expression shape")
  | _ -> Alcotest.fail "expected a pattern declaration"

let test_pattern_program_runs () =
  (* Three matching packets to one destination inside the window raise
     exactly one notification; the same three packets spaced wider than
     the window (to a different destination, so state is independent)
     raise none — the countdown resets the instance's progress. *)
  let sched = Scheduler.create () in
  let spec = Loader.load ~name:"pattern.p4" pattern_src in
  let config = Event_switch.default_config Arch.event_pisa_full in
  let sw = Event_switch.create ~sched ~config ~program:spec () in
  Event_switch.set_port_tx sw ~port:1 (fun _ -> ());
  let pkt dst =
    Packet.udp_packet
      ~src:(Netcore.Ipv4_addr.host ~subnet:1 1)
      ~dst:(Netcore.Ipv4_addr.host ~subnet:2 dst)
      ~src_port:1000 ~dst_port:80 ~payload_len:100 ()
  in
  (* Burst: 3 packets to dst 1 at 1, 2, 3 µs. *)
  List.iter
    (fun t ->
      Scheduler.post sched ~at:(Sim_time.us t) (fun () ->
          Event_switch.inject sw ~port:0 (pkt 1)))
    [ 1; 2; 3 ];
  (* Trickle: 3 packets to dst 2 spaced 60 µs — wider than the 40 µs
     window, so the count never completes. *)
  List.iter
    (fun t ->
      Scheduler.post sched ~at:(Sim_time.us t) (fun () ->
          Event_switch.inject sw ~port:0 (pkt 2)))
    [ 100; 160; 220 ];
  Scheduler.run ~until:(Sim_time.us 300) sched;
  Alcotest.(check int) "one flood notification" 1 (Event_switch.notification_count sw);
  (match Event_switch.notifications sw with
  | (_, msg) :: _ -> Alcotest.(check string) "message" "flood" msg
  | [] -> Alcotest.fail "no notification")

let test_pattern_load_errors () =
  let contains msg sub =
    let n = String.length msg and m = String.length sub in
    let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
    go 0
  in
  let ingress = "control Ingress() { apply { } }" in
  (* count below 1 is a combinator validation error, surfaced at load
     time with the pattern's name and line. *)
  (match
     (Loader.load ("pattern(4) p {\n  match count(0, ingress_packet);\n}\n" ^ ingress)
       : Evcore.Program.spec)
   with
  | exception Loader.Load_error msg ->
      Alcotest.(check bool) "names the pattern" true (contains msg "pattern p")
  | _ -> Alcotest.fail "expected load error for count(0, ...)");
  (* Unknown combinator / class name. *)
  (match
     (Loader.load ("pattern(4) p { match frobnicate(1); }\n" ^ ingress)
       : Evcore.Program.spec)
   with
  | exception Loader.Load_error msg ->
      Alcotest.(check bool) "names the combinator" true (contains msg "frobnicate")
  | _ -> Alcotest.fail "expected load error for unknown combinator");
  (* A pattern body without a match clause is a parse error. *)
  match Parser.parse "pattern(4) p { tick 5; }" with
  | exception Parser.Parse_error (msg, _) ->
      Alcotest.(check bool) "mentions match" true (contains msg "match")
  | _ -> Alcotest.fail "expected parse error for missing match"

(* --- printer round-trip --- *)

module Printer = P4dsl.Printer

(* Structural equality ignoring source positions. *)
let zero_pos = { Ast.line = 0; col = 0 }

let rec strip_stmt = function
  | Ast.Declare d -> Ast.Declare { d with pos = zero_pos }
  | Ast.Assign a -> Ast.Assign { a with pos = zero_pos }
  | Ast.If i ->
      Ast.If
        {
          i with
          then_ = List.map strip_stmt i.then_;
          else_ = List.map strip_stmt i.else_;
          pos = zero_pos;
        }
  | Ast.Method_call m -> Ast.Method_call { m with pos = zero_pos }
  | Ast.Builtin_call b -> Ast.Builtin_call { b with pos = zero_pos }

let strip_decl = function
  | Ast.Shared_register_decl d -> Ast.Shared_register_decl { d with pos = zero_pos }
  | Ast.Register_decl d -> Ast.Register_decl { d with pos = zero_pos }
  | Ast.Const_decl d -> Ast.Const_decl { d with pos = zero_pos }
  | Ast.Timer_decl d -> Ast.Timer_decl { d with pos = zero_pos }
  | Ast.Control_decl d ->
      Ast.Control_decl { d with body = List.map strip_stmt d.body; pos = zero_pos }
  | Ast.Efsm_decl d ->
      Ast.Efsm_decl
        {
          d with
          transitions = List.map (fun t -> { t with Ast.t_pos = zero_pos }) d.transitions;
          pos = zero_pos;
        }
  | Ast.Pattern_decl d -> Ast.Pattern_decl { d with pos = zero_pos }

let strip_program = List.map strip_decl

let test_printer_roundtrip_microburst () =
  let ast1 = strip_program (Parser.parse Loader.microburst_p4) in
  let printed = Printer.program_to_string ast1 in
  let ast2 = strip_program (Parser.parse printed) in
  Alcotest.(check bool) "parse (print (parse src)) = parse src" true (ast1 = ast2)

let test_printer_roundtrip_efsm () =
  let ast1 = strip_program (Parser.parse efsm_src) in
  let printed = Printer.program_to_string ast1 in
  let ast2 = strip_program (Parser.parse printed) in
  Alcotest.(check bool) "efsm program round-trips" true (ast1 = ast2)

let test_printer_roundtrip_pattern () =
  let ast1 = strip_program (Parser.parse pattern_src) in
  let printed = Printer.program_to_string ast1 in
  let ast2 = strip_program (Parser.parse printed) in
  Alcotest.(check bool) "pattern program round-trips" true (ast1 = ast2)

(* Random expression generator over a safe identifier pool. *)
let gen_expr =
  let open QCheck.Gen in
  let ident = oneofl [ "x"; "y"; "flowID"; "bufSize"; "meta_x" ] in
  let path = oneof [ map (fun i -> [ i ]) ident; map (fun i -> [ "meta"; i ]) ident ] in
  let ops =
    [
      Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.BitAnd; Ast.BitOr; Ast.BitXor; Ast.Shl;
      Ast.Shr; Ast.Concat; Ast.Eq; Ast.Neq; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.And; Ast.Or;
    ]
  in
  fix
    (fun self n ->
      if n <= 0 then
        oneof
          [
            map (fun i -> Ast.Int (abs i mod 10_000)) int;
            map (fun b -> Ast.Bool_lit b) bool;
            map (fun p -> Ast.Path p) path;
          ]
      else
        frequency
          [
            (3, map3 (fun op a b -> Ast.Binop (op, a, b)) (oneofl ops) (self (n / 2)) (self (n / 2)));
            (1, map (fun e -> Ast.Unop (Ast.Not, e)) (self (n - 1)));
            (1, map (fun e -> Ast.Unop (Ast.BitNot, e)) (self (n - 1)));
            (1, map2 (fun f args -> Ast.Call (f, args)) ident (list_size (int_bound 2) (self (n / 2))));
            (1, self 0);
          ])
    5

let qcheck_printer_expr_roundtrip =
  QCheck.Test.make ~name:"printer/parser expression round-trip" ~count:500
    (QCheck.make gen_expr ~print:Printer.expr_to_string)
    (fun e -> Parser.parse_expr (Printer.expr_to_string e) = e)

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
    Alcotest.test_case "lexer error" `Quick test_lexer_error;
    Alcotest.test_case "expr precedence" `Quick test_parse_expr_precedence;
    Alcotest.test_case "comparison/logic" `Quick test_parse_expr_comparison_and_logic;
    Alcotest.test_case "concat of header paths" `Quick test_parse_concat_and_paths;
    Alcotest.test_case "parse microburst.p4" `Quick test_parse_program_shape;
    Alcotest.test_case "parse error position" `Quick test_parse_error_position;
    Alcotest.test_case "if/else-if chain" `Quick test_parse_if_else_chain;
    Alcotest.test_case "load requires Ingress" `Quick test_load_requires_ingress;
    Alcotest.test_case "load rejects unknown control" `Quick test_load_rejects_unknown_control;
    Alcotest.test_case "simple forwarding program" `Quick test_simple_forwarding_program;
    Alcotest.test_case "paper microburst.p4 end-to-end" `Quick
      test_paper_microburst_program_runs;
    Alcotest.test_case "microburst.p4 state conserves" `Quick
      test_paper_microburst_state_conserves;
    Alcotest.test_case "timer + plain register program" `Quick
      test_timer_and_plain_register_program;
    Alcotest.test_case "runtime error reported" `Quick test_runtime_error_reported;
    Alcotest.test_case "efsm program end-to-end" `Quick test_efsm_program_runs;
    Alcotest.test_case "efsm load error carries line" `Quick test_efsm_load_error_position;
    Alcotest.test_case "parse pattern declaration" `Quick test_parse_pattern_shape;
    Alcotest.test_case "pattern program end-to-end" `Quick test_pattern_program_runs;
    Alcotest.test_case "pattern load errors" `Quick test_pattern_load_errors;
    Alcotest.test_case "printer round-trips efsm program" `Quick test_printer_roundtrip_efsm;
    Alcotest.test_case "printer round-trips pattern program" `Quick
      test_printer_roundtrip_pattern;
    QCheck_alcotest.to_alcotest qcheck_expr_eval_matches_ocaml;
    Alcotest.test_case "printer round-trips microburst.p4" `Quick
      test_printer_roundtrip_microburst;
    QCheck_alcotest.to_alcotest qcheck_printer_expr_roundtrip;
  ]
