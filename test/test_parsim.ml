(* Sharded parallel backend: partitioning, horizon algebra, SPSC
   channels, windowed draining, and sequential-vs-sharded conformance
   on a small ring. The full-size fat-tree conformance lives in the
   golden suite and E23. *)

module Sim_time = Eventsim.Sim_time
module Scheduler = Eventsim.Scheduler
module Sched_backend = Eventsim.Sched_backend
module Topology = Evcore.Topology
module Event_switch = Evcore.Event_switch
module Program = Evcore.Program
module Arch = Evcore.Arch
module Host = Evcore.Host
module Packet = Netcore.Packet
module Ipv4_addr = Netcore.Ipv4_addr
module Spsc = Parsim.Spsc
module Horizon = Parsim.Horizon

(* ------------------------------------------------------------------ *)
(* Partitioning                                                        *)

let test_partition_exactly_once () =
  let topo = Topology.fat_tree ~k:4 () in
  List.iter
    (fun shards ->
      let p = Parsim.partition topo ~shards in
      Alcotest.(check int) "switch array sized" topo.Topology.switches
        (Array.length p.Parsim.shard_of_switch);
      let counts = Array.make shards 0 in
      Array.iter
        (fun s ->
          Alcotest.(check bool) "shard id in range" true (s >= 0 && s < shards);
          counts.(s) <- counts.(s) + 1)
        p.Parsim.shard_of_switch;
      (* Every switch lands in exactly one shard (it has exactly one
         array slot), every shard is populated, and weights balance to
         within one switch's worth: a boundary moved by one switch
         cannot improve the heaviest shard. *)
      let mn = Array.fold_left min max_int counts in
      Alcotest.(check bool) "no empty shard" true (mn >= 1);
      let weights = Parsim.default_weights topo in
      let wmax = Array.fold_left max 0 weights in
      let wmn = Array.fold_left min max_int p.Parsim.shard_weight
      and wmx = Array.fold_left max 0 p.Parsim.shard_weight in
      Alcotest.(check bool) "weight-balanced" true (wmx - wmn <= 2 * wmax);
      let wtotal = Array.fold_left ( + ) 0 weights in
      Alcotest.(check int) "weights conserved" wtotal
        (Array.fold_left ( + ) 0 p.Parsim.shard_weight);
      (* Contiguous blocks: assignments never decrease with switch id. *)
      Array.iteri
        (fun i s ->
          if i > 0 then
            Alcotest.(check bool) "contiguous blocks" true
              (s >= p.Parsim.shard_of_switch.(i - 1)))
        p.Parsim.shard_of_switch;
      (* A host lives with its edge switch. *)
      List.iter
        (fun (at : Topology.attachment) ->
          Alcotest.(check int) "host co-located" p.Parsim.shard_of_switch.(at.switch)
            p.Parsim.shard_of_host.(at.host))
        topo.Topology.attachments)
    [ 1; 2; 3; 4; 5; 20 ]

let test_partition_bad_counts () =
  let topo = Topology.ring ~switches:4 () in
  List.iter
    (fun shards ->
      match Parsim.partition topo ~shards with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "partition accepted %d shards for 4 switches" shards)
    [ 0; -1; 5 ]

let test_plan_link_coverage () =
  let topo = Topology.ring ~switches:6 () in
  let pl = Parsim.plan topo ~shards:3 in
  let part = pl.Parsim.part in
  let seen = Hashtbl.create 16 in
  let claim lid =
    if Hashtbl.mem seen lid then Alcotest.failf "link %d planned twice" lid;
    Hashtbl.add seen lid ()
  in
  List.iter
    (fun (owner, (l : Topology.link)) ->
      claim l.link_id;
      let sa = part.Parsim.shard_of_switch.(fst l.a)
      and sb = part.Parsim.shard_of_switch.(fst l.b) in
      Alcotest.(check int) "local link endpoints co-sharded" sa sb;
      Alcotest.(check int) "local link owner" sa owner)
    pl.Parsim.local_links;
  List.iter
    (fun (c : Parsim.cross_link) ->
      claim c.link.link_id;
      Alcotest.(check int) "shard_a recorded" part.Parsim.shard_of_switch.(fst c.link.a)
        c.shard_a;
      Alcotest.(check int) "shard_b recorded" part.Parsim.shard_of_switch.(fst c.link.b)
        c.shard_b;
      Alcotest.(check bool) "cross link spans shards" true (c.shard_a <> c.shard_b);
      (* Links are bidirectional: each cross link needs a channel
         endpoint in both directions. *)
      List.iter
        (fun dir ->
          Alcotest.(check bool) "channel exists for direction" true
            (List.mem dir pl.Parsim.channels))
        [ (c.shard_a, c.shard_b); (c.shard_b, c.shard_a) ])
    pl.Parsim.cross;
  Alcotest.(check int) "every link planned exactly once"
    (List.length topo.Topology.links)
    (Hashtbl.length seen);
  Alcotest.(check bool) "ring cut produces cross links" true (pl.Parsim.cross <> []);
  (* Channel list is duplicate-free. *)
  Alcotest.(check int) "channels distinct"
    (List.length pl.Parsim.channels)
    (List.length (List.sort_uniq compare pl.Parsim.channels));
  (* Lookahead is the minimum cross-link delay, and the safety bound:
     no cross link is faster. *)
  let min_cross =
    List.fold_left (fun acc (c : Parsim.cross_link) -> min acc c.link.delay) max_int
      pl.Parsim.cross
  in
  Alcotest.(check int) "lookahead = min cross delay" min_cross pl.Parsim.lookahead

let test_plan_single_shard () =
  let topo = Topology.ring ~switches:4 () in
  let pl = Parsim.plan topo ~shards:1 in
  Alcotest.(check int) "no cross links" 0 (List.length pl.Parsim.cross);
  Alcotest.(check (list (pair int int))) "no channels" [] pl.Parsim.channels;
  Alcotest.(check int) "all links local" (List.length topo.Topology.links)
    (List.length pl.Parsim.local_links);
  (* With nothing crossing, one window must cover any realistic run. *)
  Alcotest.(check bool) "lookahead effectively infinite" true
    (pl.Parsim.lookahead > Sim_time.ms 1_000_000)

(* ------------------------------------------------------------------ *)
(* Horizon algebra                                                     *)

let test_horizon_safe () =
  Alcotest.(check int) "no neighbours = unbounded" max_int
    (Horizon.safe ~neighbor_horizons:[] ~lookahead:5);
  Alcotest.(check int) "min over neighbours" 15
    (Horizon.safe ~neighbor_horizons:[ 10; 40; 25 ] ~lookahead:5);
  Alcotest.(check int) "laggard dominates" 7
    (Horizon.safe ~neighbor_horizons:[ 0; 1000 ] ~lookahead:7);
  List.iter
    (fun lookahead ->
      match Horizon.safe ~neighbor_horizons:[ 10 ] ~lookahead with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "lookahead %d accepted" lookahead)
    [ 0; -3 ]

let check_tiling ~until ~lookahead =
  let rounds = Horizon.rounds ~until ~lookahead in
  if rounds * lookahead <= until then
    Alcotest.failf "rounds=%d too few for until=%d L=%d" rounds until lookahead;
  if (rounds - 1) * lookahead > until then
    Alcotest.failf "rounds=%d too many for until=%d L=%d" rounds until lookahead;
  let start0, _ = Horizon.window ~round:0 ~lookahead ~until in
  Alcotest.(check int) "first window starts at 0" 0 start0;
  for r = 0 to rounds - 1 do
    let start, horizon = Horizon.window ~round:r ~lookahead ~until in
    Alcotest.(check bool) "window non-degenerate" true (start < horizon);
    Alcotest.(check bool) "horizon clamped" true (horizon <= until + 1);
    if r < rounds - 1 then
      let start', _ = Horizon.window ~round:(r + 1) ~lookahead ~until in
      Alcotest.(check int) "windows tile" horizon start'
  done;
  let _, last = Horizon.window ~round:(rounds - 1) ~lookahead ~until in
  Alcotest.(check int) "last horizon covers until" (until + 1) last

let test_horizon_tiling () =
  List.iter
    (fun (until, lookahead) -> check_tiling ~until ~lookahead)
    [ (100, 7); (100, 100); (100, 1000); (0, 1); (0, 50); (99, 33); (1_000_000, 1_100_000) ]

let qcheck_horizon_tiling =
  QCheck.Test.make ~count:200 ~name:"horizon windows tile [0, until+1) exactly"
    QCheck.(pair (int_range 0 100_000) (int_range 1 10_000))
    (fun (until, lookahead) ->
      check_tiling ~until ~lookahead;
      (* The conservative rule itself: once every neighbour has
         published round r's start, the safe bound reaches round r's
         horizon. *)
      let r = Horizon.rounds ~until ~lookahead - 1 in
      let start, horizon = Horizon.window ~round:r ~lookahead ~until in
      Horizon.safe ~neighbor_horizons:[ start; start ] ~lookahead >= horizon)

(* ------------------------------------------------------------------ *)
(* Adaptive horizon                                                    *)

let test_adaptive_bound () =
  (* Two shards 5 apart: the bound tracks the earliest next event plus
     the cheapest outgoing edge, never the static tiling. *)
  Alcotest.(check int) "bound follows earliest + delay" 105
    (Horizon.adaptive_bound ~min_out_delays:[| 5; 5 |] ~next_events:[| 100; 250 |]
       ~until:10_000);
  (* A quiescent shard publishes no_event and stops constraining. *)
  Alcotest.(check int) "quiescent shard ignored" 255
    (Horizon.adaptive_bound ~min_out_delays:[| 5; 5 |]
       ~next_events:[| Horizon.no_event; 250 |] ~until:10_000);
  (* Everyone quiescent: one final window closes the run. *)
  Alcotest.(check int) "all quiescent -> until + 1" 10_001
    (Horizon.adaptive_bound ~min_out_delays:[| 5; 5 |]
       ~next_events:[| Horizon.no_event; Horizon.no_event |] ~until:10_000);
  (* No cross links at all (min_out = no_event sentinel). *)
  Alcotest.(check int) "no edges -> until + 1" 10_001
    (Horizon.adaptive_bound ~min_out_delays:[| Horizon.no_event; Horizon.no_event |]
       ~next_events:[| 3; 4 |] ~until:10_000);
  (* Clamped to until + 1 from above. *)
  Alcotest.(check int) "clamped to until+1" 101
    (Horizon.adaptive_bound ~min_out_delays:[| 50 |] ~next_events:[| 90 |] ~until:100);
  match
    Horizon.adaptive_bound ~min_out_delays:[| 1 |] ~next_events:[| 1; 2 |] ~until:10
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch accepted"

(* The adaptive bound never exceeds the static bound's safety envelope:
   with every next event at or after the fleet clock [cur], the bound
   still satisfies the conservative contract — nothing any shard can
   send lands before it — and it never falls at or below [cur] (every
   round progresses). *)
let qcheck_adaptive_safety =
  QCheck.Test.make ~count:300 ~name:"adaptive bound stays in the safety envelope"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 8) (pair (int_range 0 5_000) (int_range 1 1_000)))
        (int_range 0 50_000))
    (fun (shard_specs, cur) ->
      let next_events =
        Array.of_list (List.map (fun (off, _) -> cur + off) shard_specs)
      in
      let min_out = Array.of_list (List.map snd shard_specs) in
      let until = cur + 100_000 in
      let bound = Horizon.adaptive_bound ~min_out_delays:min_out ~next_events ~until in
      (* Safety: no shard j can deliver before next_events.(j) +
         min_out.(j); the bound is the min of exactly those reaches. *)
      let safe_envelope = ref (until + 1) in
      Array.iteri
        (fun j d -> safe_envelope := min !safe_envelope (next_events.(j) + d))
        min_out;
      bound <= !safe_envelope
      (* Progress: static would give cur + min delay; adaptive gives at
         least that (next events are at or after cur). *)
      && bound > cur
      &&
      let static = min (cur + Array.fold_left min max_int min_out) (until + 1) in
      bound >= static)

(* ------------------------------------------------------------------ *)
(* Weighted partitioning                                               *)

(* Regression: skewed weights must never produce an empty shard — the
   boundary clamp degrades toward the equal-count split instead. *)
let test_partition_skewed_weights () =
  let topo = Topology.ring ~switches:8 () in
  let cases =
    [
      ([| 1000; 1; 1; 1; 1; 1; 1; 1 |], 3);
      ([| 1; 1; 1; 1; 1; 1; 1; 1000 |], 4);
      ([| 0; 0; 0; 0; 0; 0; 0; 0 |], 5);
      ([| 1000; 1000; 0; 0; 0; 0; 1000; 1000 |], 8);
    ]
  in
  List.iter
    (fun (weights, shards) ->
      let p = Parsim.partition ~weights topo ~shards in
      let counts = Array.make shards 0 in
      Array.iter (fun s -> counts.(s) <- counts.(s) + 1) p.Parsim.shard_of_switch;
      Array.iteri
        (fun s c ->
          if c = 0 then
            Alcotest.failf "shard %d empty for weights=%s shards=%d" s
              (String.concat ";" (Array.to_list (Array.map string_of_int weights)))
              shards)
        counts)
    cases;
  (match Parsim.partition ~weights:[| 1; 2 |] topo ~shards:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "short weight vector accepted");
  match Parsim.partition ~weights:(Array.make 8 (-1)) topo ~shards:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative weights accepted"

let qcheck_partition_never_empty =
  QCheck.Test.make ~count:200 ~name:"weighted partition never yields an empty shard"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 2 24) (int_range 0 1000))
        (int_range 1 24))
    (fun (weights, shards) ->
      let switches = List.length weights in
      QCheck.assume (shards <= switches);
      let topo = Topology.ring ~switches () in
      let p = Parsim.partition ~weights:(Array.of_list weights) topo ~shards in
      let counts = Array.make shards 0 in
      Array.iter (fun s -> counts.(s) <- counts.(s) + 1) p.Parsim.shard_of_switch;
      Array.for_all (fun c -> c >= 1) counts
      && Array.for_all (fun w -> w >= 0) p.Parsim.shard_weight)

(* ------------------------------------------------------------------ *)
(* SPSC channel                                                        *)

let test_spsc_fifo_and_backpressure () =
  let ch = Spsc.create ~capacity:4 in
  Alcotest.(check int) "capacity" 4 (Spsc.capacity ch);
  List.iter (fun i -> Alcotest.(check bool) "push accepted" true (Spsc.try_push ch i)) [ 1; 2; 3; 4 ];
  Alcotest.(check bool) "full channel refuses" false (Spsc.try_push ch 5);
  Alcotest.(check int) "length when full" 4 (Spsc.length ch);
  Alcotest.(check (option int)) "fifo head" (Some 1) (Spsc.try_pop ch);
  Alcotest.(check bool) "slot freed by pop" true (Spsc.try_push ch 5);
  List.iter
    (fun expect -> Alcotest.(check (option int)) "fifo order" (Some expect) (Spsc.try_pop ch))
    [ 2; 3; 4; 5 ];
  Alcotest.(check (option int)) "empty pops None" None (Spsc.try_pop ch);
  Alcotest.(check int) "drained" 0 (Spsc.length ch)

let test_spsc_capacity_rounding () =
  List.iter
    (fun (asked, got) -> Alcotest.(check int) "pow2 round-up" got (Spsc.capacity (Spsc.create ~capacity:asked)))
    [ (1, 1); (2, 2); (3, 4); (5, 8); (1000, 1024) ]

let test_spsc_cross_domain () =
  (* One producer domain, consumer on the main domain: order and
     content survive the domain boundary under backpressure (capacity 8
     forces constant full-channel retries). *)
  let n = 20_000 in
  let ch = Spsc.create ~capacity:8 in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          while not (Spsc.try_push ch i) do
            Domain.cpu_relax ()
          done
        done)
  in
  let got = ref 0 in
  let sum = ref 0 in
  while !got < n do
    match Spsc.try_pop ch with
    | Some v ->
        Alcotest.(check int) "in order across domains" !got v;
        sum := !sum + v;
        incr got
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  Alcotest.(check int) "nothing lost or duplicated" (n * (n - 1) / 2) !sum;
  Alcotest.(check (option int)) "channel empty at the end" None (Spsc.try_pop ch)

(* ------------------------------------------------------------------ *)
(* Windowed draining (the scheduler hook the engine relies on)         *)

let test_drain_until_horizon backend () =
  let sched = Scheduler.create ~backend () in
  let fired = ref [] in
  List.iter
    (fun t -> Scheduler.post sched ~at:t (fun () -> fired := t :: !fired))
    [ 5; 10; 15 ];
  Scheduler.drain_until_horizon sched ~horizon:10;
  (* Strictly-before semantics: the event at the horizon stays queued. *)
  Alcotest.(check (list int)) "only t<10 ran" [ 5 ] (List.rev !fired);
  Alcotest.(check int) "clock parked at horizon" 10 (Scheduler.now sched);
  Alcotest.(check int) "rest still queued" 2 (Scheduler.pending sched);
  (* Draining to the same horizon again is a no-op, and work may still
     be scheduled at the horizon itself — the cross-shard injection
     pattern. *)
  Scheduler.drain_until_horizon sched ~horizon:10;
  Scheduler.post sched ~at:10 (fun () -> fired := 99 :: !fired);
  Scheduler.drain_until_horizon sched ~horizon:16;
  (* Ties run in schedule order: the event queued before the drain
     precedes the one posted at the barrier. *)
  Alcotest.(check (list int)) "horizon event ran next window" [ 5; 10; 99; 15 ]
    (List.rev !fired);
  Alcotest.(check int) "clock at new horizon" 16 (Scheduler.now sched);
  match Scheduler.drain_until_horizon sched ~horizon:12 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "horizon before now accepted"

(* ------------------------------------------------------------------ *)
(* Topology                                                            *)

let test_topology_validate () =
  let link link_id a b : Topology.link =
    { Topology.link_id; a; b; delay = Sim_time.us 1; detection_delay = None }
  in
  let dup : Topology.t =
    {
      switches = 2;
      hosts = 0;
      links = [ link 0 (0, 1) (1, 1); link 1 (0, 1) (1, 2) ];
      attachments = [];
    }
  in
  (match Topology.validate dup with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate (switch, port) accepted");
  let out_of_range : Topology.t =
    { switches = 2; hosts = 0; links = [ link 0 (0, 1) (2, 1) ]; attachments = [] }
  in
  (match Topology.validate out_of_range with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "out-of-range switch id accepted");
  (* The builders themselves must pass their own validator. *)
  Topology.validate (Topology.ring ~switches:5 ());
  Topology.validate (Topology.fat_tree ~k:4 ())

(* Port-claim collisions only show at scale: k=16 wires 320 switches /
   2048 links, k=32 wires 1280 / 16384, and the 1024-switch ring
   stresses the skewed-delay accumulation. The validator hashes every
   (switch, port) claim, so a builder bug anywhere in the lattice
   raises. Also pins sizes so a builder regression is loud, and checks
   [Topology.ports] agrees with the quadratic [max_port]. *)
let test_topology_validate_at_scale () =
  let check ~switches ~hosts ~links topo =
    Topology.validate topo;
    Alcotest.(check int) "switches" switches topo.Topology.switches;
    Alcotest.(check int) "hosts" hosts topo.Topology.hosts;
    Alcotest.(check int) "links" links (List.length topo.Topology.links);
    let ports = Topology.ports topo in
    List.iter
      (fun sw ->
        Alcotest.(check int) "ports agrees with max_port"
          (Topology.max_port topo sw + 1)
          ports.(sw))
      [ 0; switches / 2; switches - 1 ]
  in
  (* k-ary fat tree: (k/2)^2 cores + k^2 switches in pods, k^3/4 hosts,
     core-agg k^3/4 + agg-edge k^3/4 links. *)
  check ~switches:320 ~hosts:1024 ~links:2048 (Topology.fat_tree ~k:16 ());
  check ~switches:1280 ~hosts:8192 ~links:16384 (Topology.fat_tree ~k:32 ());
  check ~switches:1024 ~hosts:1024 ~links:1024 (Topology.ring ~switches:1024 ())

(* Follow the deterministic routing function through the topology graph
   and confirm every (source, destination) pair reaches the destination
   host in a bounded number of hops. *)
let check_routing_reaches (topo : Topology.t) ~route ~max_hops =
  let port_map = Hashtbl.create 64 in
  List.iter
    (fun (l : Topology.link) ->
      Hashtbl.replace port_map l.a (`Switch l.b);
      Hashtbl.replace port_map l.b (`Switch l.a))
    topo.links;
  List.iter
    (fun (at : Topology.attachment) ->
      Hashtbl.replace port_map (at.switch, at.port) (`Host at.host))
    topo.attachments;
  List.iter
    (fun (src : Topology.attachment) ->
      for dst = 0 to topo.hosts - 1 do
        let sw = ref src.switch and hops = ref 0 and arrived = ref false in
        while not !arrived do
          incr hops;
          if !hops > max_hops then
            Alcotest.failf "host %d -> %d: no arrival after %d hops" src.host dst max_hops;
          let port = route ~sw:!sw ~dst_host:dst in
          match Hashtbl.find_opt port_map (!sw, port) with
          | Some (`Host h) ->
              Alcotest.(check int) "routed to the right host" dst h;
              arrived := true
          | Some (`Switch (sw', _)) -> sw := sw'
          | None -> Alcotest.failf "switch %d port %d is unwired" !sw port
        done
      done)
    topo.attachments

let test_fat_tree_route_reaches () =
  check_routing_reaches (Topology.fat_tree ~k:4 ()) ~route:(Topology.fat_tree_route ~k:4)
    ~max_hops:5

let test_ring_route_reaches () =
  check_routing_reaches
    (Topology.ring ~switches:5 ())
    ~route:(Topology.ring_route ~switches:5)
    ~max_hops:5

(* ------------------------------------------------------------------ *)
(* End-to-end conformance on a ring                                    *)

let addr_of_host h = Ipv4_addr.of_octets 10 0 0 h
let host_of_addr a = Ipv4_addr.to_int a land 0xff

let ring_config ?backend ?(channel_capacity = 1024) ~shards ~switches ~until () =
  let program : Program.spec =
   fun _ ->
    Program.make ~name:"ring-route"
      ~ingress:(fun ctx pkt ->
        match pkt.Packet.ip with
        | Some ip ->
            Program.Forward
              (Topology.ring_route ~switches ~sw:ctx.Program.switch_id
                 ~dst_host:(host_of_addr ip.Netcore.Ipv4.dst))
        | None -> Program.Drop)
      ()
  in
  Parsim.config ~shards ~channel_capacity ?backend ~record_trace:true ~until
    ~switch_config:(fun sw ->
      let cfg = Event_switch.default_config Arch.sume_event_switch in
      { cfg with Event_switch.seed = 42 + (31 * sw) })
    ~program:(fun _ -> program)
    ~on_shard:(fun ctx ->
      List.iter
        (fun (h, host) ->
          let dst = (h + 1) mod switches in
          let flow =
            Netcore.Flow.make ~src:(addr_of_host h) ~dst:(addr_of_host dst)
              ~proto:Netcore.Ipv4.proto_udp ~src_port:(4000 + h) ~dst_port:(5000 + dst) ()
          in
          ignore
            (Workloads.Traffic.cbr ~sched:ctx.Parsim.sched ~flow ~pkt_bytes:256
               ~rate_gbps:1. ~stop:(until - Sim_time.us 100)
               ~send:(Host.send host) ()
              : Workloads.Traffic.t))
        ctx.Parsim.hosts)
    ()

let run_ring ?backend ?channel_capacity ~shards () =
  let switches = 4 and until = Sim_time.us 250 in
  let topo = Topology.ring ~switches () in
  Parsim.run (ring_config ?backend ?channel_capacity ~shards ~switches ~until ()) topo

let check_same_run (seq : Parsim.result) (par : Parsim.result) =
  Alcotest.(check (list string)) "merged traces identical" seq.Parsim.trace par.Parsim.trace;
  Alcotest.(check string) "merged metrics identical" seq.Parsim.metrics_json
    par.Parsim.metrics_json;
  Alcotest.(check (array int)) "per-host receive counts" seq.Parsim.host_received
    par.Parsim.host_received;
  Alcotest.(check (array int)) "per-host sent counts" seq.Parsim.host_sent
    par.Parsim.host_sent

let test_ring_conformance () =
  let seq = run_ring ~shards:1 () in
  Alcotest.(check bool) "traffic flowed" true
    (Array.fold_left ( + ) 0 seq.Parsim.host_received > 0);
  Alcotest.(check bool) "trace recorded" true (seq.Parsim.trace <> []);
  List.iter
    (fun shards ->
      let par = run_ring ~shards () in
      Alcotest.(check bool) "cross-shard messages flowed" true (par.Parsim.cross_sent > 0);
      check_same_run seq par)
    [ 2; 4 ]

let test_ring_backpressure_conformance () =
  (* capacity 1 forces the full-channel retry + self-drain path on
     essentially every cross-shard send; the result must not change. *)
  let seq = run_ring ~shards:1 () in
  let par = run_ring ~shards:2 ~channel_capacity:1 () in
  Alcotest.(check bool) "cross-shard messages flowed" true (par.Parsim.cross_sent > 0);
  check_same_run seq par

let test_ring_backend_agnostic () =
  (* Same sharded run under both queue backends: byte-identical. *)
  let wheel = run_ring ~backend:Sched_backend.Wheel ~shards:2 () in
  let heap = run_ring ~backend:Sched_backend.Heap ~shards:2 () in
  check_same_run wheel heap

let suite =
  [
    Alcotest.test_case "partition: every switch exactly once" `Quick test_partition_exactly_once;
    Alcotest.test_case "partition: bad shard counts raise" `Quick test_partition_bad_counts;
    Alcotest.test_case "plan: link coverage + channels" `Quick test_plan_link_coverage;
    Alcotest.test_case "plan: single shard" `Quick test_plan_single_shard;
    Alcotest.test_case "partition: skewed weights never empty" `Quick
      test_partition_skewed_weights;
    QCheck_alcotest.to_alcotest qcheck_partition_never_empty;
    Alcotest.test_case "horizon: safe bound" `Quick test_horizon_safe;
    Alcotest.test_case "horizon: window tiling" `Quick test_horizon_tiling;
    Alcotest.test_case "horizon: adaptive bound" `Quick test_adaptive_bound;
    QCheck_alcotest.to_alcotest qcheck_horizon_tiling;
    QCheck_alcotest.to_alcotest qcheck_adaptive_safety;
    Alcotest.test_case "spsc: fifo + backpressure" `Quick test_spsc_fifo_and_backpressure;
    Alcotest.test_case "spsc: capacity rounding" `Quick test_spsc_capacity_rounding;
    Alcotest.test_case "spsc: cross-domain stress" `Quick test_spsc_cross_domain;
    Alcotest.test_case "drain_until_horizon (heap)" `Quick
      (test_drain_until_horizon Sched_backend.Heap);
    Alcotest.test_case "drain_until_horizon (wheel)" `Quick
      (test_drain_until_horizon Sched_backend.Wheel);
    Alcotest.test_case "topology: validate" `Quick test_topology_validate;
    Alcotest.test_case "topology: validate at scale (k=16/k=32/ring-1024)" `Quick
      test_topology_validate_at_scale;
    Alcotest.test_case "fat-tree routing reaches destination" `Quick test_fat_tree_route_reaches;
    Alcotest.test_case "ring routing reaches destination" `Quick test_ring_route_reaches;
    Alcotest.test_case "ring: sharded = sequential" `Quick test_ring_conformance;
    Alcotest.test_case "ring: backpressure conformance" `Quick test_ring_backpressure_conformance;
    Alcotest.test_case "ring: backend agnostic" `Quick test_ring_backend_agnostic;
  ]
