(* Tests for the resilience layer: supervised handler execution
   (policies, quarantine/backoff, watchdog, fault-injection hooks),
   graceful event shedding, the runtime invariant checker, and their
   integration into the event switch. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Packet = Netcore.Packet
module Event = Devents.Event
module Arch = Evcore.Arch
module Program = Evcore.Program
module Event_switch = Evcore.Event_switch
module Policy = Resil.Policy
module Supervisor = Resil.Supervisor
module Shedder = Resil.Shedder
module Invariants = Resil.Invariants

let config ?(policy = Policy.Quarantine) ?(max_trips = 8) ?(base_backoff = Sim_time.us 50)
    ?(max_backoff = Sim_time.ms 1) ?(backoff_jitter = 0) ?(budget = 0) () =
  { Supervisor.policy; max_trips; base_backoff; max_backoff; backoff_jitter; budget }

let crash () = failwith "boom"

let mk_packet () =
  Packet.udp_packet
    ~src:(Netcore.Ipv4_addr.host ~subnet:1 1)
    ~dst:(Netcore.Ipv4_addr.host ~subnet:1 2)
    ~src_port:1000 ~dst_port:2000 ~payload_len:86 ()

(* --- policy --- *)

let test_policy_round_trip () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Policy.to_string p ^ " round-trips")
        true
        (Policy.of_string (Policy.to_string p) = Some p))
    Policy.all;
  Alcotest.(check bool) "off aliases fail-fast" true (Policy.of_string "off" = Some Policy.Fail_fast);
  Alcotest.(check bool) "drop aliases drop-event" true
    (Policy.of_string "drop" = Some Policy.Drop_event);
  Alcotest.(check bool) "unknown rejected" true (Policy.of_string "nope" = None)

(* --- supervisor: policies --- *)

let test_fail_fast_raises () =
  let sched = Scheduler.create () in
  let sup = Supervisor.create ~sched ~config:(config ~policy:Policy.Fail_fast ()) ~seed:1 () in
  let key = Supervisor.register sup ~name:"h" () in
  (match Supervisor.protect sup key crash with
  | _ -> Alcotest.fail "expected Failed"
  | exception Supervisor.Failed (name, Failure _) ->
      Alcotest.(check string) "names the handler" "h" name);
  Alcotest.(check int) "crash counted" 1 (Supervisor.crashes sup);
  Alcotest.(check bool) "fail-fast does not quarantine" true (Supervisor.active key)

let test_drop_event_absorbs () =
  let sched = Scheduler.create () in
  let sup = Supervisor.create ~sched ~config:(config ~policy:Policy.Drop_event ()) ~seed:1 () in
  let key = Supervisor.register sup ~name:"h" () in
  Alcotest.(check bool) "failed invocation reports false" false (Supervisor.protect sup key crash);
  Alcotest.(check bool) "clean invocation reports true" true
    (Supervisor.protect sup key (fun () -> ()));
  Alcotest.(check bool) "handler stays active" true (Supervisor.active key);
  Alcotest.(check int) "one event dropped" 1 (Supervisor.dropped sup);
  Alcotest.(check int) "no trips" 0 (Supervisor.trips sup)

let test_quarantine_lifecycle () =
  let sched = Scheduler.create () in
  let sup =
    Supervisor.create ~sched ~config:(config ~base_backoff:(Sim_time.us 20) ()) ~seed:1 ()
  in
  let disabled = ref [] and enabled = ref [] in
  let key =
    Supervisor.register sup ~name:"h"
      ~on_disable:(fun () -> disabled := Scheduler.now sched :: !disabled)
      ~on_enable:(fun () -> enabled := Scheduler.now sched :: !enabled)
      ()
  in
  ignore (Supervisor.protect sup key crash);
  Alcotest.(check bool) "inactive immediately after the trip" false (Supervisor.active key);
  Alcotest.(check int) "quarantined count" 1 (Supervisor.quarantined sup);
  (* Guarded calls while quarantined are dropped without running. *)
  let ran = ref false in
  Alcotest.(check bool) "call while quarantined refused" false
    (Supervisor.protect sup key (fun () -> ran := true));
  Alcotest.(check bool) "body did not run" false !ran;
  Scheduler.run sched;
  Alcotest.(check bool) "re-enabled after backoff" true (Supervisor.active key);
  Alcotest.(check (list int)) "on_disable at trip time" [ 0 ] !disabled;
  Alcotest.(check (list int)) "on_enable at backoff expiry" [ Sim_time.us 20 ] !enabled;
  Alcotest.(check int) "one trip" 1 (Supervisor.trips sup);
  Alcotest.(check int) "one recovery" 1 (Supervisor.recoveries sup);
  Alcotest.(check int) "dropped: the crash plus the refused call" 2 (Supervisor.dropped sup)

let test_backoff_growth_and_cap () =
  let sched = Scheduler.create () in
  let cfg = config ~base_backoff:(Sim_time.us 10) ~max_backoff:(Sim_time.us 40) ~max_trips:20 () in
  let sup = Supervisor.create ~sched ~config:cfg ~seed:1 () in
  let enables = ref [] in
  let key_ref = ref None in
  let remaining = ref 4 in
  let on_enable () =
    enables := Scheduler.now sched :: !enables;
    if !remaining > 0 then begin
      decr remaining;
      ignore (Supervisor.protect sup (Option.get !key_ref) crash)
    end
  in
  let key = Supervisor.register sup ~name:"h" ~on_enable () in
  key_ref := Some key;
  ignore (Supervisor.protect sup key crash);
  Scheduler.run sched;
  (* Delays 10, 20, 40, then capped at 40. *)
  Alcotest.(check (list int))
    "exponential growth up to the cap"
    [ Sim_time.us 10; Sim_time.us 30; Sim_time.us 70; Sim_time.us 110; Sim_time.us 150 ]
    (List.rev !enables);
  Alcotest.(check int) "five trips" 5 (Supervisor.trips sup);
  Alcotest.(check int) "five recoveries" 5 (Supervisor.recoveries sup)

let test_backoff_jitter_deterministic () =
  let timeline seed =
    let sched = Scheduler.create () in
    let cfg =
      config ~base_backoff:(Sim_time.us 10) ~backoff_jitter:(Sim_time.us 30) ~max_trips:20 ()
    in
    let sup = Supervisor.create ~sched ~config:cfg ~seed () in
    let enables = ref [] in
    let key_ref = ref None in
    let remaining = ref 3 in
    let on_enable () =
      enables := Scheduler.now sched :: !enables;
      if !remaining > 0 then begin
        decr remaining;
        ignore (Supervisor.protect sup (Option.get !key_ref) crash)
      end
    in
    let key = Supervisor.register sup ~name:"h" ~on_enable () in
    key_ref := Some key;
    ignore (Supervisor.protect sup key crash);
    Scheduler.run sched;
    List.rev !enables
  in
  let a = timeline 7 and b = timeline 7 and c = timeline 8 in
  Alcotest.(check (list int)) "same seed, same jittered backoffs" a b;
  Alcotest.(check bool) "different seed diverges" true (a <> c);
  List.iteri
    (fun i t ->
      let prev = if i = 0 then 0 else List.nth a (i - 1) in
      let gap = t - prev in
      let nominal = Sim_time.us 10 * (1 lsl i) in
      Alcotest.(check bool) "gap within [backoff, backoff + jitter]" true
        (gap >= nominal && gap <= nominal + Sim_time.us 30))
    a

let test_max_trips_permanent () =
  let sched = Scheduler.create () in
  let cfg = config ~base_backoff:(Sim_time.us 10) ~max_trips:2 () in
  let sup = Supervisor.create ~sched ~config:cfg ~seed:1 () in
  let key_ref = ref None in
  let on_enable () = ignore (Supervisor.protect sup (Option.get !key_ref) crash) in
  let key = Supervisor.register sup ~name:"h" ~on_enable () in
  key_ref := Some key;
  ignore (Supervisor.protect sup key crash);
  Scheduler.run sched;
  Alcotest.(check bool) "permanently failed" true (Supervisor.permanently_failed key);
  Alcotest.(check bool) "inactive" false (Supervisor.active key);
  Alcotest.(check int) "two trips" 2 (Supervisor.trips sup);
  Alcotest.(check int) "one recovery (before the final trip)" 1 (Supervisor.recoveries sup);
  Alcotest.(check int) "one permanent failure" 1 (Supervisor.permanent_failures sup)

(* --- supervisor: watchdog + injection hooks --- *)

let test_watchdog_budget () =
  let sched = Scheduler.create () in
  let cfg = config ~budget:100 ~base_backoff:(Sim_time.us 10) () in
  let sup = Supervisor.create ~sched ~config:cfg ~seed:1 () in
  let key = Supervisor.register sup ~name:"w" () in
  let finished = ref false in
  let ok =
    Supervisor.protect sup key (fun () ->
        Supervisor.consume sup 60;
        Supervisor.consume sup 60;
        finished := true)
  in
  Alcotest.(check bool) "over-budget invocation trapped" false ok;
  Alcotest.(check bool) "body interrupted at the budget" false !finished;
  Alcotest.(check int) "watchdog trip counted" 1 (Supervisor.watchdog_trips sup);
  Alcotest.(check bool) "quarantined by the watchdog" false (Supervisor.active key);
  Scheduler.run sched;
  Alcotest.(check bool) "within-budget invocation fine" true
    (Supervisor.protect sup key (fun () -> Supervisor.consume sup 100))

let test_injection_hooks () =
  let sched = Scheduler.create () in
  let sup = Supervisor.create ~sched ~config:(config ~policy:Policy.Drop_event ~budget:100 ()) ~seed:1 () in
  let key = Supervisor.register sup ~name:"h" () in
  Supervisor.inject_crash key ~n:2;
  let ran = ref 0 in
  let call () = Supervisor.protect sup key (fun () -> incr ran) in
  Alcotest.(check bool) "armed crash 1" false (call ());
  Alcotest.(check bool) "armed crash 2" false (call ());
  Alcotest.(check bool) "disarmed" true (call ());
  Alcotest.(check int) "body ran only once" 1 !ran;
  Alcotest.(check int) "two injected crashes" 2 (Supervisor.key_crashes key);
  Supervisor.inject_slowdown key ~steps:1_000 ~n:1;
  Alcotest.(check bool) "slowdown busts the budget" false (call ());
  Alcotest.(check int) "slowdown trips the watchdog" 1 (Supervisor.watchdog_trips sup);
  Alcotest.(check bool) "next invocation clean" true (call ());
  Alcotest.(check int) "bodies ran twice total" 2 !ran

let test_nested_guards () =
  let sched = Scheduler.create () in
  let sup = Supervisor.create ~sched ~config:(config ~budget:100 ()) ~seed:1 () in
  let outer = Supervisor.register sup ~name:"outer" () in
  let inner = Supervisor.register sup ~name:"inner" () in
  let ok =
    Supervisor.protect sup outer (fun () ->
        Supervisor.consume sup 50;
        (* The inner guard crashes; the outer one must keep its own
           identity and remaining budget. *)
        Alcotest.(check bool) "inner crash trapped" false (Supervisor.protect sup inner crash);
        Supervisor.consume sup 50)
  in
  Alcotest.(check bool) "outer invocation survives" true ok;
  Alcotest.(check bool) "outer key untouched" true (Supervisor.active outer);
  Alcotest.(check int) "crash attributed to the inner key" 1 (Supervisor.key_crashes inner);
  Alcotest.(check int) "no crash on the outer key" 0 (Supervisor.key_crashes outer)

(* --- shedder --- *)

let mk_shedder () =
  Shedder.create
    ~config:
      {
        Shedder.tiers =
          [
            { Shedder.name = "telemetry"; classes = [ 4; 5 ]; high = 4; low = 2 };
            { Shedder.name = "control"; classes = [ 9 ]; high = 8; low = 4 };
          ];
      }
    ()

let test_shedder_tiers_and_hysteresis () =
  let s = mk_shedder () in
  Alcotest.(check bool) "below watermark: nothing shed" false (Shedder.offer s ~depth:3 ~cls:4);
  Alcotest.(check bool) "telemetry sheds at its high" true (Shedder.offer s ~depth:4 ~cls:4);
  Alcotest.(check bool) "control not yet" false (Shedder.offer s ~depth:4 ~cls:9);
  Alcotest.(check bool) "unlisted class never shed" false (Shedder.offer s ~depth:4 ~cls:0);
  Alcotest.(check int) "one tier active" 1 (Shedder.level s);
  Alcotest.(check bool) "control sheds at 2x" true (Shedder.offer s ~depth:8 ~cls:9);
  Alcotest.(check int) "both tiers active" 2 (Shedder.level s);
  (* Hysteresis: above low the tier keeps shedding... *)
  Alcotest.(check bool) "telemetry still shedding at depth 3" true (Shedder.offer s ~depth:3 ~cls:4);
  Alcotest.(check int) "control recovered below its low" 1 (Shedder.level s);
  (* ...and recovers only below it. *)
  Alcotest.(check bool) "telemetry recovers below low" false (Shedder.offer s ~depth:1 ~cls:4);
  Alcotest.(check int) "all tiers recovered" 0 (Shedder.level s);
  Alcotest.(check int) "three events shed in total" 3 (Shedder.shed_total s);
  match Shedder.tier_stats s with
  | [ ("telemetry", t_act, t_shed); ("control", c_act, c_shed) ] ->
      Alcotest.(check (pair int int)) "telemetry stats" (1, 2) (t_act, t_shed);
      Alcotest.(check (pair int int)) "control stats" (1, 1) (c_act, c_shed)
  | _ -> Alcotest.fail "expected two tiers in order"

let test_shedder_validation () =
  let mk tiers = ignore (Shedder.create ~config:{ Shedder.tiers } ()) in
  let expect_invalid name tiers =
    match mk tiers with
    | () -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "descending watermarks"
    [
      { Shedder.name = "a"; classes = [ 1 ]; high = 8; low = 4 };
      { Shedder.name = "b"; classes = [ 2 ]; high = 4; low = 2 };
    ];
  expect_invalid "low >= high" [ { Shedder.name = "a"; classes = [ 1 ]; high = 4; low = 4 } ];
  expect_invalid "overlapping classes"
    [
      { Shedder.name = "a"; classes = [ 1 ]; high = 4; low = 2 };
      { Shedder.name = "b"; classes = [ 1 ]; high = 8; low = 4 };
    ]

let test_merger_shed_config_ladder () =
  let s = Shedder.create ~config:(Devents.Event_merger.shed_config ~watermark:3) () in
  let ix cls = Event.cls_index cls in
  Alcotest.(check bool) "telemetry sheds at w" true
    (Shedder.offer s ~depth:3 ~cls:(ix Event.Packet_transmitted));
  Alcotest.(check bool) "control holds at w" false
    (Shedder.offer s ~depth:3 ~cls:(ix Event.Timer_expiration));
  Alcotest.(check bool) "control sheds at 2w" true
    (Shedder.offer s ~depth:6 ~cls:(ix Event.Timer_expiration));
  Alcotest.(check bool) "packets hold at 2w" false
    (Shedder.offer s ~depth:6 ~cls:(ix Event.Ingress_packet));
  Alcotest.(check bool) "packets shed at 4w" true
    (Shedder.offer s ~depth:12 ~cls:(ix Event.Ingress_packet));
  (* Overflow and link-status events surface the very conditions
     degradation must report: never shed, whatever the depth. *)
  Alcotest.(check bool) "overflow never shed" false
    (Shedder.offer s ~depth:1000 ~cls:(ix Event.Buffer_overflow));
  Alcotest.(check bool) "link-change never shed" false
    (Shedder.offer s ~depth:1000 ~cls:(ix Event.Link_status_change))

(* --- invariant checker --- *)

let test_invariants_record () =
  let sched = Scheduler.create () in
  let inv = Invariants.create ~sched ~period:(Sim_time.us 10) () in
  let bad = ref false in
  Invariants.add inv ~name:"ok" (fun () -> None);
  Invariants.add inv ~name:"gauge" (fun () -> if !bad then Some "broken" else None);
  Invariants.start inv ~stop:(Sim_time.us 100);
  ignore (Scheduler.schedule sched ~at:(Sim_time.us 55) (fun () -> bad := true));
  Scheduler.run sched;
  Alcotest.(check int) "ten sweeps" 10 (Invariants.passes inv);
  Alcotest.(check int) "two checks per sweep" 20 (Invariants.checks_run inv);
  Alcotest.(check int) "violations once the state breaks" 5 (Invariants.violations inv);
  Alcotest.(check (list (pair string int)))
    "per-check attribution"
    [ ("ok", 0); ("gauge", 5) ]
    (Invariants.check_stats inv);
  match Invariants.violation_log inv with
  | (at, "gauge", "broken") :: _ -> Alcotest.(check int) "first violation at 60us" (Sim_time.us 60) at
  | _ -> Alcotest.fail "expected a logged violation"

let test_invariants_abort_and_crashing_check () =
  let sched = Scheduler.create () in
  let inv = Invariants.create ~sched ~policy:Invariants.Abort () in
  Invariants.add inv ~name:"always-bad" (fun () -> Some "nope");
  (match Invariants.run_once inv with
  | _ -> Alcotest.fail "expected Violation"
  | exception Invariants.Violation ("always-bad", "nope") -> ());
  (* A crashing check is a violation of its own contract, recorded under
     [Record] rather than killing the checker. *)
  let inv = Invariants.create ~sched () in
  Invariants.add inv ~name:"crashy" (fun () -> failwith "kaboom");
  Alcotest.(check int) "crash recorded as violation" 1 (Invariants.run_once inv);
  Alcotest.(check int) "checker survives" 1 (Invariants.violations inv)

(* --- event-switch integration --- *)

let test_switch_quarantine_and_recovery () =
  let sched = Scheduler.create () in
  let crashing = ref true in
  let program _ctx =
    Program.make ~name:"crashy"
      ~ingress:(fun _ctx _pkt -> Program.Forward 1)
      ~enqueue:(fun _ctx _ev -> if !crashing then failwith "enqueue boom")
      ()
  in
  let sw_config =
    let base = Event_switch.default_config Arch.event_pisa_full in
    {
      base with
      Event_switch.resil = config ~base_backoff:(Sim_time.us 20) ~budget:100_000 ();
    }
  in
  let sw = Event_switch.create ~sched ~config:sw_config ~program () in
  Event_switch.set_port_tx sw ~port:1 (fun _ -> ());
  for i = 0 to 9 do
    ignore
      (Scheduler.schedule sched ~at:(Sim_time.us i) (fun () ->
           Event_switch.inject sw ~port:0 (mk_packet ())))
  done;
  ignore (Scheduler.schedule sched ~at:(Sim_time.us 15) (fun () -> crashing := false));
  for i = 0 to 4 do
    ignore
      (Scheduler.schedule sched
         ~at:(Sim_time.us 50 + Sim_time.us i)
         (fun () -> Event_switch.inject sw ~port:0 (mk_packet ())))
  done;
  Scheduler.run sched;
  let sup = Event_switch.supervisor sw in
  let key = Event_switch.handler_key sw Event.Buffer_enqueue in
  Alcotest.(check int) "one trip" 1 (Supervisor.trips sup);
  Alcotest.(check int) "one backoff recovery" 1 (Supervisor.recoveries sup);
  Alcotest.(check bool) "handler re-subscribed" true (Supervisor.active key);
  Alcotest.(check string) "key named after the class" "buffer-enqueue" (Supervisor.key_name key);
  (* Quarantine drops the subscription, so only post-recovery enqueue
     events are delivered — and all of them complete. *)
  Alcotest.(check int) "post-recovery events handled" 5
    (Event_switch.handled sw Event.Buffer_enqueue);
  (* Packets themselves were never supervised-dropped: only the
     metadata handler tripped. *)
  Alcotest.(check int) "no packet decisions lost" 0 (Event_switch.supervised_drops sw);
  let m = Obs.Metrics.create () in
  Event_switch.export_metrics sw m;
  (match Obs.Metrics.find_value m ~labels:[ ("switch", "0") ] "resil.trips" with
  | Some (Obs.Metrics.Counter_v n) -> Alcotest.(check int) "resil.trips exported" 1 n
  | _ -> Alcotest.fail "resil.trips series missing");
  match
    Obs.Metrics.find_value m
      ~labels:[ ("handler", "buffer-enqueue"); ("switch", "0") ]
      "resil.handler.trips"
  with
  | Some (Obs.Metrics.Counter_v n) -> Alcotest.(check int) "per-handler trips exported" 1 n
  | _ -> Alcotest.fail "resil.handler.trips series missing"

let test_switch_packet_handler_quarantine_accounts_drops () =
  (* A crashing ingress handler: the packet in the pipeline has no
     decision, so it must be accounted as a supervised drop and further
     packets dropped while the handler is quarantined. *)
  let sched = Scheduler.create () in
  let program _ctx =
    Program.make ~name:"crashy-ingress" ~ingress:(fun _ctx _pkt -> failwith "ingress boom") ()
  in
  let sw_config =
    let base = Event_switch.default_config Arch.event_pisa_full in
    { base with Event_switch.resil = config ~base_backoff:(Sim_time.ms 10) () }
  in
  let sw = Event_switch.create ~sched ~config:sw_config ~program () in
  for i = 0 to 4 do
    ignore
      (Scheduler.schedule sched ~at:(Sim_time.us i) (fun () ->
           Event_switch.inject sw ~port:0 (mk_packet ())))
  done;
  Scheduler.run sched;
  let sup = Event_switch.supervisor sw in
  Alcotest.(check int) "one crash, then quarantined" 1 (Supervisor.crashes sup);
  Alcotest.(check int) "every packet accounted as a supervised drop" 5
    (Event_switch.supervised_drops sw);
  Alcotest.(check int) "none counted handled" 0 (Event_switch.handled sw Event.Ingress_packet)

let test_switch_shed_watermark_installs_shedder () =
  let sched = Scheduler.create () in
  let base = Event_switch.default_config Arch.event_pisa_full in
  let sw =
    Event_switch.create ~sched
      ~config:{ base with Event_switch.shed_watermark = Some 4 }
      ~program:(Program.forward_all ~name:"fwd" ~out_port:1)
      ()
  in
  Alcotest.(check bool) "shedder installed" true
    (Devents.Event_merger.shedder (Event_switch.merger sw) <> None);
  let sw2 = Event_switch.create ~sched ~config:base ~program:(Program.forward_all ~name:"fwd" ~out_port:1) () in
  Alcotest.(check bool) "no shedder by default" true
    (Devents.Event_merger.shedder (Event_switch.merger sw2) = None)

let suite =
  [
    Alcotest.test_case "policy round-trip" `Quick test_policy_round_trip;
    Alcotest.test_case "fail-fast raises" `Quick test_fail_fast_raises;
    Alcotest.test_case "drop-event absorbs" `Quick test_drop_event_absorbs;
    Alcotest.test_case "quarantine lifecycle" `Quick test_quarantine_lifecycle;
    Alcotest.test_case "backoff growth + cap" `Quick test_backoff_growth_and_cap;
    Alcotest.test_case "backoff jitter deterministic" `Quick test_backoff_jitter_deterministic;
    Alcotest.test_case "max trips -> permanent" `Quick test_max_trips_permanent;
    Alcotest.test_case "watchdog budget" `Quick test_watchdog_budget;
    Alcotest.test_case "injection hooks" `Quick test_injection_hooks;
    Alcotest.test_case "nested guards" `Quick test_nested_guards;
    Alcotest.test_case "shedder tiers + hysteresis" `Quick test_shedder_tiers_and_hysteresis;
    Alcotest.test_case "shedder validation" `Quick test_shedder_validation;
    Alcotest.test_case "merger shed ladder" `Quick test_merger_shed_config_ladder;
    Alcotest.test_case "invariants record" `Quick test_invariants_record;
    Alcotest.test_case "invariants abort + crashing check" `Quick
      test_invariants_abort_and_crashing_check;
    Alcotest.test_case "switch quarantine + recovery" `Quick test_switch_quarantine_and_recovery;
    Alcotest.test_case "switch packet-handler quarantine" `Quick
      test_switch_packet_handler_quarantine_accounts_drops;
    Alcotest.test_case "switch shed-watermark install" `Quick
      test_switch_shed_watermark_installs_shedder;
  ]
