(* Tests for the traffic manager, queues, PIFO and links. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Packet = Netcore.Packet
module Event = Devents.Event
module Buffer_pool = Tmgr.Buffer_pool
module Fifo_queue = Tmgr.Fifo_queue
module Pifo = Tmgr.Pifo
module Traffic_manager = Tmgr.Traffic_manager
module Link = Tmgr.Link

let mk_pkt ?(bytes = 100) ?(qid = 0) ?(priority = 0) () =
  let pkt =
    Packet.udp_packet
      ~src:(Netcore.Ipv4_addr.of_string "10.0.0.1")
      ~dst:(Netcore.Ipv4_addr.of_string "10.0.0.2")
      ~src_port:1 ~dst_port:2
      ~payload_len:(max 0 (bytes - 42))
      ()
  in
  pkt.Packet.meta.Packet.qid <- qid;
  pkt.Packet.meta.Packet.priority <- priority;
  pkt

let test_buffer_pool () =
  let p = Buffer_pool.create ~capacity_bytes:1000 in
  Alcotest.(check bool) "alloc ok" true (Buffer_pool.try_alloc p 600);
  Alcotest.(check bool) "overflow rejected" false (Buffer_pool.try_alloc p 600);
  Buffer_pool.free p 600;
  Alcotest.(check bool) "after free ok" true (Buffer_pool.try_alloc p 600);
  Alcotest.(check int) "watermark" 600 (Buffer_pool.high_watermark p);
  Alcotest.(check int) "failed allocs" 1 (Buffer_pool.failed_allocs p)

let test_fifo_queue () =
  let q = Fifo_queue.create ~limit_bytes:250 () in
  let a = mk_pkt ~bytes:100 () and b = mk_pkt ~bytes:100 () in
  Alcotest.(check bool) "accepts" true (Fifo_queue.can_accept q 100);
  Fifo_queue.push q a;
  Fifo_queue.push q b;
  Alcotest.(check bool) "limit enforced" false (Fifo_queue.can_accept q 100);
  Alcotest.(check int) "bytes" 200 (Fifo_queue.occupancy_bytes q);
  (match Fifo_queue.pop q with
  | Some p -> Alcotest.(check int) "fifo order" a.Packet.uid p.Packet.uid
  | None -> Alcotest.fail "pop");
  Alcotest.(check int) "bytes after pop" 100 (Fifo_queue.occupancy_bytes q)

let test_pifo_ordering () =
  let p = Pifo.create () in
  ignore (Pifo.push p ~rank:5 "e");
  ignore (Pifo.push p ~rank:1 "a");
  ignore (Pifo.push p ~rank:3 "c");
  ignore (Pifo.push p ~rank:1 "b") (* equal rank: FIFO after "a" *);
  let order = List.init 4 (fun _ -> Option.get (Pifo.pop p)) in
  Alcotest.(check (list string)) "rank order, FIFO ties" [ "a"; "b"; "c"; "e" ] order

let qcheck_pifo_sorted =
  QCheck.Test.make ~name:"pifo pops in nondecreasing rank order" ~count:200
    QCheck.(list (int_bound 1000))
    (fun ranks ->
      let p = Pifo.create () in
      List.iter (fun r -> ignore (Pifo.push p ~rank:r r)) ranks;
      let rec drain last =
        match Pifo.pop p with None -> true | Some r -> r >= last && drain r
      in
      drain min_int)

let test_pifo_bounded_eviction () =
  let p = Pifo.create ~capacity:2 () in
  ignore (Pifo.push p ~rank:10 "j");
  ignore (Pifo.push p ~rank:20 "t");
  (match Pifo.push_evict p ~rank:5 "e" with
  | `Evicted "t" -> ()
  | `Evicted _ | `Accepted | `Rejected -> Alcotest.fail "expected eviction of worst");
  (match Pifo.push_evict p ~rank:30 "z" with
  | `Rejected -> ()
  | `Evicted _ | `Accepted -> Alcotest.fail "expected rejection");
  Alcotest.(check int) "evictions counted" 2 (Pifo.evictions p);
  Alcotest.(check (list string)) "contents" [ "e"; "j" ]
    (List.init 2 (fun _ -> Option.get (Pifo.pop p)))

let test_pifo_releases_payloads () =
  (* Regression: vacated heap slots (and the spare slots [grow] leaves
     above [len]) used to keep their last entry reachable, pinning
     packets for the life of the PIFO.  A popped payload with no outside
     reference must be collectable immediately. *)
  let p = Pifo.create () in
  let weak = Weak.create 1 in
  (* Force at least one grow (fresh capacity is 16). *)
  for i = 0 to 40 do
    ignore (Pifo.push p ~rank:i (Bytes.create 64))
  done;
  let tracked = Bytes.create 64 in
  Weak.set weak 0 (Some tracked);
  ignore (Pifo.push p ~rank:1000 tracked);
  while not (Pifo.is_empty p) do
    ignore (Pifo.pop p)
  done;
  Gc.full_major ();
  Alcotest.(check bool) "popped payload collected" false (Weak.check weak 0)

let test_pifo_grow_no_pin () =
  (* The single-element case: push one entry (grow fills 16 slots), pop
     it, and the payload must not stay pinned by the spare slots. *)
  let p = Pifo.create () in
  let weak = Weak.create 1 in
  let payload = Bytes.create 64 in
  Weak.set weak 0 (Some payload);
  ignore (Pifo.push p ~rank:1 payload);
  ignore (Pifo.pop p);
  Gc.full_major ();
  Alcotest.(check bool) "grow spare slots hold no payload" false (Weak.check weak 0)

let tm_fixture ?(config = Traffic_manager.default_config) () =
  let sched = Scheduler.create () in
  let emitted = ref [] in
  let events = ref [] in
  let tm =
    Traffic_manager.create ~sched ~config
      ~emit:(fun ~port pkt -> emitted := (port, pkt) :: !emitted)
      ~events:(Devents.Event_sink.of_fn (fun ev -> events := ev :: !events))
      ()
  in
  (sched, tm, emitted, events)

let count_events events cls =
  List.length
    (List.filter (fun ev -> Event.cls_equal (Event.cls_of ev) cls) !events)

let test_tm_basic_flow () =
  let sched, tm, emitted, events = tm_fixture () in
  ignore (Traffic_manager.enqueue tm ~port:1 (mk_pkt ~bytes:100 ()));
  Scheduler.run sched;
  Alcotest.(check int) "emitted" 1 (List.length !emitted);
  Alcotest.(check int) "enqueue events" 1 (count_events events Event.Buffer_enqueue);
  Alcotest.(check int) "dequeue events" 1 (count_events events Event.Buffer_dequeue);
  Alcotest.(check int) "underflow (emptied)" 1 (count_events events Event.Buffer_underflow);
  Alcotest.(check int) "transmit events" 1 (count_events events Event.Packet_transmitted);
  (* 100B at 10G = 80ns serialization. *)
  Alcotest.(check int) "serialization delay" (Sim_time.tx_time ~bytes:100 ~gbps:10.)
    (Scheduler.now sched)

let test_tm_serialisation_backlog () =
  let sched, tm, emitted, _events = tm_fixture () in
  (* Two packets at once: second finishes after 2x tx time. *)
  ignore (Traffic_manager.enqueue tm ~port:0 (mk_pkt ~bytes:1000 ()));
  ignore (Traffic_manager.enqueue tm ~port:0 (mk_pkt ~bytes:1000 ()));
  Scheduler.run sched;
  Alcotest.(check int) "both sent" 2 (List.length !emitted);
  Alcotest.(check int) "back to back" (2 * Sim_time.tx_time ~bytes:1000 ~gbps:10.)
    (Scheduler.now sched)

let test_tm_overflow () =
  let config = { Traffic_manager.default_config with Traffic_manager.buffer_bytes = 150 } in
  let sched, tm, _emitted, events = tm_fixture ~config () in
  (* The first packet dequeues to the port immediately (freeing its
     pool bytes); the second waits in the queue; the third overflows. *)
  Alcotest.(check bool) "first fits" true (Traffic_manager.enqueue tm ~port:0 (mk_pkt ~bytes:100 ()));
  Alcotest.(check bool) "second queues" true
    (Traffic_manager.enqueue tm ~port:0 (mk_pkt ~bytes:100 ()));
  Alcotest.(check bool) "third dropped" false
    (Traffic_manager.enqueue tm ~port:0 (mk_pkt ~bytes:100 ()));
  Scheduler.run sched;
  Alcotest.(check int) "overflow event" 1 (count_events events Event.Buffer_overflow);
  Alcotest.(check int) "drop counted" 1 (Traffic_manager.drops tm)

let test_tm_strict_priority () =
  let config =
    {
      Traffic_manager.default_config with
      Traffic_manager.queues_per_port = 2;
      policy = Traffic_manager.Strict_priority;
    }
  in
  let sched, tm, emitted, _events = tm_fixture ~config () in
  (* While a low-priority packet serialises, queue one low and one high:
     high (qid 0) must leave before the earlier-queued low (qid 1). *)
  ignore (Traffic_manager.enqueue tm ~port:0 (mk_pkt ~bytes:1000 ~qid:1 ()));
  let low = mk_pkt ~bytes:100 ~qid:1 () in
  let high = mk_pkt ~bytes:100 ~qid:0 () in
  ignore (Traffic_manager.enqueue tm ~port:0 low);
  ignore (Traffic_manager.enqueue tm ~port:0 high);
  Scheduler.run sched;
  match List.rev_map snd !emitted with
  | [ _first; second; third ] ->
      Alcotest.(check int) "high before low" high.Packet.uid second.Packet.uid;
      Alcotest.(check int) "low last" low.Packet.uid third.Packet.uid
  | l -> Alcotest.failf "expected 3 packets, got %d" (List.length l)

let test_tm_pifo_policy () =
  let config =
    { Traffic_manager.default_config with Traffic_manager.policy = Traffic_manager.Pifo_sched }
  in
  let sched, tm, emitted, _events = tm_fixture ~config () in
  ignore (Traffic_manager.enqueue tm ~port:0 (mk_pkt ~bytes:1000 ~priority:0 ()));
  let late_but_urgent = mk_pkt ~bytes:100 ~priority:1 () in
  let early_but_lazy = mk_pkt ~bytes:100 ~priority:9 () in
  ignore (Traffic_manager.enqueue tm ~port:0 early_but_lazy);
  ignore (Traffic_manager.enqueue tm ~port:0 late_but_urgent);
  Scheduler.run sched;
  match List.rev_map snd !emitted with
  | [ _first; second; third ] ->
      Alcotest.(check int) "rank order" late_but_urgent.Packet.uid second.Packet.uid;
      Alcotest.(check int) "lazy last" early_but_lazy.Packet.uid third.Packet.uid
  | l -> Alcotest.failf "expected 3 packets, got %d" (List.length l)

let test_tm_egress_drop () =
  let sched = Scheduler.create () in
  let emitted = ref 0 in
  let tm =
    Traffic_manager.create ~sched ~config:Traffic_manager.default_config
      ~emit:(fun ~port:_ _ -> incr emitted)
      ~events:(Devents.Event_sink.of_fn (fun _ -> ()))
      ~egress:(fun ~port:_ pkt -> if Packet.len pkt > 500 then None else Some pkt)
      ()
  in
  ignore (Traffic_manager.enqueue tm ~port:0 (mk_pkt ~bytes:1000 ()));
  ignore (Traffic_manager.enqueue tm ~port:0 (mk_pkt ~bytes:100 ()));
  Scheduler.run sched;
  Alcotest.(check int) "only small emitted" 1 !emitted;
  Alcotest.(check int) "egress drop counted" 1 (Traffic_manager.egress_drops tm);
  Alcotest.(check bool) "quiescent at end" true (Traffic_manager.quiescent tm)

let test_tm_occupancy_conservation () =
  let sched, tm, _emitted, _events = tm_fixture () in
  let rng = Stats.Rng.create ~seed:3 in
  for i = 0 to 99 do
    ignore
      (Scheduler.schedule sched ~at:(i * Sim_time.ns 200) (fun () ->
           let bytes = 64 + Stats.Rng.int rng 1400 in
           ignore (Traffic_manager.enqueue tm ~port:(Stats.Rng.int rng 4) (mk_pkt ~bytes ()))))
  done;
  Scheduler.run sched;
  Alcotest.(check int) "drains to zero" 0 (Traffic_manager.total_occupancy_bytes tm);
  Alcotest.(check bool) "quiescent" true (Traffic_manager.quiescent tm);
  Alcotest.(check int) "all transmitted" 100 (Traffic_manager.transmitted tm)

let test_link_delay_and_failure () =
  let sched = Scheduler.create () in
  let got_a = ref 0 and got_b = ref 0 in
  let status = ref [] in
  let ep got =
    {
      Link.deliver = (fun _ -> incr got);
      notify_status = (fun ~up -> status := up :: !status);
    }
  in
  let link =
    Link.create ~sched ~delay:(Sim_time.us 2) ~detection_delay:(Sim_time.us 1) ~a:(ep got_a)
      ~b:(ep got_b) ()
  in
  Link.send link ~from_a:true (mk_pkt ());
  Scheduler.run sched;
  Alcotest.(check int) "delivered to b" 1 !got_b;
  Alcotest.(check int) "a got nothing" 0 !got_a;
  Alcotest.(check int) "propagation delay" (Sim_time.us 2) (Scheduler.now sched);
  Link.fail link;
  Link.send link ~from_a:false (mk_pkt ());
  Scheduler.run sched;
  Alcotest.(check int) "lost while down" 1 (Link.lost link);
  Alcotest.(check (list bool)) "both endpoints notified" [ false; false ] !status;
  Link.restore link;
  Link.send link ~from_a:false (mk_pkt ());
  Scheduler.run sched;
  Alcotest.(check int) "works again" 1 !got_a

let test_link_inflight_lost_on_failure () =
  let sched = Scheduler.create () in
  let got = ref 0 in
  let ep = { Link.deliver = (fun _ -> incr got); notify_status = (fun ~up:_ -> ()) } in
  let link = Link.create ~sched ~delay:(Sim_time.us 10) ~a:ep ~b:ep () in
  Link.send link ~from_a:true (mk_pkt ());
  ignore (Scheduler.schedule sched ~at:(Sim_time.us 1) (fun () -> Link.fail link));
  Scheduler.run sched;
  Alcotest.(check int) "in-flight packet lost" 0 !got;
  Alcotest.(check int) "loss counted" 1 (Link.lost link)

let test_link_stale_notification_dropped () =
  (* Regression: a flap faster than the detection delay used to deliver
     the stale "down" notification after the link was already back up.
     Epoch tagging drops it — the endpoints see only the final state. *)
  let sched = Scheduler.create () in
  let status = ref [] in
  let ep =
    {
      Link.deliver = (fun _ -> ());
      notify_status = (fun ~up -> status := up :: !status);
    }
  in
  let link =
    Link.create ~sched ~delay:(Sim_time.us 2) ~detection_delay:(Sim_time.us 5) ~a:ep ~b:ep ()
  in
  Link.fail link;
  (* Restore before the 5us PHY detection of the failure fires. *)
  ignore (Scheduler.schedule sched ~at:(Sim_time.us 1) (fun () -> Link.restore link));
  Scheduler.run sched;
  Alcotest.(check (list bool)) "only the final status delivered" [ true; true ] !status;
  Alcotest.(check int) "stale down suppressed" 1 (Link.stale_notifications link);
  Alcotest.(check bool) "link up" true (Link.is_up link)

let test_link_perturbations () =
  let sched = Scheduler.create () in
  let got = ref 0 in
  let ep = { Link.deliver = (fun _ -> incr got); notify_status = (fun ~up:_ -> ()) } in
  let link = Link.create ~sched ~delay:(Sim_time.us 1) ~a:ep ~b:ep () in
  (* Deterministic perturbation: drop the 1st, duplicate the 2nd twice,
     delay the 3rd, deliver the rest. *)
  let n = ref 0 in
  Link.set_perturb link (fun ~from_a:_ _pkt ->
      incr n;
      match !n with
      | 1 -> Link.Drop
      | 2 -> Link.Duplicate 2
      | 3 -> Link.Delay (Sim_time.us 10)
      | _ -> Link.Deliver);
  for _ = 1 to 4 do
    Link.send link ~from_a:true (mk_pkt ())
  done;
  Scheduler.run sched;
  (* 4 sent: 1 dropped, 1 tripled (1+2 copies), 1 delayed, 1 normal =
     5 deliveries. *)
  Alcotest.(check int) "deliveries" 5 !got;
  Alcotest.(check int) "drops" 1 (Link.perturb_drops link);
  Alcotest.(check int) "dup copies" 2 (Link.perturb_dups link);
  Alcotest.(check int) "delays" 1 (Link.perturb_delays link);
  Alcotest.(check int) "delayed past the base latency" (Sim_time.us 11) (Scheduler.now sched);
  Link.clear_perturb link;
  Link.send link ~from_a:true (mk_pkt ());
  Scheduler.run sched;
  Alcotest.(check int) "perturbation removed" 6 !got

(* --- conservation properties --- *)

let qcheck_tm_conservation =
  (* Every packet offered to the TM is accounted for exactly once:
     transmitted + overflow-dropped + egress-dropped + still queued. *)
  QCheck.Test.make ~name:"traffic manager conserves packets" ~count:60
    QCheck.(pair (int_bound 1_000_000) (int_range 1 120))
    (fun (seed, n) ->
      let sched = Scheduler.create () in
      let rng = Stats.Rng.create ~seed in
      let config =
        {
          Traffic_manager.default_config with
          Traffic_manager.buffer_bytes = 20_000 (* small: force overflows *);
        }
      in
      let emitted = ref 0 in
      let tm =
        Traffic_manager.create ~sched ~config
          ~emit:(fun ~port:_ _ -> incr emitted)
          ~events:(Devents.Event_sink.of_fn (fun _ -> ()))
          ~egress:(fun ~port:_ pkt ->
            (* Randomly-ish drop some at egress (deterministic in size). *)
            if Netcore.Packet.len pkt mod 7 = 0 then None else Some pkt)
          ()
      in
      let offered = ref 0 in
      for i = 0 to n - 1 do
        ignore
          (Scheduler.schedule sched
             ~at:(i * Sim_time.ns (50 + Stats.Rng.int rng 400))
             (fun () ->
               incr offered;
               ignore
                 (Traffic_manager.enqueue tm
                    ~port:(Stats.Rng.int rng 4)
                    (mk_pkt ~bytes:(64 + Stats.Rng.int rng 1400) ()))))
      done;
      Scheduler.run sched;
      !offered
      = Traffic_manager.transmitted tm + Traffic_manager.drops tm
        + Traffic_manager.egress_drops tm
      && !emitted = Traffic_manager.transmitted tm
      && Traffic_manager.quiescent tm
      && Traffic_manager.enqueues tm = Traffic_manager.dequeues tm)

let suite =
  [
    Alcotest.test_case "buffer pool" `Quick test_buffer_pool;
    Alcotest.test_case "fifo queue" `Quick test_fifo_queue;
    Alcotest.test_case "pifo ordering" `Quick test_pifo_ordering;
    QCheck_alcotest.to_alcotest qcheck_pifo_sorted;
    Alcotest.test_case "pifo bounded eviction" `Quick test_pifo_bounded_eviction;
    Alcotest.test_case "pifo releases payloads" `Quick test_pifo_releases_payloads;
    Alcotest.test_case "pifo grow pins nothing" `Quick test_pifo_grow_no_pin;
    Alcotest.test_case "tm basic flow" `Quick test_tm_basic_flow;
    Alcotest.test_case "tm serialization backlog" `Quick test_tm_serialisation_backlog;
    Alcotest.test_case "tm overflow" `Quick test_tm_overflow;
    Alcotest.test_case "tm strict priority" `Quick test_tm_strict_priority;
    Alcotest.test_case "tm pifo policy" `Quick test_tm_pifo_policy;
    Alcotest.test_case "tm egress drop" `Quick test_tm_egress_drop;
    Alcotest.test_case "tm occupancy conservation" `Quick test_tm_occupancy_conservation;
    Alcotest.test_case "link delay and failure" `Quick test_link_delay_and_failure;
    Alcotest.test_case "link in-flight loss" `Quick test_link_inflight_lost_on_failure;
    Alcotest.test_case "link stale notification dropped" `Quick
      test_link_stale_notification_dropped;
    Alcotest.test_case "link perturbations" `Quick test_link_perturbations;
    QCheck_alcotest.to_alcotest qcheck_tm_conservation;
  ]
