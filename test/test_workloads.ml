(* Tests for traffic sources, flow generation and topology builders. *)

module Scheduler = Eventsim.Scheduler
module Sim_time = Eventsim.Sim_time
module Traffic = Workloads.Traffic
module Flowgen = Workloads.Flowgen
module Topology = Workloads.Topology
module Flow = Netcore.Flow
module Ipv4_addr = Netcore.Ipv4_addr

let flow = Flow.make ~src:(Ipv4_addr.host ~subnet:1 1) ~dst:(Ipv4_addr.host ~subnet:2 1) ()

let test_cbr_rate () =
  let sched = Scheduler.create () in
  let bytes = ref 0 in
  let src =
    Traffic.cbr ~sched ~flow ~pkt_bytes:1000 ~rate_gbps:2. ~stop:(Sim_time.ms 1)
      ~send:(fun pkt -> bytes := !bytes + Netcore.Packet.len pkt)
      ()
  in
  Scheduler.run sched;
  (* 2 Gb/s for 1 ms = 250 KB. *)
  Alcotest.(check int) "sent bytes" 250_000 !bytes;
  Alcotest.(check int) "counter agrees" !bytes (Traffic.sent_bytes src);
  Alcotest.(check int) "packets" 250 (Traffic.sent src)

let test_cbr_start_stop () =
  let sched = Scheduler.create () in
  let times = ref [] in
  ignore
    (Traffic.cbr ~sched ~flow ~pkt_bytes:1000 ~rate_gbps:8. ~start:(Sim_time.us 10)
       ~stop:(Sim_time.us 15)
       ~send:(fun _ -> times := Scheduler.now sched :: !times)
       ());
  Scheduler.run sched;
  List.iter
    (fun t ->
      Alcotest.(check bool) "within window" true (t >= Sim_time.us 10 && t < Sim_time.us 15))
    !times;
  Alcotest.(check int) "1us gap -> 5 packets" 5 (List.length !times)

let test_poisson_mean_rate () =
  let sched = Scheduler.create () in
  let rng = Stats.Rng.create ~seed:11 in
  let src =
    Traffic.poisson ~sched ~rng ~flow ~pkt_bytes:100 ~rate_pps:1_000_000. ~stop:(Sim_time.ms 20)
      ~send:(fun _ -> ())
      ()
  in
  Scheduler.run sched;
  let rate = float_of_int (Traffic.sent src) /. 20e-3 in
  Alcotest.(check bool) "within 5% of 1Mpps" true (Float.abs (rate -. 1e6) /. 1e6 < 0.05)

let test_on_off_duty_cycle () =
  let sched = Scheduler.create () in
  let rng = Stats.Rng.create ~seed:13 in
  let src =
    Traffic.on_off ~sched ~rng ~flow ~pkt_bytes:1000 ~burst_rate_gbps:10.
      ~on_time:(Sim_time.us 100) ~off_time:(Sim_time.us 100) ~stop:(Sim_time.ms 2)
      ~send:(fun _ -> ())
      ()
  in
  Scheduler.run sched;
  (* 50% duty at 10G over 2 ms ~ 1.25 MB, i.e. ~1250 packets. *)
  let sent = Traffic.sent src in
  Alcotest.(check bool)
    (Printf.sprintf "sent about 1250 (got %d)" sent)
    true
    (sent > 1000 && sent < 1500)

let test_stop_now () =
  let sched = Scheduler.create () in
  let src =
    Traffic.cbr ~sched ~flow ~pkt_bytes:1000 ~rate_gbps:1. ~stop:(Sim_time.ms 10)
      ~send:(fun _ -> ())
      ()
  in
  ignore (Scheduler.schedule sched ~at:(Sim_time.ms 1) (fun () -> Traffic.stop_now src));
  Scheduler.run sched;
  Alcotest.(check bool) "stopped early" true (Traffic.sent src <= 126)

let test_flowgen_population () =
  let rng = Stats.Rng.create ~seed:21 in
  let spec = { Flowgen.default_spec with Flowgen.num_flows = 300 } in
  let flows = Flowgen.generate ~rng spec in
  Alcotest.(check int) "count" 300 (List.length flows);
  (* Start times are sorted. *)
  let sorted =
    let rec go = function
      | (a : Flowgen.flow_desc) :: (b :: _ as rest) ->
          a.Flowgen.start <= b.Flowgen.start && go rest
      | [ _ ] | [] -> true
    in
    go flows
  in
  Alcotest.(check bool) "sorted by start" true sorted;
  (* Zipf: rank 1 appears far more often than rank 50. *)
  let count r = List.length (List.filter (fun f -> f.Flowgen.rank = r) flows) in
  Alcotest.(check bool) "rank 1 popular" true (count 1 > 3 * max 1 (count 50));
  (* Ground-truth counts sum to total packets. *)
  let truth = Flowgen.true_packet_counts flows in
  let total_truth = Hashtbl.fold (fun _ c acc -> acc + c) truth 0 in
  let total = List.fold_left (fun acc f -> acc + f.Flowgen.packets) 0 flows in
  Alcotest.(check int) "truth conserves packets" total total_truth

let test_flowgen_stream_matches_generate () =
  (* The streaming and materialized forms share one draw order: for
     the same seed, collecting the stream must reproduce [generate]
     structurally — same flows, same starts, same lengths, same
     ranks. This is the contract that lets E27 pin digest goldens with
     the streaming source while small tests reason over lists. *)
  let spec =
    { Flowgen.default_spec with Flowgen.num_flows = 200; arrival_rate_per_sec = 2e6 }
  in
  let materialized = Flowgen.generate ~rng:(Stats.Rng.create ~seed:33) spec in
  let streamed = ref [] in
  Flowgen.stream ~rng:(Stats.Rng.create ~seed:33) spec ~f:(fun fd ->
      streamed := fd :: !streamed);
  let streamed = List.rev !streamed in
  Alcotest.(check int) "same count" (List.length materialized) (List.length streamed);
  List.iter2
    (fun (a : Flowgen.flow_desc) (b : Flowgen.flow_desc) ->
      Alcotest.(check bool) "identical descriptor" true
        (a.Flowgen.start = b.Flowgen.start && a.Flowgen.rank = b.Flowgen.rank
        && a.Flowgen.packets = b.Flowgen.packets
        && a.Flowgen.pkt_bytes = b.Flowgen.pkt_bytes
        && Netcore.Flow.equal a.Flowgen.flow b.Flowgen.flow))
    materialized streamed

let test_flowgen_streaming_memory () =
  (* The reason E27 can run 1M-flow mixes at all: [install] keeps
     O(live flows) state, never O(num_flows). Run a million-flow
     population to completion and check the heap halfway through the
     arrival chain has grown by far less than a materialized
     population would cost (a million flow_desc records is >= 15M
     words; we demand under 2M over baseline). *)
  let sched = Scheduler.create () in
  let rng = Stats.Rng.create ~seed:35 in
  let spec =
    {
      Flowgen.default_spec with
      Flowgen.num_flows = 1_000_000;
      key_space = 10_000;
      mean_packets = 2.;
      max_packets = 3;
      arrival_rate_per_sec = 5e8;
    }
  in
  Gc.full_major ();
  let baseline = (Gc.stat ()).Gc.live_words in
  (* Probe the heap once, at the 500k-th arrival, via the hook. *)
  let mid_words = ref 0 in
  let stats = ref None in
  let s =
    Flowgen.install ~sched ~rng ~rate_pps_per_flow:1e7
      ~on_flow:(fun _ ->
        match !stats with
        | Some (st : Flowgen.source_stats) when !mid_words = 0 && st.Flowgen.flows_started >= 500_000 ->
            Gc.full_major ();
            mid_words := (Gc.stat ()).Gc.live_words
        | _ -> ())
      spec
      ~send:(fun _ -> ())
      ()
  in
  stats := Some s;
  Scheduler.run sched;
  let stats = s in
  Alcotest.(check int) "all flows arrived" 1_000_000 stats.Flowgen.flows_started;
  Alcotest.(check int) "all flows finished" 1_000_000 stats.Flowgen.flows_finished;
  Alcotest.(check int) "no flow left live" 0 stats.Flowgen.live_flows;
  Alcotest.(check bool) "probe fired" true (!mid_words > 0);
  let growth = !mid_words - baseline in
  Alcotest.(check bool)
    (Printf.sprintf "heap growth at 500k flows under 2M words (got %d)" growth)
    true
    (growth < 2_000_000)

let test_flowgen_replay () =
  let sched = Scheduler.create () in
  let rng = Stats.Rng.create ~seed:23 in
  let spec =
    { Flowgen.default_spec with Flowgen.num_flows = 20; arrival_rate_per_sec = 1e6 }
  in
  let flows = Flowgen.generate ~rng spec in
  let got = ref 0 in
  ignore
    (Flowgen.replay ~sched ~flows ~rate_pps_per_flow:100_000. ~send:(fun _ -> incr got) ());
  Scheduler.run ~until:(Sim_time.ms 50) sched;
  Alcotest.(check bool) "packets flowed" true (!got > 50)

let fwd = Evcore.Program.forward_all ~name:"fwd" ~out_port:1

let test_topology_single () =
  let sched = Scheduler.create () in
  let config = Evcore.Event_switch.default_config Evcore.Arch.event_pisa_full in
  let topo = Topology.single ~sched ~num_hosts:6 ~config ~program:fwd () in
  Alcotest.(check int) "hosts" 6 (Array.length topo.Topology.hosts);
  Alcotest.(check int) "ports grown" 6 (Evcore.Event_switch.num_ports topo.Topology.switch);
  (* Host 0 -> switch -> out port 1 -> host 1. *)
  Evcore.Host.send topo.Topology.hosts.(0)
    (Netcore.Packet.udp_packet ~src:(Ipv4_addr.host ~subnet:1 1)
       ~dst:(Ipv4_addr.host ~subnet:1 2) ~src_port:1 ~dst_port:2 ~payload_len:10 ());
  Scheduler.run sched;
  Alcotest.(check int) "delivered to host 1" 1 (Evcore.Host.received topo.Topology.hosts.(1))

let test_topology_chain () =
  let sched = Scheduler.create () in
  let config _ = Evcore.Event_switch.default_config Evcore.Arch.event_pisa_full in
  (* Forward "up" the chain: host traffic (port 0) goes out port 1;
     transit from previous switch (port 2) is delivered locally. *)
  let program _role _ctx =
    Evcore.Program.make ~name:"chain"
      ~ingress:(fun _ctx pkt ->
        if pkt.Netcore.Packet.meta.Netcore.Packet.ingress_port = 2 then Evcore.Program.Forward 0
        else Evcore.Program.Forward 1)
      ()
  in
  let topo = Topology.chain ~sched ~num_switches:3 ~config ~program ()  in
  Alcotest.(check int) "links" 2 (Array.length topo.Topology.inter_links);
  Evcore.Host.send topo.Topology.hosts.(0)
    (Netcore.Packet.udp_packet ~src:(Ipv4_addr.host ~subnet:1 1)
       ~dst:(Ipv4_addr.host ~subnet:1 2) ~src_port:1 ~dst_port:2 ~payload_len:10 ());
  Scheduler.run sched;
  Alcotest.(check int) "hop delivered to next host" 1
    (Evcore.Host.received topo.Topology.hosts.(1))

let test_topology_leaf_spine_wiring () =
  let sched = Scheduler.create () in
  let config _ = Evcore.Event_switch.default_config Evcore.Arch.event_pisa_full in
  let seen_roles = ref [] in
  let program role _ctx =
    seen_roles := role :: !seen_roles;
    Evcore.Program.make ~name:"nop" ~ingress:(fun _ctx _pkt -> Evcore.Program.Drop) ()
  in
  let topo =
    Topology.leaf_spine ~sched ~num_leaves:2 ~num_spines:3 ~hosts_per_leaf:2 ~config ~program ()
  in
  Alcotest.(check int) "leaves" 2 (Array.length topo.Topology.leaves);
  Alcotest.(check int) "spines" 3 (Array.length topo.Topology.spines);
  Alcotest.(check int) "uplinks per leaf" 3 (Array.length topo.Topology.uplinks.(0));
  Alcotest.(check int) "programs installed" 5 (List.length !seen_roles);
  let leaves = List.length (List.filter (function Topology.Leaf _ -> true | _ -> false) !seen_roles) in
  Alcotest.(check int) "leaf roles" 2 leaves;
  Alcotest.(check int) "uplink port convention" 4 (Topology.uplink_port ~hosts_per_leaf:2 ~spine:2)

(* --- Trace record/replay --- *)

let test_trace_roundtrip () =
  let sched = Scheduler.create () in
  let trace = Workloads.Trace.create () in
  ignore
    (Traffic.cbr ~sched ~flow ~pkt_bytes:500 ~rate_gbps:1. ~stop:(Sim_time.us 100)
       ~send:(fun pkt -> Workloads.Trace.record trace ~sched ~port:2 pkt)
       ());
  Scheduler.run sched;
  let n = Workloads.Trace.length trace in
  Alcotest.(check bool) "recorded" true (n > 10);
  (* Replay into a fresh clock: identical arrival times and sizes. *)
  let sched2 = Scheduler.create () in
  let got = ref [] in
  let scheduled =
    Workloads.Trace.replay trace ~sched:sched2
      ~send:(fun ~port pkt ->
        got := (Scheduler.now sched2, port, Netcore.Packet.len pkt) :: !got)
      ()
  in
  Scheduler.run sched2;
  Alcotest.(check int) "all scheduled" n scheduled;
  Alcotest.(check int) "all delivered" n (List.length !got);
  let expected =
    List.map
      (fun (e : Workloads.Trace.entry) -> (e.Workloads.Trace.at, e.Workloads.Trace.port, e.Workloads.Trace.pkt_bytes))
      (Workloads.Trace.entries trace)
  in
  Alcotest.(check (list (triple int int int))) "same arrivals" expected (List.rev !got)

let test_trace_time_offset () =
  let trace = Workloads.Trace.create () in
  Workloads.Trace.add trace
    { Workloads.Trace.at = Sim_time.us 5; port = 0; flow; pkt_bytes = 100 };
  let sched = Scheduler.create () in
  let at = ref 0 in
  ignore
    (Workloads.Trace.replay trace ~sched ~time_offset:(Sim_time.us 10)
       ~send:(fun ~port:_ _ -> at := Scheduler.now sched)
       ());
  Scheduler.run sched;
  Alcotest.(check int) "offset applied" (Sim_time.us 15) !at;
  Alcotest.(check int) "bytes accounted" 100 (Workloads.Trace.total_bytes trace)

let test_trace_ordering_enforced () =
  let trace = Workloads.Trace.create () in
  Workloads.Trace.add trace { Workloads.Trace.at = 100; port = 0; flow; pkt_bytes = 64 };
  Alcotest.check_raises "backwards time" (Invalid_argument "Trace.add: entries must be time-ordered")
    (fun () -> Workloads.Trace.add trace { Workloads.Trace.at = 50; port = 0; flow; pkt_bytes = 64 })

let suite =
  [
    Alcotest.test_case "cbr rate" `Quick test_cbr_rate;
    Alcotest.test_case "cbr start/stop" `Quick test_cbr_start_stop;
    Alcotest.test_case "poisson mean rate" `Quick test_poisson_mean_rate;
    Alcotest.test_case "on/off duty cycle" `Quick test_on_off_duty_cycle;
    Alcotest.test_case "stop_now" `Quick test_stop_now;
    Alcotest.test_case "flowgen population" `Quick test_flowgen_population;
    Alcotest.test_case "flowgen stream = generate" `Quick test_flowgen_stream_matches_generate;
    Alcotest.test_case "flowgen 1M flows, O(live) memory" `Quick test_flowgen_streaming_memory;
    Alcotest.test_case "flowgen replay" `Quick test_flowgen_replay;
    Alcotest.test_case "topology single" `Quick test_topology_single;
    Alcotest.test_case "topology chain" `Quick test_topology_chain;
    Alcotest.test_case "topology leaf-spine" `Quick test_topology_leaf_spine_wiring;
    Alcotest.test_case "trace roundtrip" `Quick test_trace_roundtrip;
    Alcotest.test_case "trace time offset" `Quick test_trace_time_offset;
    Alcotest.test_case "trace ordering" `Quick test_trace_ordering_enforced;
  ]
